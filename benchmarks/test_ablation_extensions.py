"""Ablations for the beyond-the-paper mechanisms.

* **Changed-only enforcement** — ship rules only when limits move: the
  enforce phase collapses for steady workloads and degrades gracefully to
  the paper's always-push behaviour for volatile ones.
* **Hot-standby failover** — dependability's price (extra connections,
  heartbeats) and payoff (bounded control-gap after a global-controller
  crash), quantifying §VI's dependability discussion.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.control_plane import ControlPlaneConfig, FlatControlPlane
from repro.core.failover import HotStandby, attach_flat_standby
from repro.core.policies import QoSPolicy
from repro.harness.report import format_table
from repro.jobs.workloads import source_factory


def test_ablation_rule_diffing(benchmark):
    """Enforce traffic vs change tolerance under fluctuating demand.

    With ``enforce_changed_only`` the enforce phase's cost tracks how many
    allocations actually moved: tolerance 0 ships nearly every rule under
    Poisson demand (allocations track demand exactly), while a small
    relative tolerance suppresses noise-level changes and converges to the
    steady-state floor.
    """

    def run():
        rows = []
        # Baseline: the paper's always-push behaviour.
        plane = FlatControlPlane.build(
            ControlPlaneConfig(
                n_stages=400,
                policy=QoSPolicy(pfs_capacity_iops=1_000_000.0),
                source_factory=source_factory("poisson", seed=5),
            )
        )
        plane.run_stress(n_cycles=8)
        rows.append(
            ["always-push", "-", plane.stats(warmup=2).breakdown().enforce_ms, 0]
        )
        for tol in (0.0, 0.02, 0.10):
            plane = FlatControlPlane.build(
                ControlPlaneConfig(
                    n_stages=400,
                    policy=QoSPolicy(pfs_capacity_iops=1_000_000.0),
                    enforce_changed_only=True,
                    rule_change_tolerance=tol,
                    source_factory=source_factory("poisson", seed=5),
                )
            )
            plane.run_stress(n_cycles=8)
            rows.append(
                [
                    "diffing",
                    f"{tol:.2f}",
                    plane.stats(warmup=2).breakdown().enforce_ms,
                    plane.global_controller.rules_suppressed,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["enforce mode", "tolerance", "enforce (ms)", "suppressed"],
            rows,
            title="Ablation — changed-only rule enforcement (400 stages, Poisson demand)",
        )
    )
    baseline, tol0, tol2, tol10 = rows
    # Zero tolerance under fluctuating demand ships nearly everything.
    assert tol0[3] < 400  # few suppressions
    # Growing tolerance suppresses monotonically more...
    assert tol0[3] <= tol2[3] <= tol10[3]
    # ...and the largest tolerance beats the always-push enforce cost.
    assert tol10[2] < baseline[2] / 2


def test_ablation_failover_gap(benchmark):
    """Take-over gap scales with the heartbeat budget, not cluster size."""

    def run():
        rows = []
        for hb, missed in ((0.005, 2), (0.02, 3), (0.05, 3)):
            plane = FlatControlPlane.build(ControlPlaneConfig(n_stages=100))
            standby = attach_flat_standby(plane)
            hs = HotStandby(
                plane.env,
                plane.global_controller,
                standby,
                heartbeat_interval_s=hb,
                missed_heartbeats=missed,
            )
            watch = hs.start(n_cycles=300)
            kill_at = 0.031
            plane.env.call_at(kill_at, hs.kill_primary)
            plane.env.run(watch)
            gap_ms = (hs.failover.time - kill_at) * 1e3
            rows.append(
                [f"{hb*1e3:.0f} ms x {missed}", gap_ms, hs.total_cycles()]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["heartbeat budget", "control gap (ms)", "cycles completed"],
            rows,
            title="Ablation — hot-standby take-over gap (100 stages, crash at t=31 ms)",
        )
    )
    gaps = [r[1] for r in rows]
    assert gaps == sorted(gaps)  # tighter heartbeats, smaller gap
    assert all(r[2] == 300 for r in rows)  # no cycles lost in any config
