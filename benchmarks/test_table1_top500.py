"""Table I — Top500 systems and what they imply for SDS control planes."""

from benchmarks.conftest import emit
from repro.harness.report import format_table
from repro.top500 import SUPERCOMPUTERS, min_aggregators, table_rows


def test_table1_top500(benchmark):
    def build():
        rows = [
            [
                r["System"],
                r["Rank"],
                r["Rmax (PFlop/s)"],
                r["Number of nodes"],
                r["Year"],
                min_aggregators(r["Number of nodes"]),
            ]
            for r in table_rows()
        ]
        return format_table(
            [
                "System",
                "Rank",
                "Rmax (PFlop/s)",
                "Number of nodes",
                "Year",
                "min aggregators @2500-conn limit",
            ],
            rows,
            title="Table I — Top500 systems (June 2024, as reported in the paper)",
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(text)

    assert "Frontier" in text and "158976" in text
    # Every paper row is present and the scale motivates hierarchy:
    assert len(SUPERCOMPUTERS) == 5
    assert all(
        min_aggregators(sc.n_nodes) >= 2
        for sc in SUPERCOMPUTERS
        if sc.n_nodes > 2500
    )
