"""Table IV — resource usage: flat vs hierarchical (1 aggregator) @ 2,500.

Paper: aggregation moves nearly all CPU and network load off the global
controller (10.34 % -> 1.15 % CPU; 9.73 -> 2.36 MB/s TX) and onto the
aggregator (7.83 % CPU, 8.65 MB/s TX).
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import format_table, relative_error

N_STAGES = 2500


def test_table4_resources(benchmark, cache):
    flat = cache.flat(N_STAGES)
    hier = cache.hier(N_STAGES, 1)

    def build():
        ref_fg = PAPER.table4_flat_global
        ref_hg = PAPER.table4_hier_global
        ref_ha = PAPER.table4_hier_aggregator
        rows = [
            [
                "flat global",
                ref_fg.cpu_percent,
                flat.global_usage.cpu_percent,
                ref_fg.memory_gb,
                flat.global_usage.memory_gb,
                ref_fg.transmitted_mb_s,
                flat.global_usage.transmitted_mb_s,
                ref_fg.received_mb_s,
                flat.global_usage.received_mb_s,
            ],
            [
                "hier global",
                ref_hg.cpu_percent,
                hier.global_usage.cpu_percent,
                ref_hg.memory_gb,
                hier.global_usage.memory_gb,
                ref_hg.transmitted_mb_s,
                hier.global_usage.transmitted_mb_s,
                ref_hg.received_mb_s,
                hier.global_usage.received_mb_s,
            ],
            [
                "hier aggregator",
                ref_ha.cpu_percent,
                hier.aggregator_usage.cpu_percent,
                ref_ha.memory_gb,
                hier.aggregator_usage.memory_gb,
                ref_ha.transmitted_mb_s,
                hier.aggregator_usage.transmitted_mb_s,
                ref_ha.received_mb_s,
                hier.aggregator_usage.received_mb_s,
            ],
        ]
        return format_table(
            [
                "controller",
                "cpu% (paper)",
                "cpu% (ours)",
                "mem GB (paper)",
                "mem GB (ours)",
                "tx MB/s (paper)",
                "tx MB/s (ours)",
                "rx MB/s (paper)",
                "rx MB/s (ours)",
            ],
            rows,
            title="Table IV — flat vs hierarchical (1 aggregator) at 2,500 nodes",
        )

    emit(benchmark.pedantic(build, rounds=1, iterations=1))

    # Headline cells.
    assert abs(
        relative_error(hier.global_usage.cpu_percent, PAPER.table4_hier_global.cpu_percent)
    ) < 0.25
    assert abs(
        relative_error(hier.global_usage.memory_gb, PAPER.table4_hier_global.memory_gb)
    ) < 0.15
    assert abs(
        relative_error(
            hier.aggregator_usage.cpu_percent, PAPER.table4_hier_aggregator.cpu_percent
        )
    ) < 0.20

    # The shift the paper describes: CPU leaves the global controller...
    assert hier.global_usage.cpu_percent < flat.global_usage.cpu_percent / 4
    # ...and lands on the aggregator.
    assert hier.aggregator_usage.cpu_percent > 4 * hier.global_usage.cpu_percent
    # Network: the global controller now exchanges compact pre-merged data.
    assert hier.global_usage.transmitted_mb_s < flat.global_usage.transmitted_mb_s / 2
    assert hier.global_usage.received_mb_s < flat.global_usage.received_mb_s / 2
