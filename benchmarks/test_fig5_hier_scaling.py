"""Fig. 5 — hierarchical design at 10,000 nodes vs aggregator count.

Paper: 4 aggregators -> ~103 ms; 10 -> under 80 ms; 20 -> under 70 ms.
Compute-phase latency stays ~constant across A; collect and enforce
shrink as partitions get smaller (Obs. #4).
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import compare_row, format_figure_series, format_table

AGGREGATORS = (4, 5, 10, 20)
N_STAGES = 10_000


@pytest.mark.parametrize("n_aggregators", AGGREGATORS)
def test_fig5_hier_latency(benchmark, cache, n_aggregators):
    result = benchmark.pedantic(
        lambda: cache.hier(N_STAGES, n_aggregators, fresh=True),
        rounds=1,
        iterations=1,
    )
    assert result.mean_ms == pytest.approx(
        PAPER.hier_latency_ms[n_aggregators], rel=0.10
    )
    bound = PAPER.hier_latency_bounds.get(n_aggregators)
    if bound is not None:
        assert result.mean_ms < bound  # the paper's "under 80/70 ms" claims
    assert result.latency.relative_std < PAPER.max_relative_std


def test_fig5_summary(benchmark, cache):
    def build():
        rows = []
        series = {"collect": [], "compute": [], "enforce": []}
        for a in AGGREGATORS:
            result = cache.hier(N_STAGES, a)
            rows.append(
                compare_row(
                    f"hier 10k / {a} aggs", result.mean_ms, PAPER.hier_latency_ms[a]
                )
            )
            for phase, value in result.phase_means_ms().items():
                series[phase].append(value)
        table = format_table(
            ["config", "paper (ms)", "measured (ms)", "error"],
            rows,
            title="Fig. 5 — hierarchical design at 10,000 nodes",
        )
        figure = format_figure_series(
            "Fig. 5 — measured phase breakdown (ms)",
            "aggregators",
            list(AGGREGATORS),
            series,
        )
        return table + "\n\n" + figure

    emit(benchmark.pedantic(build, rounds=1, iterations=1))

    # Obs. #4 orderings over the real runs:
    means = [cache.hier(N_STAGES, a).mean_ms for a in AGGREGATORS]
    assert means == sorted(means, reverse=True)
    computes = [
        cache.hier(N_STAGES, a).phase_means_ms()["compute"] for a in AGGREGATORS
    ]
    assert max(computes) == pytest.approx(min(computes), rel=0.05)
    collects = [
        cache.hier(N_STAGES, a).phase_means_ms()["collect"] for a in AGGREGATORS
    ]
    assert collects == sorted(collects, reverse=True)


def test_fig5_connection_cap_forces_four_aggregators(benchmark):
    """The paper sets min A=4 at 10k nodes: ceil(10000/2500)."""
    from repro.core.control_plane import ControlPlaneConfig, HierarchicalControlPlane
    from repro.simnet.transport import ConnectionLimitExceeded
    from repro.top500 import min_aggregators

    def attempt():
        # 3 aggregators x ~3,334 stages each exceeds the 2,500 cap.
        with pytest.raises(ConnectionLimitExceeded):
            HierarchicalControlPlane.build(
                ControlPlaneConfig(n_stages=N_STAGES), n_aggregators=3
            )
        return min_aggregators(N_STAGES)

    assert benchmark.pedantic(attempt, rounds=1, iterations=1) == 4
