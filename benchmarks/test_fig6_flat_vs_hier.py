"""Fig. 6 — flat vs hierarchical (single aggregator) at 2,500 nodes.

Paper: latency rises from ~41 ms (flat) to ~53 ms (hierarchical), the
increase coming from the collect and enforce phases (extra network hop),
while the compute phase *decreases* (Obs. #6 and #7).

Note on fidelity: the hierarchical 2,500-node point is the linear cost
model's worst case (the paper's own data is mildly concave in N); we
accept up to 15 % here where every other point lands within a few percent
— see EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import format_figure_series, format_table

N_STAGES = 2500


def test_fig6_flat_vs_hier(benchmark, cache):
    def run():
        return cache.flat(N_STAGES), cache.hier(N_STAGES, 1, fresh=True)

    flat, hier = benchmark.pedantic(run, rounds=1, iterations=1)

    series = {
        phase: [flat.phase_means_ms()[phase], hier.phase_means_ms()[phase]]
        for phase in ("collect", "compute", "enforce")
    }
    table = format_table(
        ["design", "paper (ms)", "measured (ms)"],
        [
            ["flat", PAPER.fig6_flat_ms, flat.mean_ms],
            ["hierarchical (1 agg)", PAPER.fig6_hier_ms, hier.mean_ms],
        ],
        title="Fig. 6 — flat vs hierarchical at 2,500 nodes",
    )
    figure = format_figure_series(
        "Fig. 6 — measured phase breakdown (ms)",
        "design",
        ["flat", "hier"],
        series,
    )
    emit(table + "\n\n" + figure)

    assert flat.mean_ms == pytest.approx(PAPER.fig6_flat_ms, rel=0.05)
    assert hier.mean_ms == pytest.approx(PAPER.fig6_hier_ms, rel=0.15)
    # Obs. #6: hierarchical costs more, and the overhead is bounded.
    overhead = hier.mean_ms - flat.mean_ms
    assert 0 < overhead < 2 * PAPER.fig6_max_overhead_ms
    # The increase comes from collect and enforce...
    assert hier.phase_means_ms()["collect"] > flat.phase_means_ms()["collect"]
    assert hier.phase_means_ms()["enforce"] > flat.phase_means_ms()["enforce"]
    # ...while compute decreases (Obs. #7).
    assert hier.phase_means_ms()["compute"] < flat.phase_means_ms()["compute"]
