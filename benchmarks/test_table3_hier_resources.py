"""Table III — hierarchical resource usage at 10,000 nodes.

Paper: the global controller's CPU/TX/RX grow with the number of
aggregators (more connections to manage, shorter cycles) while its memory
stays ~3.5 GB; per-aggregator usage shrinks as the 10,000 stages spread
across more controllers.
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import format_table, relative_error

AGGREGATORS = (4, 5, 10, 20)
N_STAGES = 10_000


def test_table3_hier_resources(benchmark, cache):
    for a in AGGREGATORS:
        cache.hier(N_STAGES, a)

    def build():
        rows = []
        for a in AGGREGATORS:
            result = cache.hier(N_STAGES, a)
            g_ref = PAPER.hier_global_resources[a]
            a_ref = PAPER.hier_aggregator_resources[a]
            g, ag = result.global_usage, result.aggregator_usage
            rows.append(
                [
                    f"A={a} global",
                    g_ref.cpu_percent,
                    g.cpu_percent,
                    g_ref.memory_gb,
                    g.memory_gb,
                    g_ref.transmitted_mb_s,
                    g.transmitted_mb_s,
                    g_ref.received_mb_s,
                    g.received_mb_s,
                ]
            )
            rows.append(
                [
                    f"A={a} aggregator",
                    a_ref.cpu_percent,
                    ag.cpu_percent,
                    a_ref.memory_gb,
                    ag.memory_gb,
                    a_ref.transmitted_mb_s,
                    ag.transmitted_mb_s,
                    a_ref.received_mb_s,
                    ag.received_mb_s,
                ]
            )
        return format_table(
            [
                "controller",
                "cpu% (paper)",
                "cpu% (ours)",
                "mem GB (paper)",
                "mem GB (ours)",
                "tx MB/s (paper)",
                "tx MB/s (ours)",
                "rx MB/s (paper)",
                "rx MB/s (ours)",
            ],
            rows,
            title="Table III — hierarchical design at 10,000 nodes",
        )

    emit(benchmark.pedantic(build, rounds=1, iterations=1))

    # Headline cells within tolerance.
    for a in AGGREGATORS:
        result = cache.hier(N_STAGES, a)
        g_ref = PAPER.hier_global_resources[a]
        a_ref = PAPER.hier_aggregator_resources[a]
        assert abs(relative_error(result.global_usage.cpu_percent, g_ref.cpu_percent)) < 0.25
        assert abs(relative_error(result.global_usage.memory_gb, g_ref.memory_gb)) < 0.15
        assert abs(relative_error(result.global_usage.transmitted_mb_s, g_ref.transmitted_mb_s)) < 0.20
        assert abs(relative_error(result.global_usage.received_mb_s, g_ref.received_mb_s)) < 0.20
        assert abs(relative_error(result.aggregator_usage.cpu_percent, a_ref.cpu_percent)) < 0.35
        assert abs(relative_error(result.aggregator_usage.memory_gb, a_ref.memory_gb)) < 0.25

    # Trends the paper highlights:
    global_cpu = [cache.hier(N_STAGES, a).global_usage.cpu_percent for a in AGGREGATORS]
    assert global_cpu == sorted(global_cpu)  # grows with A
    agg_cpu = [cache.hier(N_STAGES, a).aggregator_usage.cpu_percent for a in AGGREGATORS]
    assert agg_cpu == sorted(agg_cpu, reverse=True)  # shrinks with A
    agg_mem = [cache.hier(N_STAGES, a).aggregator_usage.memory_gb for a in AGGREGATORS]
    assert agg_mem == sorted(agg_mem, reverse=True)
