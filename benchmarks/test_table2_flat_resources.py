"""Table II — flat global controller resource usage.

Paper (per node count 50/500/1250/2500): CPU 6.07–10.34 %, memory
0.07–1.18 GB, TX 5.67–9.73 MB/s, RX 3.74–5.36 MB/s.
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import format_table, relative_error

NODE_COUNTS = (50, 500, 1250, 2500)


def test_table2_flat_resources(benchmark, cache):
    for n in NODE_COUNTS:  # ensure runs exist (reuses Fig. 4's)
        cache.flat(n)

    def build():
        rows = []
        for n in NODE_COUNTS:
            usage = cache.flat(n).global_usage
            ref = PAPER.flat_resources[n]
            rows.append(
                [
                    n,
                    ref.cpu_percent,
                    usage.cpu_percent,
                    ref.memory_gb,
                    usage.memory_gb,
                    ref.transmitted_mb_s,
                    usage.transmitted_mb_s,
                    ref.received_mb_s,
                    usage.received_mb_s,
                ]
            )
        return format_table(
            [
                "nodes",
                "cpu% (paper)",
                "cpu% (ours)",
                "mem GB (paper)",
                "mem GB (ours)",
                "tx MB/s (paper)",
                "tx MB/s (ours)",
                "rx MB/s (paper)",
                "rx MB/s (ours)",
            ],
            rows,
            title="Table II — flat global controller resource usage",
        )

    emit(benchmark.pedantic(build, rounds=1, iterations=1))

    # Shape assertions: each column within tolerance of the paper at the
    # scales that matter (small-N CPU is dominated by fixed overheads the
    # model intentionally folds into per-stage costs).
    for n in (500, 1250, 2500):
        usage = cache.flat(n).global_usage
        ref = PAPER.flat_resources[n]
        assert abs(relative_error(usage.cpu_percent, ref.cpu_percent)) < 0.20
        assert abs(relative_error(usage.memory_gb, ref.memory_gb)) < 0.15
        assert abs(relative_error(usage.transmitted_mb_s, ref.transmitted_mb_s)) < 0.20
        assert abs(relative_error(usage.received_mb_s, ref.received_mb_s)) < 0.20

    # Trends: every resource grows (or saturates) with N.
    mems = [cache.flat(n).global_usage.memory_gb for n in NODE_COUNTS]
    assert mems == sorted(mems)
