"""Ablation benches: design-choice sensitivity beyond the paper's figures.

DESIGN.md calls out the cost-model knobs the conclusions rest on; each
ablation perturbs one and checks the conclusion's direction survives:

* controller CPU speed (per-message cost scaling);
* payload sizes (wire bytes scaling);
* the decision-offload variant (§VI);
* the coordinated-flat variant (§VI);
* three-level hierarchies;
* the connection-limit ceiling itself.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.costs import FRONTERA_COST_MODEL
from repro.harness.experiment import (
    run_coordinated_experiment,
    run_flat_experiment,
    run_hierarchical_experiment,
)
from repro.harness.report import format_table

N = 800  # big enough for clear separation, small enough for bench speed


def test_ablation_cpu_scaling(benchmark):
    """Cycle latency is controller-CPU-bound: it scales ~linearly."""

    def run():
        return {
            f: run_flat_experiment(N, cycles=6, costs=FRONTERA_COST_MODEL.scaled(cpu_factor=f))
            for f in (0.5, 1.0, 2.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["cpu factor", "mean latency (ms)"],
            [[f, r.mean_ms] for f, r in sorted(results.items())],
            title="Ablation — controller CPU cost scaling (flat, 800 nodes)",
        )
    )
    assert results[2.0].mean_ms > 1.6 * results[1.0].mean_ms
    assert results[0.5].mean_ms < 0.7 * results[1.0].mean_ms


def test_ablation_payload_scaling(benchmark):
    """Fatter payloads move MB/s but barely move latency (CPU-bound)."""

    def run():
        return {
            f: run_flat_experiment(N, cycles=6, costs=FRONTERA_COST_MODEL.scaled(net_factor=f))
            for f in (1.0, 4.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["payload factor", "latency (ms)", "global tx MB/s"],
            [
                [f, r.mean_ms, r.global_usage.transmitted_mb_s]
                for f, r in sorted(results.items())
            ],
            title="Ablation — wire payload scaling (flat, 800 nodes)",
        )
    )
    assert results[4.0].global_usage.transmitted_mb_s > 3.5 * results[1.0].global_usage.transmitted_mb_s
    assert results[4.0].mean_ms < 1.1 * results[1.0].mean_ms


def test_ablation_decision_offload(benchmark):
    """§VI offloading: smaller global compute phase, similar totals."""

    def run():
        plain = run_hierarchical_experiment(N, 4, cycles=6)
        offload = run_hierarchical_experiment(N, 4, cycles=6, decision_offload=True)
        return plain, offload

    plain, offload = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["variant", "total (ms)", "collect", "compute", "enforce"],
            [
                ["hierarchical", plain.mean_ms, *plain.phase_means_ms().values()],
                ["  + offload", offload.mean_ms, *offload.phase_means_ms().values()],
            ],
            title="Ablation — decision offloading to aggregators (800 nodes, 4 aggs)",
        )
    )
    assert offload.phase_means_ms()["compute"] < plain.phase_means_ms()["compute"]


def test_ablation_coordinated_flat(benchmark):
    """§VI coordinated peers vs single flat controller."""

    def run():
        flat = run_flat_experiment(N, cycles=6)
        coord = {
            k: run_coordinated_experiment(N, k, cycles=6) for k in (2, 4, 8)
        }
        return flat, coord

    flat, coord = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["design", "mean latency (ms)"],
            [["flat (1 controller)", flat.mean_ms]]
            + [[f"coordinated ({k} peers)", r.mean_ms] for k, r in sorted(coord.items())],
            title="Ablation — coordinated flat control plane (800 nodes)",
        )
    )
    # Partitioned collection beats one controller; more peers help further
    # until the all-to-all summary exchange overhead pushes back.
    assert coord[4].mean_ms < flat.mean_ms
    assert coord[4].mean_ms < coord[2].mean_ms


def test_ablation_hierarchy_depth(benchmark):
    """Depth trades an extra hop for leaf parallelism; there's a crossover.

    With 2 top aggregators and fanout 2, a third level splits each
    partition across two leaf aggregators working in parallel. At small
    scale the extra hop dominates (3 levels slower); once partitions are
    large, halving the per-leaf serial work wins (3 levels faster) — the
    quantitative version of §VI's suggestion to push work down the tree.
    """

    def run():
        out = {}
        for n in (60, 800):
            two = run_hierarchical_experiment(n, 2, cycles=6, levels=2)
            three = run_hierarchical_experiment(n, 2, cycles=6, levels=3)
            out[n] = (two, three)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["stages", "2 levels (ms)", "3 levels (ms)"],
            [
                [n, two.mean_ms, three.mean_ms]
                for n, (two, three) in sorted(results.items())
            ],
            title="Ablation — hierarchy depth (2 top aggregators, fanout 2)",
        )
    )
    two_small, three_small = results[60]
    two_big, three_big = results[800]
    assert three_small.mean_ms > two_small.mean_ms  # hop overhead dominates
    assert three_big.mean_ms < two_big.mean_ms  # leaf parallelism wins


def test_ablation_connection_limit(benchmark):
    """The minimum viable aggregator count tracks the NIC ceiling."""
    from repro.top500 import min_aggregators

    def run():
        return {
            cap: min_aggregators(10_000, connection_limit=cap)
            for cap in (1000, 2500, 5000, 10_000)
        }

    mins = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["connection limit", "min aggregators @ 10k nodes"],
            [[cap, m] for cap, m in sorted(mins.items())],
            title="Ablation — connection-limit ceiling vs required aggregators",
        )
    )
    assert mins[2500] == 4  # the paper's configuration
    assert mins[10_000] == 1  # a big enough NIC would restore the flat design
