"""Fig. 4 — flat control plane: cycle latency vs number of compute nodes.

Paper: a single global controller managing 50 / 500 / 1,250 / 2,500 nodes
averages 1.11 / ~8 / ~20 / 40.40 ms per control cycle, phases growing
proportionally with N and enforce > collect throughout.
"""

import pytest

from benchmarks.conftest import emit
from repro.harness.paper import PAPER
from repro.harness.report import compare_row, format_figure_series, format_table

NODE_COUNTS = (50, 500, 1250, 2500)


@pytest.mark.parametrize("n_stages", NODE_COUNTS)
def test_fig4_flat_latency(benchmark, cache, n_stages):
    result = benchmark.pedantic(
        lambda: cache.flat(n_stages, fresh=True), rounds=1, iterations=1
    )
    target = PAPER.flat_latency_ms[n_stages]
    tolerance = 0.10 if n_stages in PAPER.flat_latency_exact else 0.25
    assert result.mean_ms == pytest.approx(target, rel=tolerance)
    # Fig. 4's qualitative fact at every size:
    phases = result.phase_means_ms()
    assert phases["enforce"] > phases["collect"]
    # Paper: std below 6 %.
    assert result.latency.relative_std < PAPER.max_relative_std


def test_fig4_summary(benchmark, cache):
    """Render the full figure: paper vs measured series + phase stacks."""

    def build():
        rows = []
        series = {"collect": [], "compute": [], "enforce": []}
        for n in NODE_COUNTS:
            result = cache.flat(n)
            rows.append(compare_row(f"flat @ {n}", result.mean_ms, PAPER.flat_latency_ms[n]))
            for phase, value in result.phase_means_ms().items():
                series[phase].append(value)
        table = format_table(
            ["config", "paper (ms)", "measured (ms)", "error"],
            rows,
            title="Fig. 4 — flat design: average control-cycle latency",
        )
        figure = format_figure_series(
            "Fig. 4 — measured phase breakdown (ms)",
            "nodes",
            list(NODE_COUNTS),
            series,
        )
        return table + "\n\n" + figure

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(text)
    assert "flat @ 2500" in text
