"""Shared infrastructure for the paper-reproduction benches.

Experiment runs are expensive (the 10,000-node hierarchical setups
simulate ~40,000 messages per control cycle), so a session-scoped cache
shares each configuration's :class:`ExperimentResult` between the figure
bench (which *measures* the run) and the table benches (which render the
resource rows from the same run).

Every bench prints a paper-vs-measured table straight to the terminal
(bypassing capture) so `pytest benchmarks/ --benchmark-only` shows the
reproduced rows inline.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.harness.experiment import (
    ExperimentResult,
    run_coordinated_experiment,
    run_flat_experiment,
    run_hierarchical_experiment,
)

#: Control cycles per configuration (paper runs >= 5 min; a dozen cycles
#: gives identical means in our deterministic simulator).
FLAT_CYCLES = 12
HIER_CYCLES = 8


class ExperimentCache:
    """Memoised experiment runs shared across bench files."""

    def __init__(self) -> None:
        self._flat: Dict[int, ExperimentResult] = {}
        self._hier: Dict[Tuple[int, int], ExperimentResult] = {}

    def flat(self, n_stages: int, fresh: bool = False) -> ExperimentResult:
        if fresh or n_stages not in self._flat:
            self._flat[n_stages] = run_flat_experiment(
                n_stages, cycles=FLAT_CYCLES
            )
        return self._flat[n_stages]

    def hier(
        self, n_stages: int, n_aggregators: int, fresh: bool = False
    ) -> ExperimentResult:
        key = (n_stages, n_aggregators)
        if fresh or key not in self._hier:
            self._hier[key] = run_hierarchical_experiment(
                n_stages, n_aggregators, cycles=HIER_CYCLES
            )
        return self._hier[key]


@pytest.fixture(scope="session")
def cache() -> ExperimentCache:
    return ExperimentCache()


#: All reproduction tables are appended here (pytest's fd-level capture
#: would otherwise swallow them under the default options). The file is
#: truncated once per pytest session.
REPORT_PATH = Path(__file__).resolve().parent.parent / "bench_report.txt"
_report_initialised = False


def emit(text: str) -> None:
    """Record a reproduction table: stdout (visible with ``-s``) + report file."""
    global _report_initialised
    print("\n" + text)
    mode = "a" if _report_initialised else "w"
    with REPORT_PATH.open(mode, encoding="utf-8") as fh:
        fh.write(text + "\n\n")
    _report_initialised = True
