"""Append-only write-ahead log with CRC framing and batched fsync.

Record format, mirroring the wire protocol's length-prefix discipline::

    [4-byte BE payload length][4-byte BE crc32(payload)][payload]

where the payload is compact UTF-8 JSON. The 8-byte header makes torn
writes detectable: replay walks frames from the start and stops at the
first short header, impossible length, short payload, CRC mismatch, or
undecodable body — everything before that point is durable history,
everything after is a torn tail to be truncated. A crash can therefore
lose the *suffix* of un-synced records but never corrupt the prefix.

Durability is tunable per append: ``sync=True`` forces an ``fsync``
before returning (used for tenant registrations and epoch leases, which
must never be lost), while batched records (per-cycle progress) ride a
group fsync every ``fsync_every`` appends — the classic WAL group-commit
trade: bounded loss window, amortised fsync cost. The bench suite
measures exactly this knob (`repro bench` → ``store`` suite).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["WalError", "WalReplay", "WriteAheadLog", "replay_wal"]

#: Frame header: payload length + crc32, both unsigned 32-bit BE.
_HEADER = struct.Struct(">II")

#: Hard cap per record, mirroring the wire protocol's MAX_FRAME.
MAX_RECORD = 16 * 1024 * 1024


class WalError(RuntimeError):
    """Raised for misuse of the log (closed handle, oversized record)."""


@dataclass
class WalReplay:
    """Outcome of replaying one WAL file from byte zero."""

    #: Decoded records, in append order, up to the last valid frame.
    records: List[Dict] = field(default_factory=list)
    #: Bytes covered by valid frames (the safe truncation point).
    valid_bytes: int = 0
    #: Total bytes in the file when replay started.
    total_bytes: int = 0

    @property
    def torn_bytes(self) -> int:
        """Trailing bytes past the last valid frame (0 = clean log)."""
        return self.total_bytes - self.valid_bytes

    @property
    def clean(self) -> bool:
        """True when every byte in the file belonged to a valid frame."""
        return self.torn_bytes == 0


def replay_wal(path) -> WalReplay:
    """Replay ``path`` tolerantly, stopping at the first invalid frame.

    Missing files replay as empty history (a fresh store). Never raises
    on corruption — a torn or garbage tail simply ends the replay, and
    the caller can truncate to ``valid_bytes``.
    """
    replay = WalReplay()
    try:
        data = open(path, "rb").read()
    except FileNotFoundError:
        return replay
    replay.total_bytes = len(data)
    offset = 0
    while True:
        if offset + _HEADER.size > len(data):
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD:
            break
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(record, dict):
            break
        replay.records.append(record)
        replay.valid_bytes = end
        offset = end
    return replay


class WriteAheadLog:
    """One append-only log file with group-commit fsync batching."""

    def __init__(self, path, fsync_every: int = 8, metrics=None) -> None:
        if fsync_every < 1:
            raise WalError(f"fsync_every must be >= 1: {fsync_every}")
        self.path = os.fspath(path)
        self.fsync_every = fsync_every
        #: Records appended through this handle (not replayed history).
        self.appends = 0
        #: fsync calls issued (the cost the batching amortises).
        self.fsyncs = 0
        #: Payload+header bytes written through this handle.
        self.bytes_written = 0
        self._pending = 0
        self._file = open(self.path, "ab")
        self._m_appends = self._m_fsyncs = self._m_bytes = None
        if metrics is not None:
            self._m_appends = metrics.counter(
                "repro_wal_appends_total", "WAL records appended"
            )
            self._m_fsyncs = metrics.counter(
                "repro_wal_fsyncs_total", "WAL fsync calls issued"
            )
            self._m_bytes = metrics.counter(
                "repro_wal_bytes_total", "WAL bytes written (frames incl. headers)"
            )

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log file."""
        return os.fstat(self._file.fileno()).st_size

    def append(self, record: Dict, sync: bool = False) -> int:
        """Frame and write one record; return its byte offset end.

        ``sync=True`` fsyncs before returning (the record is durable on
        return); otherwise durability arrives with the next group fsync.
        """
        if self._file.closed:
            raise WalError("append on a closed WAL")
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if len(payload) > MAX_RECORD:
            raise WalError(f"record too large: {len(payload)} bytes")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
        self._file.write(frame)
        self.appends += 1
        self.bytes_written += len(frame)
        self._pending += 1
        if self._m_appends is not None:
            self._m_appends.inc()
            self._m_bytes.inc(len(frame))
        if sync or self._pending >= self.fsync_every:
            self.sync()
        return self._file.tell()

    def sync(self) -> None:
        """Flush buffered frames and fsync the file."""
        if self._file.closed or self._pending == 0:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0
        self.fsyncs += 1
        if self._m_fsyncs is not None:
            self._m_fsyncs.inc()

    def truncate(self, to_bytes: int = 0) -> None:
        """Cut the log back to ``to_bytes`` (0 = empty, post-snapshot)."""
        self._file.flush()
        self._file.truncate(to_bytes)
        os.fsync(self._file.fileno())
        self._file.seek(0, os.SEEK_END)
        self._pending = 0

    def close(self) -> None:
        """Sync any pending frames and close the file handle."""
        if self._file.closed:
            return
        self.sync()
        self._file.close()
