"""Durability layer for the service tier (PR 7).

``repro.store`` persists the control plane's externally-visible state —
tenant records, SLOs, and the rule-epoch watermark — across full-plane
restarts. It is two layers glued by :class:`DurableStore`:

* :mod:`repro.store.wal` — an append-only write-ahead log of CRC-framed
  JSON records with batched ``fsync``, replayed tolerantly (a torn tail
  truncates to the last valid record instead of poisoning recovery);
* :mod:`repro.store.snapshot` — a sqlite-backed snapshot of the folded
  state, taken on a cadence so cold restores don't replay unbounded
  history.

The epoch contract (the part chaos schedules lean on): epochs are
*leased* in synced batches ahead of use, per-cycle records ride the
batched fsync, and :meth:`DurableStore.resume_epoch` returns a floor
strictly above anything the pre-crash plane could have issued — so a
rebooted controller can never emit a rule epoch that stage-side fencing
has already seen.
"""

from repro.store.durable import DurableStore
from repro.store.snapshot import SnapshotStore
from repro.store.state import ServiceState, SLORecord, TenantRecord
from repro.store.wal import WalReplay, WriteAheadLog, replay_wal

__all__ = [
    "DurableStore",
    "ServiceState",
    "SLORecord",
    "SnapshotStore",
    "TenantRecord",
    "WalReplay",
    "WriteAheadLog",
    "replay_wal",
]
