"""The durable store: WAL + snapshot glued behind one recovery API.

:class:`DurableStore` owns a directory holding ``wal.log`` and
``snapshot.db``. Opening it *is* recovery: load the latest snapshot,
replay the WAL tail on top (tolerantly — a torn tail truncates to the
last valid record), and compact if anything was replayed so the next
cold restore starts from a fresh snapshot.

The epoch-lease discipline resolves the tension between batched fsync
and the restart invariant ("a rebooted controller never issues an epoch
<= its last durable epoch"). Per-cycle records ride the group fsync and
may be lost in a crash — but the controller only ever *uses* epochs
under a lease that was fsynced before the first cycle of the batch ran.
:meth:`resume_epoch` therefore returns
``max(last_cycle_epoch, leased_upper_bound) + EPOCH_SLACK``: strictly
above anything the dead plane could have put on the wire, by the same
slack rule hot-standby takeover uses (:mod:`repro.core.failover`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.core.failover import resume_epoch as _resume_epoch
from repro.store.snapshot import SnapshotStore
from repro.store.state import ServiceState, SLORecord, TenantRecord
from repro.store.wal import WriteAheadLog, replay_wal

__all__ = ["DurableStore"]

WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.db"


class DurableStore:
    """Directory-backed durable state for the service tier."""

    def __init__(
        self,
        directory,
        fsync_every: int = 8,
        snapshot_every: int = 256,
        lease_batch: int = 64,
        metrics=None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1: {snapshot_every}")
        if lease_batch < 1:
            raise ValueError(f"lease_batch must be >= 1: {lease_batch}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.lease_batch = lease_batch
        self.wal_path = os.path.join(self.directory, WAL_FILE)
        self.snapshot_path = os.path.join(self.directory, SNAPSHOT_FILE)
        self._m_snapshots = None
        self._m_wal_size = None

        # --- recovery: snapshot, then fold the WAL tail on top ---
        self.snapshots = SnapshotStore(self.snapshot_path)
        self.state = self.snapshots.load() or ServiceState()
        replay = replay_wal(self.wal_path)
        for record in replay.records:
            self.state.apply(record)
        #: Records folded from the WAL at open (0 on a clean snapshot).
        self.replayed_records = len(replay.records)
        #: Torn bytes dropped from the WAL tail at open.
        self.torn_bytes = replay.torn_bytes

        self.wal = WriteAheadLog(
            self.wal_path, fsync_every=fsync_every, metrics=metrics
        )
        if not replay.clean:
            # Cut the torn tail so new frames don't land after garbage.
            self.wal.truncate(replay.valid_bytes)
        self._appends_since_snapshot = 0
        if self.replayed_records:
            self.compact()

        if metrics is not None:
            self._m_snapshots = metrics.counter(
                "repro_store_snapshots_total", "snapshots committed"
            )
            self._m_wal_size = metrics.gauge(
                "repro_wal_size_bytes", "current WAL file size"
            )
            self._m_wal_size.set(self.wal.size_bytes)

    # ------------------------------------------------------------------
    # epochs

    @property
    def last_durable_epoch(self) -> int:
        """Highest epoch the plane could have issued before a crash."""
        return self.state.durable_epoch

    def resume_epoch(self) -> int:
        """Epoch floor a rebooted controller must start above.

        The controller's first issued epoch is this + 1 (it increments
        before computing), mirroring hot-standby takeover slack.
        """
        return _resume_epoch(self.state.durable_epoch)

    def lease_epochs(self, upto: Optional[int] = None) -> int:
        """Durably grant epochs up to ``upto`` (default: +lease_batch).

        Synced before returning: once this returns, the controller may
        issue any epoch <= the returned bound without further fsyncs.
        """
        if upto is None:
            upto = self.state.durable_epoch + self.lease_batch
        if upto <= self.state.leased_epoch:
            return self.state.leased_epoch
        record = {"kind": "lease", "upto": int(upto)}
        self.wal.append(record, sync=True)
        self.state.apply(record)
        self._note_append()
        return self.state.leased_epoch

    def record_cycle(self, epoch: int, n_stages: int = 0) -> None:
        """Log one completed cycle (batched fsync; lease covers loss)."""
        record = {"kind": "cycle", "epoch": int(epoch), "n_stages": int(n_stages)}
        self.wal.append(record)
        self.state.apply(record)
        self._note_append()

    # ------------------------------------------------------------------
    # tenants / SLOs

    def put_tenant(
        self, tenant_id: str, name: str, weight: float, created_epoch: int = 0
    ) -> TenantRecord:
        """Durably upsert a tenant (synced before returning)."""
        if weight <= 0:
            raise ValueError(f"tenant weight must be positive: {weight}")
        tenant = TenantRecord(str(tenant_id), str(name), float(weight), created_epoch)
        self.wal.append(tenant.to_record(), sync=True)
        self.state.apply(tenant.to_record())
        self._note_append()
        return tenant

    def put_slo(
        self, tenant_id: str, slo_id: str, job_id: str, min_iops: float = 0.0
    ) -> SLORecord:
        """Durably upsert an SLO under a tenant (synced)."""
        if tenant_id not in self.state.tenants:
            raise KeyError(f"unknown tenant: {tenant_id!r}")
        if min_iops < 0:
            raise ValueError(f"negative min_iops: {min_iops}")
        slo = SLORecord(str(tenant_id), str(slo_id), str(job_id), float(min_iops))
        self.wal.append(slo.to_record(), sync=True)
        self.state.apply(slo.to_record())
        self._note_append()
        return slo

    # ------------------------------------------------------------------
    # snapshot / maintenance

    def _note_append(self) -> None:
        self._appends_since_snapshot += 1
        if self._m_wal_size is not None:
            self._m_wal_size.set(self.wal.size_bytes)
        if self._appends_since_snapshot >= self.snapshot_every:
            self.compact()

    def compact(self) -> None:
        """Snapshot the folded state, then truncate the WAL."""
        self.wal.sync()
        self.snapshots.save(self.state)
        self.wal.truncate(0)
        self._appends_since_snapshot = 0
        if self._m_snapshots is not None:
            self._m_snapshots.inc()
        if self._m_wal_size is not None:
            self._m_wal_size.set(0)

    def inspect(self) -> Dict:
        """Summary dict for ``repro store inspect`` and smoke reports."""
        return {
            "directory": self.directory,
            "tenants": len(self.state.tenants),
            "slos": len(self.state.slos),
            "last_epoch": self.state.last_epoch,
            "leased_epoch": self.state.leased_epoch,
            "durable_epoch": self.state.durable_epoch,
            "resume_epoch": self.resume_epoch(),
            "cycles_recorded": self.state.cycles_recorded,
            "wal_bytes": self.wal.size_bytes,
            "wal_appends": self.wal.appends,
            "wal_fsyncs": self.wal.fsyncs,
            "snapshots_taken": self.snapshots.snapshots_taken,
            "replayed_records": self.replayed_records,
            "torn_bytes": self.torn_bytes,
        }

    def close(self) -> None:
        """Sync and close both layers."""
        self.wal.close()
        self.snapshots.close()
