"""Folded service-tier state and the WAL record vocabulary.

The store persists *records* (small JSON dicts) and folds them into a
:class:`ServiceState`. Every fold is idempotent — epochs fold through
``max()``, tenant/SLO puts are upserts — so replaying a WAL suffix that
was already captured by a snapshot (the crash-between-snapshot-and-
truncate window) converges to the same state instead of double counting.

Record kinds:

``tenant``
    Upsert one tenant: id, display name, PSFA weight, creation epoch.
``slo``
    Upsert one SLO under a tenant: job id and minimum IOPS floor.
``lease``
    Grant the controller epochs up to ``upto`` (synced before use, so
    the resume floor dominates anything the pre-crash plane issued).
``cycle``
    One completed control cycle at ``epoch`` (rides the batched fsync).

Unknown kinds are ignored on replay, so old stores survive new code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ServiceState", "SLORecord", "TenantRecord"]


@dataclass(frozen=True)
class TenantRecord:
    """One registered tenant: identity plus its PSFA sharing weight."""

    tenant_id: str
    name: str
    weight: float
    created_epoch: int = 0

    def to_record(self) -> Dict:
        """The WAL record that recreates this tenant on replay."""
        return {
            "kind": "tenant",
            "tenant_id": self.tenant_id,
            "name": self.name,
            "weight": self.weight,
            "created_epoch": self.created_epoch,
        }


@dataclass(frozen=True)
class SLORecord:
    """One SLO: a tenant's job with an optional minimum-IOPS floor."""

    tenant_id: str
    slo_id: str
    job_id: str
    min_iops: float = 0.0

    def to_record(self) -> Dict:
        """The WAL record that recreates this SLO on replay."""
        return {
            "kind": "slo",
            "tenant_id": self.tenant_id,
            "slo_id": self.slo_id,
            "job_id": self.job_id,
            "min_iops": self.min_iops,
        }


@dataclass
class ServiceState:
    """The fold of all durable records: what a restart restores."""

    tenants: Dict[str, TenantRecord] = field(default_factory=dict)
    #: SLOs keyed "tenant_id/slo_id" (matches the sqlite primary key).
    slos: Dict[str, SLORecord] = field(default_factory=dict)
    #: Highest epoch recorded by a completed cycle.
    last_epoch: int = 0
    #: Upper bound of the highest synced epoch lease.
    leased_epoch: int = 0
    #: Completed cycles folded in (epoch-guarded, so replay-idempotent).
    cycles_recorded: int = 0

    @property
    def durable_epoch(self) -> int:
        """The highest epoch the pre-crash plane could have issued."""
        return max(self.last_epoch, self.leased_epoch)

    def apply(self, record: Dict) -> None:
        """Fold one WAL record into the state (idempotently)."""
        kind = record.get("kind")
        if kind == "tenant":
            tenant = TenantRecord(
                tenant_id=str(record["tenant_id"]),
                name=str(record.get("name", record["tenant_id"])),
                weight=float(record["weight"]),
                created_epoch=int(record.get("created_epoch", 0)),
            )
            self.tenants[tenant.tenant_id] = tenant
        elif kind == "slo":
            slo = SLORecord(
                tenant_id=str(record["tenant_id"]),
                slo_id=str(record["slo_id"]),
                job_id=str(record["job_id"]),
                min_iops=float(record.get("min_iops", 0.0)),
            )
            self.slos[f"{slo.tenant_id}/{slo.slo_id}"] = slo
        elif kind == "lease":
            self.leased_epoch = max(self.leased_epoch, int(record["upto"]))
        elif kind == "cycle":
            epoch = int(record["epoch"])
            if epoch > self.last_epoch:
                self.last_epoch = epoch
                self.cycles_recorded += 1
        # Unknown kinds: forward-compatible no-op.

    def tenant_slos(self, tenant_id: str):
        """All SLOs registered under one tenant, in insertion order."""
        return [s for s in self.slos.values() if s.tenant_id == tenant_id]

    def apply_to_policy(self, policy) -> None:
        """Project tenants/SLOs onto a ``QoSPolicy`` (classes + jobs).

        Each tenant becomes a per-tenant priority class whose weight is
        the tenant's quota; each SLO assigns its job to that class and
        installs the minimum-IOPS floor. This is the tenant-quota →
        PSFA-weight mapping the service tier enforces.
        """
        for tenant in self.tenants.values():
            policy.register_tenant(tenant.tenant_id, tenant.weight)
        for slo in self.slos.values():
            policy.admit_tenant_job(slo.tenant_id, slo.job_id, min_iops=slo.min_iops)
