"""sqlite-backed snapshot store for the folded service state.

A snapshot is the fold of the entire WAL history at a point in time,
committed in one sqlite transaction (atomic on crash: either the old
snapshot or the new one, never a torn mix). After a snapshot commits the
WAL can be truncated, bounding replay work at restore; if the process
dies *between* commit and truncate the stale WAL suffix re-folds
idempotently (see :mod:`repro.store.state`).

Schema: a ``meta`` key/value table for watermarks (``last_epoch``,
``leased_epoch``, ``cycles_recorded``, ``snapshots``), plus ``tenants``
and ``slos`` tables mirroring the record dataclasses.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Optional

from repro.store.state import ServiceState, SLORecord, TenantRecord

__all__ = ["SnapshotStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    weight REAL NOT NULL,
    created_epoch INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS slos (
    tenant_id TEXT NOT NULL,
    slo_id TEXT NOT NULL,
    job_id TEXT NOT NULL,
    min_iops REAL NOT NULL,
    PRIMARY KEY (tenant_id, slo_id)
);
"""


class SnapshotStore:
    """One sqlite file holding the latest snapshot of a ServiceState."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._db = sqlite3.connect(self.path)
        self._db.executescript(_SCHEMA)
        self._db.commit()

    @property
    def snapshots_taken(self) -> int:
        """How many snapshots this file has ever committed."""
        return int(self._meta("snapshots", "0"))

    def _meta(self, key: str, default: str) -> str:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else default

    def save(self, state: ServiceState) -> None:
        """Commit ``state`` as the new snapshot, atomically."""
        with self._db:
            self._db.execute("DELETE FROM tenants")
            self._db.execute("DELETE FROM slos")
            self._db.executemany(
                "INSERT INTO tenants VALUES (?, ?, ?, ?)",
                [
                    (t.tenant_id, t.name, t.weight, t.created_epoch)
                    for t in state.tenants.values()
                ],
            )
            self._db.executemany(
                "INSERT INTO slos VALUES (?, ?, ?, ?)",
                [
                    (s.tenant_id, s.slo_id, s.job_id, s.min_iops)
                    for s in state.slos.values()
                ],
            )
            taken = int(self._meta("snapshots", "0")) + 1
            for key, value in (
                ("last_epoch", state.last_epoch),
                ("leased_epoch", state.leased_epoch),
                ("cycles_recorded", state.cycles_recorded),
                ("snapshots", taken),
            ):
                self._db.execute(
                    "INSERT INTO meta VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (key, str(value)),
                )

    def load(self) -> Optional[ServiceState]:
        """Load the latest snapshot, or ``None`` if none was ever taken."""
        if self._meta("last_epoch", "") == "" and not self.snapshots_taken:
            return None
        state = ServiceState(
            last_epoch=int(self._meta("last_epoch", "0")),
            leased_epoch=int(self._meta("leased_epoch", "0")),
            cycles_recorded=int(self._meta("cycles_recorded", "0")),
        )
        for tenant_id, name, weight, created in self._db.execute(
            "SELECT tenant_id, name, weight, created_epoch FROM tenants"
        ):
            state.tenants[tenant_id] = TenantRecord(tenant_id, name, weight, created)
        for tenant_id, slo_id, job_id, min_iops in self._db.execute(
            "SELECT tenant_id, slo_id, job_id, min_iops FROM slos"
        ):
            state.slos[f"{tenant_id}/{slo_id}"] = SLORecord(
                tenant_id, slo_id, job_id, min_iops
            )
        return state

    def close(self) -> None:
        """Close the sqlite handle."""
        self._db.close()
