"""Table I: the Top500 systems the paper uses to motivate scale.

Data is reproduced verbatim from the paper (June 2024 Top500 list):
rank, Rmax in PFlop/s, compute-node count, and installation year.
:func:`table_rows` regenerates Table I; the helpers answer the motivating
questions (how many nodes do modern systems have; how many aggregators
would each need under the 2,500-connection constraint).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

__all__ = ["SUPERCOMPUTERS", "Supercomputer", "min_aggregators", "table_rows"]

#: Frontera's observed per-node connection ceiling (paper §IV-A).
CONNECTION_LIMIT = 2500


@dataclass(frozen=True)
class Supercomputer:
    """One row of Table I."""

    name: str
    rank: int
    rmax_pflops: float
    n_nodes: int
    year: int

    def __post_init__(self) -> None:
        if self.rank < 1 or self.n_nodes < 1:
            raise ValueError("rank and node count must be positive")


SUPERCOMPUTERS: List[Supercomputer] = [
    Supercomputer("Frontier", 1, 1206.0, 9408, 2021),
    Supercomputer("Aurora", 2, 1012.0, 10624, 2023),
    Supercomputer("Fugaku", 4, 442.0, 158976, 2020),
    Supercomputer("Summit", 9, 148.6, 4608, 2018),
    Supercomputer("Frontera", 33, 23.52, 8368, 2019),
]


def min_aggregators(n_nodes: int, connection_limit: int = CONNECTION_LIMIT) -> int:
    """Minimum aggregator controllers to manage ``n_nodes`` stages.

    The paper sets 4 for its 10,000-node experiments because each Frontera
    node sustains at most 2,500 connections.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1: {n_nodes}")
    if connection_limit < 1:
        raise ValueError(f"connection_limit must be >= 1: {connection_limit}")
    return math.ceil(n_nodes / connection_limit)


def table_rows() -> List[dict]:
    """Table I as a list of dicts (one per system, paper order)."""
    return [
        {
            "System": sc.name,
            "Rank": sc.rank,
            "Rmax (PFlop/s)": sc.rmax_pflops,
            "Number of nodes": sc.n_nodes,
            "Year": sc.year,
        }
        for sc in SUPERCOMPUTERS
    ]
