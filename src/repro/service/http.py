"""Tiny stdlib asyncio HTTP/1.1 server for the service tier.

Deliberately minimal, in the mold of :class:`repro.obs.metrics.MetricsServer`:
one connection per request (``Connection: close``), a readline header
parse with per-read timeouts, JSON in / JSON out. Enough HTTP for a
control-plane front door — tenant registrations and state queries from
``curl`` or the CI smoke — without pulling a web framework into a
repo whose rule is "stdlib only".

Abuse guards at the parse layer: a body-size cap (``413``), a header
count/byte cap so a slowloris-style header stream cannot grow memory
unboundedly (``431``), and a malformed ``Content-Length`` is a client
error (``400``), not a size error. Above the parser, ``max_connections``
bounds concurrently open sockets; excess connections get an immediate
``503`` with ``Retry-After`` instead of queueing without bound.

Request metrics (when a registry is wired): ``repro_http_requests_total``
labelled by method and status class, and a latency histogram.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.guard import ConcurrencyLimiter

__all__ = ["HttpRequest", "HttpResponse", "HttpServer"]

#: Largest request body accepted (tenant records are tiny; this is a
#: plain abuse guard, mirroring the wire protocol's frame cap spirit).
MAX_BODY = 1 * 1024 * 1024

#: Header-section caps: a well-formed client needs a handful of headers,
#: so 64 lines / 16 KiB is generous while keeping a hostile peer from
#: streaming headers forever into the parse buffer.
MAX_HEADERS = 64
MAX_HEADER_BYTES = 16 * 1024

#: Per-read timeout while parsing one request.
READ_TIMEOUT_S = 5.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _RequestError(Exception):
    """Parse-layer rejection carrying the HTTP status to report."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split path, query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict:
        """Decode the body as a JSON object; raises ValueError if not one."""
        if not self.body:
            return {}
        payload = json.loads(self.body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload


@dataclass
class HttpResponse:
    """One response: status code plus a JSON payload or a plain-text body.

    ``headers`` carries extra response headers (e.g. ``Retry-After`` on a
    shed). ``text`` — when not ``None`` — replaces the JSON payload with a
    ``text/plain`` body, which the Prometheus ``/metrics`` route needs.
    """

    status: int
    payload: Dict = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    text: Optional[str] = None

    def encode(self) -> bytes:
        if self.text is not None:
            body = self.text.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(self.payload, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            content_type = "application/json; charset=utf-8"
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + body


class HttpServer:
    """Serve one async ``handler(HttpRequest) -> HttpResponse``."""

    def __init__(
        self,
        handler: Callable[[HttpRequest], Awaitable[HttpResponse]],
        host: str = "127.0.0.1",
        port: int = 0,
        metrics=None,
        max_connections: Optional[int] = None,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.requests_served = 0
        self.connections_shed = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = (
            ConcurrencyLimiter(max_connections)
            if max_connections is not None
            else None
        )
        self._metrics = metrics
        self._m_latency = None
        if metrics is not None:
            self._m_latency = metrics.histogram(
                "repro_http_request_seconds", "request handling latency"
            )

    async def start(self) -> None:
        """Begin serving; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and wait for the socket to release."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _count(self, method: str, status: int) -> None:
        self.requests_served += 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_http_requests_total",
                "HTTP requests served",
                method=method,
                code=str(status),
            ).inc()

    async def _read_request(self, reader) -> Optional[HttpRequest]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=READ_TIMEOUT_S
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=READ_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if len(headers) >= MAX_HEADERS or header_bytes > MAX_HEADER_BYTES:
                raise _RequestError(431, "too many request headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _RequestError(400, "malformed content-length") from None
        if length < 0:
            raise _RequestError(400, "malformed content-length")
        if length > MAX_BODY:
            raise _RequestError(413, "body too large")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT_S
            )
        split = urlsplit(target)
        return HttpRequest(
            method=method,
            path=split.path,
            query=dict(parse_qsl(split.query)),
            headers=headers,
            body=body,
        )

    async def _on_connection(self, reader, writer) -> None:
        if self._connections is not None and not self._connections.try_acquire():
            # Over the socket cap: answer cheaply and hang up rather
            # than letting connections queue without bound.
            self.connections_shed += 1
            self._count("?", 503)
            try:
                writer.write(
                    HttpResponse(
                        503,
                        {"error": "server at connection capacity"},
                        headers={"Retry-After": "1"},
                    ).encode()
                )
                await writer.drain()
                # Consume the request bytes already in flight so the
                # close sends FIN, not RST (an RST would destroy the
                # 503 before the client reads it).
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(reader.read(65536), timeout=0.25)
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass
            return
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Server teardown cancels in-flight connection tasks; finish
            # quietly (the connection is dead either way) so asyncio's
            # streams callback does not log every cancellation as an
            # unhandled error.
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
        finally:
            if self._connections is not None:
                self._connections.release()

    async def _serve_connection(self, reader, writer) -> None:
        started = time.perf_counter()
        method = "?"
        try:
            try:
                request = await self._read_request(reader)
            except _RequestError as exc:
                response = HttpResponse(exc.status, {"error": exc.message})
                request = None
            else:
                if request is None:
                    return
                method = request.method
                try:
                    response = await self.handler(request)
                except Exception as exc:  # noqa: BLE001 - boundary
                    response = HttpResponse(500, {"error": str(exc)})
            self._count(method, response.status)
            if self._m_latency is not None:
                self._m_latency.observe(time.perf_counter() - started)
            writer.write(response.encode())
            await writer.drain()
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
