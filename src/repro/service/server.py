"""The service object: store + policy + live plane + cycle loop.

:class:`ControlService` is the glue the REST API drives. It owns a
:class:`~repro.store.DurableStore`, a :class:`~repro.core.policies.QoSPolicy`
shared by reference with a :class:`~repro.live.harness.LiveHierPlane`,
and a background control-cycle loop that leases epochs ahead of use:

* every registration is WAL-synced *before* it touches the policy, so a
  201 response is a durability receipt;
* the cycle loop extends the epoch lease whenever the next cycle would
  cross the leased bound, then records completed cycles on the batched
  fsync path — the group-commit trade the store is built around;
* :meth:`ControlService.open` *is* crash recovery: fold the snapshot and
  WAL tail, re-project tenants onto the policy, and boot the plane at
  ``store.resume_epoch()`` so the restarted controller's first issued
  epoch strictly dominates everything the dead plane put on the wire.

``run_serve`` is the ``repro serve`` entrypoint: HTTP front door plus
the cycle loop, with a ready-file handshake for scripted callers (the
CI ``service-smoke`` job SIGKILLs it and restarts from the store).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from typing import Dict, List, Optional

from repro.core.control_plane import default_policy
from repro.core.policies import QoSPolicy
from repro.guard import AdmissionGate, DegradationLadder, DemandClamp
from repro.live.harness import LiveHierPlane
from repro.obs.metrics import MetricsRegistry
from repro.service.api import ServiceApi
from repro.service.http import HttpServer
from repro.store.durable import DurableStore
from repro.store.state import SLORecord, TenantRecord

__all__ = ["ControlService", "run_serve"]


class ControlService:
    """One durable, tenant-facing control plane."""

    def __init__(
        self,
        store: DurableStore,
        plane: LiveHierPlane,
        policy: QoSPolicy,
        cycle_period_s: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if cycle_period_s < 0:
            raise ValueError(f"negative cycle_period_s: {cycle_period_s}")
        self.store = store
        self.plane = plane
        self.policy = policy
        self.cycle_period_s = cycle_period_s
        self.metrics = metrics
        #: True when open() found prior durable state (this is a restart).
        self.resumed = False
        #: Epoch the plane booted at (the resume floor).
        self.initial_epoch = plane.initial_epoch
        self.cycles_run = 0
        self._cycle_task: Optional[asyncio.Task] = None

    @classmethod
    def open(
        cls,
        store_dir,
        n_stages: int = 12,
        n_aggregators: int = 3,
        policy: Optional[QoSPolicy] = None,
        cycle_period_s: float = 0.05,
        collect_timeout_s: Optional[float] = 1.0,
        enforce_timeout_s: Optional[float] = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        stage_backoff: Optional[Dict[str, float]] = None,
        degradation: Optional[DegradationLadder] = None,
        demand_clamp: Optional[DemandClamp] = None,
        session_outbox_bytes: Optional[int] = None,
    ) -> "ControlService":
        """Open (or recover) a service from a store directory.

        Recovery is this constructor: the store folds snapshot + WAL,
        tenants re-project onto the policy, and the plane is built with
        ``initial_epoch=store.resume_epoch()`` — the restart epoch rule.
        Guard objects (``degradation``, ``demand_clamp``,
        ``session_outbox_bytes``) are threaded into the plane so they
        survive controller restarts with their learned state intact.
        """
        store = DurableStore(store_dir, metrics=metrics)
        policy = policy or default_policy(n_stages)
        store.state.apply_to_policy(policy)
        resumed = bool(store.state.tenants) or store.last_durable_epoch > 0
        plane = LiveHierPlane(
            n_stages,
            n_aggregators,
            policy,
            collect_timeout_s=collect_timeout_s,
            enforce_timeout_s=enforce_timeout_s,
            initial_epoch=store.resume_epoch(),
            stage_backoff=stage_backoff,
            degradation=degradation,
            demand_clamp=demand_clamp,
            session_outbox_bytes=session_outbox_bytes,
        )
        service = cls(
            store,
            plane,
            policy,
            cycle_period_s=cycle_period_s,
            metrics=metrics,
        )
        service.resumed = resumed
        return service

    # -- lifecycle -----------------------------------------------------------
    async def start(self, run_cycles: bool = True) -> None:
        """Boot the plane and (optionally) the background cycle loop."""
        await self.plane.start()
        if run_cycles:
            self._cycle_task = asyncio.create_task(self._cycle_loop())

    async def cycle_once(self) -> None:
        """Lease-if-needed, run one control cycle, record it durably."""
        if self.plane.epoch + 1 > self.store.state.leased_epoch:
            self.store.lease_epochs()
        await self.plane.run_cycles(1)
        self.store.record_cycle(self.plane.epoch, n_stages=self.plane.n_stages)
        self.cycles_run += 1

    async def _cycle_loop(self) -> None:
        while True:
            await self.cycle_once()
            await asyncio.sleep(self.cycle_period_s)

    async def stop(self) -> None:
        """Stop cycling, tear the plane down, close the store."""
        if self._cycle_task is not None:
            self._cycle_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._cycle_task
            self._cycle_task = None
        await self.plane.stop()
        self.store.close()

    # -- tenant semantics ----------------------------------------------------
    def register_tenant(
        self, tenant_id: str, name: str, weight: float
    ) -> TenantRecord:
        """Durably record the tenant, then map its quota to a PSFA class."""
        tenant = self.store.put_tenant(
            tenant_id, name, weight, created_epoch=self.epoch
        )
        self.policy.register_tenant(tenant_id, weight)
        return tenant

    def register_slo(
        self, tenant_id: str, slo_id: str, job_id: str, min_iops: float = 0.0
    ) -> SLORecord:
        """Durably record the SLO, then admit the job to the tenant class."""
        # Validate against the live policy *before* the durable write so
        # an over-committed floor never lands in the WAL.
        probe = QoSPolicy(
            pfs_capacity_iops=self.policy.pfs_capacity_iops,
            metadata_capacity_iops=self.policy.metadata_capacity_iops,
            classes=dict(self.policy.classes),
            job_classes=dict(self.policy.job_classes),
            min_guarantee_iops=dict(self.policy.min_guarantee_iops),
            default_class=self.policy.default_class,
            headroom_fraction=self.policy.headroom_fraction,
        )
        probe.admit_tenant_job(tenant_id, job_id, min_iops=min_iops)
        slo = self.store.put_slo(tenant_id, slo_id, job_id, min_iops=min_iops)
        self.policy.admit_tenant_job(tenant_id, job_id, min_iops=min_iops)
        return slo

    # -- read model ----------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Current rule epoch (the plane's, falling back to the floor)."""
        return self.plane.epoch if self.plane.controller else self.initial_epoch

    @property
    def restarts(self) -> int:
        """In-process plane restarts since this service object booted."""
        return self.plane.restarts

    def recent_cycles(self, limit: int = 20) -> List:
        """The last ``limit`` completed control cycles, oldest first."""
        controller = self.plane.controller
        if controller is None or limit <= 0:
            return []
        return list(controller.cycles[-limit:])

    def current_limits(self) -> Dict[str, float]:
        """Last computed per-stage limit (stage id → IOPS)."""
        controller = self.plane.controller
        if controller is None:
            return {}
        return dict(controller.last_allocations)

    def enforced_limits_for(self, tenant_id: str) -> Dict[str, float]:
        """Per-job enforced limits for one tenant's SLO'd jobs.

        Job ids map onto stage ids by the harness's naming convention
        (``job-00001`` runs on ``stage-00001``), which is how the REST
        read model joins SLOs to the controller's allocation table.
        """
        limits = self.current_limits()
        out: Dict[str, float] = {}
        for slo in self.store.state.tenant_slos(tenant_id):
            stage_id = slo.job_id.replace("job", "stage")
            if stage_id in limits:
                out[slo.job_id] = limits[stage_id]
        return out


async def run_serve(
    store_dir,
    port: int = 0,
    host: str = "127.0.0.1",
    n_stages: int = 12,
    n_aggregators: int = 3,
    cycle_period_s: float = 0.05,
    max_cycles: Optional[int] = None,
    ready_file: Optional[str] = None,
    admission_rate: float = 200.0,
    admission_burst: Optional[float] = None,
    max_connections: int = 256,
    session_outbox_bytes: int = 256 * 1024,
) -> Dict:
    """Serve the REST API over a live plane until signalled (or a cap).

    Writes ``ready_file`` (JSON: bound port, pid, resume epoch) once the
    plane is up — the handshake scripted callers and the CI smoke use —
    and exits cleanly on SIGTERM/SIGINT or after ``max_cycles`` cycles.
    Returns a summary dict (the ``repro serve`` JSON output).

    Overload protection is on by default: an admission gate in front of
    the route table (``429``/``503`` + ``Retry-After``), a socket cap at
    the accept loop, bounded per-session outboxes on the wire plane, a
    demand clamp against lying tenants, and a degradation ladder that
    stretches the cycle interval when cycles keep degrading.
    """
    metrics = MetricsRegistry()
    degradation = DegradationLadder()
    demand_clamp = DemandClamp()
    service = ControlService.open(
        store_dir,
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        cycle_period_s=cycle_period_s,
        metrics=metrics,
        stage_backoff=dict(backoff_base_s=0.02, backoff_factor=1.5, backoff_max_s=0.2),
        degradation=degradation,
        demand_clamp=demand_clamp,
        session_outbox_bytes=session_outbox_bytes,
    )
    gate = AdmissionGate(
        rate=admission_rate, burst=admission_burst, metrics=metrics
    )
    api = ServiceApi(service, gate=gate, metrics=metrics)
    http = HttpServer(
        api.handle,
        host=host,
        port=port,
        metrics=metrics,
        max_connections=max_connections,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)
    await service.start(run_cycles=False)
    await http.start()
    if ready_file:
        payload = {
            "port": http.port,
            "pid": os.getpid(),
            "resumed": service.resumed,
            "initial_epoch": service.initial_epoch,
        }
        tmp = f"{ready_file}.tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f)
        os.replace(tmp, ready_file)
    try:
        while not stop.is_set():
            await service.cycle_once()
            if max_cycles is not None and service.cycles_run >= max_cycles:
                break
            # The degradation ladder stretches the cycle interval when
            # cycles keep running degraded — shed control work first.
            pause = service.cycle_period_s * service.plane.interval_multiplier
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=pause)
    finally:
        await http.stop()
        summary = {
            "port": http.port,
            "cycles_run": service.cycles_run,
            "epoch": service.epoch,
            "resumed": service.resumed,
            "initial_epoch": service.initial_epoch,
            "tenants": len(service.store.state.tenants),
            "requests_served": http.requests_served,
            "requests_shed": gate.shed_total,
            "connections_shed": http.connections_shed,
            "degradation_level": degradation.level,
            "demand_clamps": demand_clamp.clamps,
            "store": service.store.inspect(),
        }
        await service.stop()
    return summary
