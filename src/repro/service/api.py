"""REST route table for the service tier.

The API a tenant (or the CI smoke's ``curl``) talks to:

================  ======================  =====================================
Method            Path                    Meaning
================  ======================  =====================================
``POST``          ``/tenants``            Register a tenant (id, name, weight)
``GET``           ``/tenants``            List tenants with PSFA weights
``GET``           ``/tenants/{id}``       One tenant, its SLOs, enforced limits
``POST``          ``/tenants/{id}/slos``  Register an SLO (job id + IOPS floor)
``GET``           ``/cycles``             Recent control cycles (epoch, phases)
``GET``           ``/rules``              Current rule epoch + per-stage limits
``GET``           ``/store``              Durable-store watermarks (inspect)
``GET``           ``/healthz``            Liveness + resume-epoch summary
``GET``           ``/metrics``            Prometheus exposition (text)
================  ======================  =====================================

Handlers are thin: validation here, semantics on
:class:`repro.service.server.ControlService`, durability below that in
:class:`repro.store.DurableStore`. Writes return only after the WAL
fsync — a 201 is a durability receipt, not an intent.

When an :class:`~repro.guard.AdmissionGate` is wired, every request is
classified before routing — ``/healthz`` and ``/metrics`` are CRITICAL
(never shed, so the probe path stays observable during a flood), other
``GET`` s are READ, everything else is MUTATION — and a shed becomes a
``429``/``503`` with a ``Retry-After`` header before any service code
runs. Mutations shed first: they race the global bucket *and* a
per-tenant bucket *and* a reduced concurrency headroom.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.core.policies import PolicyError
from repro.guard import AdmissionGate, Priority
from repro.service.http import HttpRequest, HttpResponse

__all__ = ["ServiceApi"]


def _bad_request(message: str) -> HttpResponse:
    return HttpResponse(400, {"error": message})


class ServiceApi:
    """Dispatch :class:`HttpRequest` onto a ``ControlService``."""

    def __init__(
        self,
        service,
        gate: Optional[AdmissionGate] = None,
        metrics=None,
    ) -> None:
        self.service = service
        self.gate = gate
        self.metrics = metrics

    @staticmethod
    def _classify(method: str, segments) -> Tuple[int, Optional[str]]:
        """Map a request onto (priority, tenant key) for admission."""
        if segments in (["healthz"], ["metrics"]):
            return Priority.CRITICAL, None
        tenant = None
        if len(segments) >= 2 and segments[0] == "tenants":
            tenant = segments[1]
        if method == "GET":
            return Priority.READ, tenant
        return Priority.MUTATION, tenant

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; unknown paths get a 404, bad verbs a 405."""
        segments = [s for s in request.path.split("/") if s]
        if self.gate is None:
            return await self._dispatch(request, segments)
        priority, tenant = self._classify(request.method, segments)
        admission = self.gate.admit(priority, tenant=tenant)
        if not admission.admitted:
            retry_s = max(1, math.ceil(admission.retry_after_s))
            return HttpResponse(
                admission.status,
                {
                    "error": f"shed: {admission.reason}",
                    "retry_after_s": admission.retry_after_s,
                },
                headers={"Retry-After": str(retry_s)},
            )
        try:
            return await self._dispatch(request, segments)
        finally:
            self.gate.release()

    async def _dispatch(self, request: HttpRequest, segments) -> HttpResponse:
        route = self._match(request.method, segments)
        if route is None:
            known = self._match_any_method(segments)
            if known:
                return HttpResponse(405, {"error": f"method {request.method} not allowed"})
            return HttpResponse(404, {"error": f"no such path: {request.path}"})
        handler, params = route
        try:
            body = request.json()
        except ValueError as exc:
            return _bad_request(f"invalid JSON body: {exc}")
        return await handler(body, params, request.query)

    # -- routing -------------------------------------------------------------
    def _match(self, method: str, segments) -> Optional[Tuple]:
        if segments == ["tenants"]:
            if method == "POST":
                return self._post_tenant, {}
            if method == "GET":
                return self._get_tenants, {}
        elif len(segments) == 2 and segments[0] == "tenants":
            if method == "GET":
                return self._get_tenant, {"tenant_id": segments[1]}
        elif (
            len(segments) == 3
            and segments[0] == "tenants"
            and segments[2] == "slos"
        ):
            if method == "POST":
                return self._post_slo, {"tenant_id": segments[1]}
        elif len(segments) == 1 and method == "GET":
            simple = {
                "cycles": self._get_cycles,
                "rules": self._get_rules,
                "store": self._get_store,
                "healthz": self._get_health,
                "metrics": self._get_metrics,
            }
            if segments[0] in simple:
                return simple[segments[0]], {}
        return None

    def _match_any_method(self, segments) -> bool:
        return any(
            self._match(m, segments) is not None
            for m in ("GET", "POST", "PUT", "DELETE")
        )

    # -- write handlers ------------------------------------------------------
    async def _post_tenant(self, body: Dict, params, query) -> HttpResponse:
        tenant_id = body.get("tenant_id")
        if not tenant_id or not isinstance(tenant_id, str):
            return _bad_request("tenant_id (string) is required")
        if "/" in tenant_id:
            return _bad_request("tenant_id must not contain '/'")
        try:
            weight = float(body.get("weight", 0))
        except (TypeError, ValueError):
            return _bad_request("weight must be a number")
        if weight <= 0:
            return _bad_request("weight must be positive")
        created = tenant_id not in self.service.store.state.tenants
        try:
            tenant = self.service.register_tenant(
                tenant_id, name=str(body.get("name", tenant_id)), weight=weight
            )
        except (ValueError, PolicyError) as exc:
            return _bad_request(str(exc))
        return HttpResponse(201 if created else 200, self._tenant_payload(tenant))

    async def _post_slo(self, body: Dict, params, query) -> HttpResponse:
        tenant_id = params["tenant_id"]
        if tenant_id not in self.service.store.state.tenants:
            return HttpResponse(404, {"error": f"unknown tenant: {tenant_id}"})
        slo_id = body.get("slo_id")
        job_id = body.get("job_id")
        if not slo_id or not isinstance(slo_id, str):
            return _bad_request("slo_id (string) is required")
        if not job_id or not isinstance(job_id, str):
            return _bad_request("job_id (string) is required")
        try:
            min_iops = float(body.get("min_iops", 0.0))
        except (TypeError, ValueError):
            return _bad_request("min_iops must be a number")
        try:
            slo = self.service.register_slo(tenant_id, slo_id, job_id, min_iops)
        except (ValueError, KeyError, PolicyError) as exc:
            return _bad_request(str(exc))
        return HttpResponse(
            201,
            {
                "tenant_id": slo.tenant_id,
                "slo_id": slo.slo_id,
                "job_id": slo.job_id,
                "min_iops": slo.min_iops,
            },
        )

    # -- read handlers -------------------------------------------------------
    def _tenant_payload(self, tenant) -> Dict:
        state = self.service.store.state
        return {
            "tenant_id": tenant.tenant_id,
            "name": tenant.name,
            "weight": tenant.weight,
            "created_epoch": tenant.created_epoch,
            "slos": [
                {
                    "slo_id": s.slo_id,
                    "job_id": s.job_id,
                    "min_iops": s.min_iops,
                }
                for s in state.tenant_slos(tenant.tenant_id)
            ],
        }

    async def _get_tenants(self, body, params, query) -> HttpResponse:
        state = self.service.store.state
        weights = self.service.policy.tenant_weights()
        return HttpResponse(
            200,
            {
                "tenants": [
                    dict(
                        self._tenant_payload(t),
                        enforced_weight=weights.get(t.tenant_id),
                    )
                    for t in state.tenants.values()
                ]
            },
        )

    async def _get_tenant(self, body, params, query) -> HttpResponse:
        tenant = self.service.store.state.tenants.get(params["tenant_id"])
        if tenant is None:
            return HttpResponse(
                404, {"error": f"unknown tenant: {params['tenant_id']}"}
            )
        payload = self._tenant_payload(tenant)
        payload["enforced_weight"] = self.service.policy.tenant_weights().get(
            tenant.tenant_id
        )
        payload["enforced_limits"] = self.service.enforced_limits_for(
            tenant.tenant_id
        )
        return HttpResponse(200, payload)

    async def _get_cycles(self, body, params, query) -> HttpResponse:
        try:
            limit = int(query.get("limit", "20"))
        except ValueError:
            return _bad_request("limit must be an integer")
        cycles = self.service.recent_cycles(limit)
        return HttpResponse(
            200,
            {
                "epoch": self.service.epoch,
                "cycles": [
                    {
                        "epoch": c.epoch,
                        "collect_s": c.collect_s,
                        "compute_s": c.compute_s,
                        "enforce_s": c.enforce_s,
                        "n_stages": c.n_stages,
                        "n_missing": c.n_missing,
                        "timed_out": c.timed_out,
                    }
                    for c in cycles
                ],
            },
        )

    async def _get_rules(self, body, params, query) -> HttpResponse:
        return HttpResponse(
            200,
            {
                "epoch": self.service.epoch,
                "resume_floor": self.service.store.resume_epoch(),
                "limits": self.service.current_limits(),
            },
        )

    async def _get_store(self, body, params, query) -> HttpResponse:
        return HttpResponse(200, self.service.store.inspect())

    async def _get_metrics(self, body, params, query) -> HttpResponse:
        if self.metrics is None:
            return HttpResponse(404, {"error": "no metrics registry wired"})
        return HttpResponse(200, text=self.metrics.render())

    async def _get_health(self, body, params, query) -> HttpResponse:
        store = self.service.store
        return HttpResponse(
            200,
            {
                "ok": True,
                "epoch": self.service.epoch,
                "durable_epoch": store.last_durable_epoch,
                "resume_epoch": store.resume_epoch(),
                "tenants": len(store.state.tenants),
                "cycles_run": self.service.cycles_run,
                "restarts": self.service.restarts,
                "resumed": self.service.resumed,
                "initial_epoch": self.service.initial_epoch,
            },
        )
