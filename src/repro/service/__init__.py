"""The multi-tenant service tier: a REST front door for the plane (PR 7).

``repro.service`` is what turns the reproduction from a lab harness into
a service: tenants register jobs and SLOs over HTTP
(``POST /tenants``, ``POST /tenants/{id}/slos``), their quotas map onto
PSFA weights in the live policy, and every registration is durable in a
:class:`repro.store.DurableStore` before the response goes out — so a
``kill -9`` of the whole plane followed by ``repro serve`` against the
same store directory resumes with the same tenants, the same weights,
and a rule epoch strictly above everything the dead plane issued.

Layers: :mod:`repro.service.http` (stdlib asyncio HTTP/1.1 plumbing,
modelled on the obs metrics endpoint), :mod:`repro.service.api` (the
route table over a :class:`ControlService`), and
:mod:`repro.service.server` (the service object gluing store + policy +
live plane + control-cycle loop, plus the ``repro serve`` entrypoint).
"""

from repro.service.api import ServiceApi
from repro.service.http import HttpRequest, HttpResponse, HttpServer
from repro.service.server import ControlService, run_serve

__all__ = [
    "ControlService",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "ServiceApi",
    "run_serve",
]
