"""Chaos harness: seeded fault schedules + per-cycle invariant checking.

The dependability counterpart of the scaling benchmarks (paper §VI): a
control plane that only survives the happy path has not been tested at
all. This package draws a reproducible fault schedule from a seed
(:mod:`repro.chaos.schedule`), runs it against either the simulated or
the live plane (:mod:`repro.chaos.runner`), and asserts the tentpole
invariants after every control cycle (:mod:`repro.chaos.invariants`):
enforced allocations never exceed capacity, applied epochs never move
backwards, orphaned stages re-home within the configured bound, and a
standby takeover stays inside the heartbeat-budget gap.

Full-restart schedules (PR 7) add the durable-store invariant: kill -9
the *whole* plane mid-schedule, restart from the store, and assert the
rebooted controller never issues a rule epoch at or below its last
durable epoch (``repro chaos --plane live --schedule full-restart``).

Overload schedules (PR 8) turn tenants adversarial instead of killing
processes: demand liars, noisy neighbors and metadata storms run while
a client floods the REST front door at 10x the admission rate, and the
invariants flip to graceful degradation — honest stages keep their
weighted fair share, per-session outbound queues stay bounded, and
``/healthz`` answers throughout (``repro chaos --schedule overload``).

CLI: ``repro chaos --plane live --design hier --seed 7`` (exit 1 on any
violation; ``--report-out`` writes the JSON report, the CI artifact).
"""

from repro.chaos.invariants import ChaosReport, InvariantChecker, Violation
from repro.chaos.runner import (
    run_chaos_live,
    run_chaos_overload,
    run_chaos_restart,
    run_chaos_shard,
    run_chaos_sim,
)
from repro.chaos.schedule import (
    ChaosSchedule,
    FaultAction,
    generate_overload_schedule,
    generate_restart_schedule,
    generate_schedule,
)

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "FaultAction",
    "InvariantChecker",
    "Violation",
    "generate_overload_schedule",
    "generate_restart_schedule",
    "generate_schedule",
    "run_chaos_live",
    "run_chaos_overload",
    "run_chaos_restart",
    "run_chaos_shard",
    "run_chaos_sim",
]
