"""Seeded fault schedules for the chaos harness.

A :class:`ChaosSchedule` is a deterministic function of its seed: the
same ``(seed, design, n_cycles, n_aggregators, n_stages)`` tuple always
yields the same fault sequence, so any chaos failure reproduces from the
seed alone. Schedules are expressed in *cycle* coordinates (inject just
before cycle ``k``) and translated to wall/sim time by the runners.

Safety constraints keep a schedule survivable by construction — the
invariants are meant to hold, so the schedule must not ask for the
impossible:

* at least one aggregator is never killed (orphans need a new home);
* the global controller is killed at most once (there is one standby);
* the first cycles are fault-free (registration settles first) and the
  tail is fault-free (recovery is observable before the run ends).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List

__all__ = [
    "FaultAction",
    "ChaosSchedule",
    "generate_schedule",
    "generate_restart_schedule",
    "generate_overload_schedule",
]

#: Fault kinds a schedule may contain, per plane design.
HIER_KINDS = ("kill_aggregator", "stall_aggregator", "kill_stage", "stall_stage")
FLAT_KINDS = ("kill_stage", "stall_stage", "kill_primary")
#: The full-restart schedule's only kind: kill -9 the whole control
#: plane (controller + every aggregator at once), restart from store.
RESTART_KINDS = ("kill_plane",)
#: Adversarial-tenant kinds for overload schedules (PR 8): a stage that
#: reports demand wildly above anything it uses (``demand_liar``), a
#: stage whose *real* demand explodes (``noisy_neighbor``), a stage
#: flooding the metadata axis (``metadata_storm``), plus ``orphan_liar``
#: — kill the liar's aggregator so its inflated demand flows through the
#: orphan-reservation path — and ``restore``, which ends an adversary.
OVERLOAD_KINDS = ("demand_liar", "noisy_neighbor", "metadata_storm")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: inject just before cycle ``cycle`` runs.

    ``target`` indexes the victim (aggregator or stage, by build order);
    it is ``-1`` for ``kill_primary``. ``duration_s`` only matters for
    stalls.
    """

    cycle: int
    kind: str
    target: int
    duration_s: float = 0.0


@dataclass
class ChaosSchedule:
    """A reproducible fault sequence plus the parameters that made it."""

    seed: int
    design: str
    n_cycles: int
    n_stages: int
    n_aggregators: int
    actions: List[FaultAction] = field(default_factory=list)

    def at_cycle(self, cycle: int) -> List[FaultAction]:
        """Actions to inject just before ``cycle`` runs."""
        return [a for a in self.actions if a.cycle == cycle]

    def kills_of(self, kind: str) -> List[FaultAction]:
        return [a for a in self.actions if a.kind == kind]

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "design": self.design,
            "n_cycles": self.n_cycles,
            "n_stages": self.n_stages,
            "n_aggregators": self.n_aggregators,
            "actions": [asdict(a) for a in self.actions],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def generate_schedule(
    seed: int,
    design: str,
    n_cycles: int,
    n_stages: int,
    n_aggregators: int = 0,
    fault_rate: float = 0.35,
    stall_s: float = 0.3,
    warmup_cycles: int = 2,
    cooldown_cycles: int = 3,
) -> ChaosSchedule:
    """Draw a survivable fault schedule from ``random.Random(seed)``.

    ``fault_rate`` is the per-cycle probability of injecting one fault
    during the eligible window ``[warmup_cycles, n_cycles -
    cooldown_cycles)``. ``design`` is ``"hier"`` (aggregator tree) or
    ``"flat"`` (primary + hot standby).
    """
    if design not in ("hier", "flat"):
        raise ValueError(f"unknown chaos design: {design}")
    if design == "hier" and n_aggregators < 2:
        raise ValueError("hier chaos needs >= 2 aggregators (one must survive)")
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1]: {fault_rate}")
    first = warmup_cycles
    last = n_cycles - cooldown_cycles
    if last <= first:
        raise ValueError(
            f"no eligible fault window: {n_cycles} cycles with "
            f"warmup={warmup_cycles}, cooldown={cooldown_cycles}"
        )
    rng = random.Random(seed)
    kinds = HIER_KINDS if design == "hier" else FLAT_KINDS
    aggs_killed: set = set()
    primary_killed = False
    actions: List[FaultAction] = []
    for cycle in range(first, last):
        if rng.random() >= fault_rate:
            continue
        kind = rng.choice(kinds)
        if kind == "kill_aggregator":
            # Keep at least one aggregator alive, forever.
            alive = [a for a in range(n_aggregators) if a not in aggs_killed]
            if len(alive) < 2:
                kind = "stall_aggregator"
            else:
                target = rng.choice(alive)
                aggs_killed.add(target)
                actions.append(FaultAction(cycle, kind, target))
                continue
        if kind == "stall_aggregator":
            alive = [a for a in range(n_aggregators) if a not in aggs_killed]
            actions.append(
                FaultAction(cycle, kind, rng.choice(alive), duration_s=stall_s)
            )
        elif kind == "kill_primary":
            if primary_killed:
                kind = "stall_stage"  # budget spent; fall through below
            else:
                primary_killed = True
                actions.append(FaultAction(cycle, kind, -1))
                continue
        if kind == "kill_stage":
            actions.append(FaultAction(cycle, kind, rng.randrange(n_stages)))
        elif kind == "stall_stage":
            actions.append(
                FaultAction(
                    cycle, kind, rng.randrange(n_stages), duration_s=stall_s
                )
            )
    return ChaosSchedule(
        seed=seed,
        design=design,
        n_cycles=n_cycles,
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        actions=actions,
    )


def generate_overload_schedule(
    seed: int,
    n_cycles: int,
    n_stages: int,
    n_aggregators: int,
    warmup_cycles: int = 3,
    cooldown_cycles: int = 3,
    orphan_the_liar: bool = True,
) -> ChaosSchedule:
    """Draw an adversarial-tenant schedule for the overload harness.

    At most ``ceil(n_stages / 3)`` stages turn adversarial — the honest
    majority is what the fair-share invariant is checked against. A
    ``demand_liar`` is always present (it is the attack the demand clamp
    exists for); ``noisy_neighbor`` and ``metadata_storm`` join when the
    adversary budget allows. When ``orphan_the_liar`` is set the liar's
    aggregator is killed a couple of cycles in, routing the inflated
    demand through the orphan-reservation path (the nastiest consumer of
    a lied demand vector). Every adversary gets a matching ``restore``
    action before the cooldown window so recovery is observable.
    """
    if n_stages < 2:
        raise ValueError("overload chaos needs >= 2 stages (one honest)")
    if orphan_the_liar and n_aggregators < 2:
        raise ValueError(
            "orphaning the liar needs >= 2 aggregators (one must survive)"
        )
    first = warmup_cycles
    last = n_cycles - cooldown_cycles
    if last - first < 3:
        raise ValueError(
            f"no eligible overload window: {n_cycles} cycles with "
            f"warmup={warmup_cycles}, cooldown={cooldown_cycles}"
        )
    rng = random.Random(seed)
    max_adversaries = max(1, -(-n_stages // 3))  # ceil(n/3)
    n_adversaries = min(max_adversaries, len(OVERLOAD_KINDS))
    targets = rng.sample(range(n_stages), n_adversaries)
    kinds = list(OVERLOAD_KINDS[:n_adversaries])
    rng.shuffle(kinds)
    actions: List[FaultAction] = []
    liar_target = None
    for kind, target in zip(kinds, targets):
        start = rng.randrange(first, first + 2)
        actions.append(FaultAction(start, kind, target))
        actions.append(FaultAction(last, "restore", target))
        if kind == "demand_liar":
            liar_target = target
    if orphan_the_liar and liar_target is not None:
        # Two cycles after the lie starts, so the inflated report is in
        # the controller's demand cache when the aggregator dies.
        liar_start = next(
            a.cycle for a in actions if a.kind == "demand_liar"
        )
        actions.append(
            FaultAction(
                min(liar_start + 2, last - 1), "orphan_liar", liar_target
            )
        )
    actions.sort(key=lambda a: (a.cycle, a.kind))
    return ChaosSchedule(
        seed=seed,
        design="overload",
        n_cycles=n_cycles,
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        actions=actions,
    )


def generate_restart_schedule(
    seed: int,
    n_cycles: int,
    n_stages: int,
    n_aggregators: int,
    n_restarts: int = 1,
    warmup_cycles: int = 3,
    cooldown_cycles: int = 4,
    min_gap_cycles: int = 4,
) -> ChaosSchedule:
    """Draw a full-plane restart schedule (``kill_plane`` actions).

    The whole control plane — global controller and every aggregator —
    dies at once (the in-process ``kill -9``) and is restarted from the
    durable store. Survivability constraints mirror the fault schedules:
    warmup and cooldown windows are restart-free, and consecutive
    restarts are at least ``min_gap_cycles`` apart so each recovery is
    observable before the next kill.
    """
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1: {n_restarts}")
    if min_gap_cycles < 1:
        raise ValueError(f"min_gap_cycles must be >= 1: {min_gap_cycles}")
    first = warmup_cycles
    last = n_cycles - cooldown_cycles
    if last <= first:
        raise ValueError(
            f"no eligible restart window: {n_cycles} cycles with "
            f"warmup={warmup_cycles}, cooldown={cooldown_cycles}"
        )
    if (n_restarts - 1) * min_gap_cycles >= last - first:
        raise ValueError(
            f"{n_restarts} restarts with gap {min_gap_cycles} do not fit "
            f"in window [{first}, {last})"
        )
    rng = random.Random(seed)
    chosen: List[int] = []
    candidates = list(range(first, last))
    rng.shuffle(candidates)
    for cycle in candidates:
        if all(abs(cycle - c) >= min_gap_cycles for c in chosen):
            chosen.append(cycle)
            if len(chosen) == n_restarts:
                break
    actions = [FaultAction(c, "kill_plane", -1) for c in sorted(chosen)]
    return ChaosSchedule(
        seed=seed,
        design="restart",
        n_cycles=n_cycles,
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        actions=actions,
    )
