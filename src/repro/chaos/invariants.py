"""Per-cycle invariant checks and the chaos report.

The harness asserts four properties after every control cycle, whatever
faults the schedule injected (tentpole invariants, paper §VI):

* **capacity** — the sum of limits the stages actually enforce never
  exceeds the policy's allocatable capacity (within float tolerance).
  This is the property the orphan-demand reservation exists to protect:
  a dead aggregator's stages keep enforcing their last rules, so their
  share must stay reserved until they re-home.
* **epoch monotonicity** — a stage's applied epoch never decreases; late
  rules from dead controllers are fenced, takeovers jump *forward* via
  ``EPOCH_SLACK``.
* **re-home bound** — no stage stays orphaned longer than
  ``rehome_bound_cycles`` cycles after its aggregator was declared dead.
* **adaptation gap** — after a primary kill, the standby's measured gap
  is ≤ ``heartbeat_interval_s × missed_heartbeats`` + one control cycle.
* **resume floor** (full-restart schedules, PR 7) — a controller
  rebooted from the durable store never issues a rule epoch at or below
  the store's last durable epoch; otherwise stage-side fencing would
  silently discard every post-restart rule.

Overload schedules (PR 8) add three more:

* **honest share** — every honest (non-adversarial) stage's allocation
  stays at or above a fraction of its weighted fair entitlement
  ``min(demand, capacity × w / W)``, whatever the demand liars report.
* **queue bound** — no controller/aggregator session's pending outbound
  bytes exceed the configured outbox bound (plus a small non-sheddable
  residue allowance); backpressure must shed, not buffer.
* **healthz** — the liveness probe stays answerable under flood: its
  p99 latency is bounded and no probe fails outright.

Violations are collected, not raised: a chaos run always completes and
reports everything it saw (:class:`ChaosReport`, JSON-serialisable for
the CI artifact).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["Violation", "ChaosReport", "InvariantChecker"]

#: Relative slack for float comparisons against capacity.
CAPACITY_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the cycle that exposed it."""

    cycle: int
    #: One of "capacity" | "epoch" | "rehome" | "gap" | "resume"
    #: | "share" | "queue" | "healthz" | "shed".
    invariant: str
    detail: str


@dataclass
class ChaosReport:
    """Outcome of one chaos run: schedule echo + violations + counters."""

    seed: int
    plane: str  # "sim" | "live"
    design: str  # "hier" | "flat"
    n_cycles: int
    n_stages: int
    n_aggregators: int
    actions: List[Dict] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    checks: int = 0
    cycles_completed: int = 0
    cycles_degraded: int = 0
    rehomes: int = 0
    takeovers: int = 0
    #: Full-plane kill/restart round-trips completed (restart schedules).
    restarts: int = 0
    gap_s: Optional[float] = None
    #: Overload-schedule counters: offered/admitted/shed HTTP requests
    #: during the flood, and the liveness probe's p99 under it.
    requests_flooded: int = 0
    requests_admitted: int = 0
    requests_shed: int = 0
    healthz_p99_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["ok"] = self.ok
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"chaos[{self.plane}/{self.design}] seed={self.seed} "
            f"cycles={self.cycles_completed}/{self.n_cycles} "
            f"faults={len(self.actions)} degraded={self.cycles_degraded} "
            f"rehomes={self.rehomes} takeovers={self.takeovers} "
            f"restarts={self.restarts} checks={self.checks}: {verdict}"
        )


class InvariantChecker:
    """Stateful per-cycle checker; feed it after every completed cycle."""

    def __init__(
        self,
        capacity_iops: float,
        rehome_bound_cycles: int = 3,
    ) -> None:
        if capacity_iops <= 0:
            raise ValueError(f"capacity must be positive: {capacity_iops}")
        if rehome_bound_cycles < 1:
            raise ValueError(
                f"rehome_bound_cycles must be >= 1: {rehome_bound_cycles}"
            )
        self.capacity_iops = float(capacity_iops)
        self.rehome_bound_cycles = int(rehome_bound_cycles)
        self.violations: List[Violation] = []
        self.checks = 0
        self._last_epoch: Dict[str, int] = {}
        self._orphan_age: Dict[str, int] = {}

    # -- per-cycle checks ----------------------------------------------------
    def check_capacity(self, cycle: int, limits: Mapping[str, float]) -> None:
        """Sum of *enforced* limits must fit the allocatable capacity."""
        self.checks += 1
        total = sum(limits.values())
        bound = self.capacity_iops * (1.0 + CAPACITY_EPS)
        if total > bound:
            self.violations.append(
                Violation(
                    cycle,
                    "capacity",
                    f"enforced {total:.3f} iops > capacity "
                    f"{self.capacity_iops:.3f} across {len(limits)} stages",
                )
            )

    def check_epochs(self, cycle: int, epochs: Mapping[str, int]) -> None:
        """A stage's applied epoch never moves backwards."""
        self.checks += 1
        for stage_id, epoch in epochs.items():
            prev = self._last_epoch.get(stage_id)
            if prev is not None and epoch < prev:
                self.violations.append(
                    Violation(
                        cycle,
                        "epoch",
                        f"{stage_id} applied epoch went {prev} -> {epoch}",
                    )
                )
            self._last_epoch[stage_id] = max(epoch, prev or 0)

    def check_orphans(self, cycle: int, orphans: Iterable[str]) -> None:
        """No stage stays orphaned past the configured re-home bound."""
        self.checks += 1
        current = set(orphans)
        for stage_id in list(self._orphan_age):
            if stage_id not in current:
                del self._orphan_age[stage_id]
        for stage_id in current:
            age = self._orphan_age.get(stage_id, 0) + 1
            self._orphan_age[stage_id] = age
            if age > self.rehome_bound_cycles:
                self.violations.append(
                    Violation(
                        cycle,
                        "rehome",
                        f"{stage_id} orphaned for {age} cycles "
                        f"(bound {self.rehome_bound_cycles})",
                    )
                )

    def check_resume(
        self, cycle: int, issued_epoch: int, floor_epoch: int
    ) -> None:
        """A restarted controller's issued epochs stay above the floor.

        ``floor_epoch`` is the durable store's highest leased/recorded
        epoch at the moment of the kill; every epoch the rebooted
        controller issues must be strictly greater, or stage fencing
        (``epoch > applied_epoch``) discards its rules forever.
        """
        self.checks += 1
        if issued_epoch <= floor_epoch:
            self.violations.append(
                Violation(
                    cycle,
                    "resume",
                    f"issued epoch {issued_epoch} <= durable floor "
                    f"{floor_epoch} after restart",
                )
            )

    def check_honest_share(
        self,
        cycle: int,
        allocations: Mapping[str, float],
        demands: Mapping[str, float],
        weights: Mapping[str, float],
        adversaries: Iterable[str],
        fraction: float = 0.9,
    ) -> None:
        """Honest stages keep ≥ ``fraction`` of their weighted fair share.

        Entitlement for stage *i* is ``min(demand_i, capacity × w_i / W)``
        — a stage cannot claim more than it asked for, nor more than its
        weighted slice of capacity. Adversarial stages (the liars and
        flooders named by the schedule) are excluded: the invariant is
        about what their behaviour does to *everyone else*.
        """
        self.checks += 1
        hostile = set(adversaries)
        total_weight = sum(weights.values())
        if total_weight <= 0:
            return
        for stage_id, demand in demands.items():
            if stage_id in hostile or stage_id not in allocations:
                continue
            weight = weights.get(stage_id, 0.0)
            entitled = min(
                demand, self.capacity_iops * weight / total_weight
            )
            floor = fraction * entitled
            granted = allocations[stage_id]
            if granted < floor - CAPACITY_EPS * self.capacity_iops:
                self.violations.append(
                    Violation(
                        cycle,
                        "share",
                        f"honest {stage_id} granted {granted:.1f} iops < "
                        f"{fraction:.0%} of entitlement {entitled:.1f}",
                    )
                )

    def check_queue_bounds(
        self,
        cycle: int,
        pending_bytes: Mapping[str, int],
        bound_bytes: int,
        residue_bytes: int = 4096,
    ) -> None:
        """No session's pending outbound queue exceeds the outbox bound.

        ``residue_bytes`` allows for non-sheddable control frames (acks,
        welcome, partition updates) that a bounded outbox must never
        drop and may briefly carry past the sheddable bound.
        """
        self.checks += 1
        limit = bound_bytes + residue_bytes
        for peer_id, pending in pending_bytes.items():
            if pending > limit:
                self.violations.append(
                    Violation(
                        cycle,
                        "queue",
                        f"{peer_id} pending outbound {pending} B > "
                        f"bound {bound_bytes} B (+{residue_bytes} residue)",
                    )
                )

    def check_healthz(
        self,
        cycle: int,
        p99_s: Optional[float],
        bound_s: float,
        probes: int,
        failures: int,
    ) -> None:
        """The liveness probe stayed answerable throughout the flood."""
        self.checks += 1
        if probes == 0:
            self.violations.append(
                Violation(cycle, "healthz", "no healthz probes completed")
            )
            return
        if failures > 0:
            self.violations.append(
                Violation(
                    cycle,
                    "healthz",
                    f"{failures}/{probes} healthz probes failed under flood",
                )
            )
        if p99_s is not None and p99_s > bound_s:
            self.violations.append(
                Violation(
                    cycle,
                    "healthz",
                    f"healthz p99 {p99_s:.3f}s > bound {bound_s:.3f}s",
                )
            )

    def check_gap(self, cycle: int, gap_s: float, bound_s: float) -> None:
        """Measured takeover gap must respect the heartbeat-budget bound."""
        self.checks += 1
        if gap_s > bound_s:
            self.violations.append(
                Violation(
                    cycle,
                    "gap",
                    f"adaptation gap {gap_s:.3f}s > bound {bound_s:.3f}s",
                )
            )
