"""Chaos runners: execute a seeded fault schedule against a real plane.

Two entry points, one per plane:

* :func:`run_chaos_sim` — steps a simulated control plane
  (:mod:`repro.core.control_plane`) cycle by cycle, injecting the
  schedule's faults in cycle coordinates (aggregator stop/start, stage
  black-holes, primary kill against the :class:`~repro.core.failover.HotStandby`).
* :func:`run_chaos_live` — stands up a real asyncio TCP cluster
  (:mod:`repro.live`), paces cycles on the wall clock, and injects the
  live fault menagerie (:mod:`repro.live.faults`), including
  ``kill_primary`` against :class:`~repro.live.failover.LiveHotStandby`.

Both check the tentpole invariants after every cycle via
:class:`~repro.chaos.invariants.InvariantChecker` and return a
:class:`~repro.chaos.invariants.ChaosReport` — they never raise on a
violation, so CI can upload the full report before failing the step.

Fault durations are translated per plane: the simulator has no wall
clock, so stalls/kills last a fixed number of *cycles* there, while the
live plane uses the schedule's ``duration_s`` directly.

:func:`run_chaos_shard` extends the menagerie to the multi-process plane
(:mod:`repro.shard`): aggregator faults become real ``SIGKILL``s of
shard worker processes, with the pinned partition re-spawned a fixed
number of cycles later, and the invariants are checked through the
workers' control-pipe probes instead of in-process stage objects.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.chaos.invariants import ChaosReport, InvariantChecker, Violation
from repro.chaos.schedule import (
    ChaosSchedule,
    generate_overload_schedule,
    generate_restart_schedule,
    generate_schedule,
)

__all__ = [
    "run_chaos_sim",
    "run_chaos_live",
    "run_chaos_restart",
    "run_chaos_shard",
    "run_chaos_overload",
]

#: Sim-plane fault durations, in cycles (the sim has no useful wall clock).
SIM_AGG_KILL_CYCLES = 3
SIM_AGG_STALL_CYCLES = 1
SIM_STAGE_KILL_CYCLES = 2
SIM_STAGE_STALL_CYCLES = 1


def _new_report(schedule: ChaosSchedule, plane: str) -> ChaosReport:
    return ChaosReport(
        seed=schedule.seed,
        plane=plane,
        design=schedule.design,
        n_cycles=schedule.n_cycles,
        n_stages=schedule.n_stages,
        n_aggregators=schedule.n_aggregators,
        actions=[asdict(a) for a in schedule.actions],
    )


# ---------------------------------------------------------------------------
# Simulated plane
# ---------------------------------------------------------------------------

def run_chaos_sim(
    seed: int,
    design: str = "hier",
    n_stages: int = 12,
    n_aggregators: int = 3,
    n_cycles: int = 14,
    rehome_bound_cycles: int = 3,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Run a seeded chaos schedule against the simulated plane.

    ``design="hier"`` steps a :class:`HierarchicalControlPlane` cycle by
    cycle under aggregator/stage faults. ``design="flat"`` runs a
    :class:`FlatControlPlane` guarded by a :class:`HotStandby` (built via
    :func:`~repro.core.failover.attach_flat_standby`) and may kill the
    primary mid-run.
    """
    if schedule is None:
        schedule = generate_schedule(
            seed, design, n_cycles, n_stages,
            n_aggregators if design == "hier" else 0,
        )
    report = _new_report(schedule, "sim")
    if design == "hier":
        _sim_hier(schedule, report, rehome_bound_cycles)
    else:
        _sim_flat_standby(schedule, report)
    return report


def _sim_checks(checker: InvariantChecker, cycle: int, stages) -> None:
    limits: Dict[str, float] = {}
    epochs: Dict[str, int] = {}
    for stage in stages:
        rule = stage.applied_rule
        if rule is not None:
            limits[stage.stage_id] = stage.current_limit
            epochs[stage.stage_id] = rule.epoch
    checker.check_capacity(cycle, limits)
    checker.check_epochs(cycle, epochs)


def _blackhole_stage(stage):
    """Drop a sim stage's traffic; returns the undo callable."""
    original = stage.endpoint.handler

    def black_hole(message, connection) -> None:
        pass

    stage.endpoint.set_handler(black_hole)
    return lambda: stage.endpoint.set_handler(original)


def _sim_hier(
    schedule: ChaosSchedule, report: ChaosReport, rehome_bound_cycles: int
) -> None:
    from repro.core.control_plane import (
        ControlPlaneConfig,
        HierarchicalControlPlane,
    )

    config = ControlPlaneConfig(
        n_stages=schedule.n_stages, collect_timeout_s=0.5
    )
    plane = HierarchicalControlPlane.build(config, schedule.n_aggregators)
    env = plane.env
    controller = plane.global_controller
    checker = InvariantChecker(
        config.policy.allocatable_iops, rehome_bound_cycles
    )
    # Pending recoveries, keyed by the cycle index that restores them.
    restore_at: Dict[int, List] = {}
    for cycle in range(schedule.n_cycles):
        for undo in restore_at.pop(cycle, []):
            undo()
        for action in schedule.at_cycle(cycle):
            if action.kind == "kill_aggregator":
                agg = plane.aggregators[action.target]
                agg.stop()
                restore_at.setdefault(cycle + SIM_AGG_KILL_CYCLES, []).append(
                    agg.start
                )
            elif action.kind == "stall_aggregator":
                agg = plane.aggregators[action.target]
                agg.stop()
                restore_at.setdefault(cycle + SIM_AGG_STALL_CYCLES, []).append(
                    agg.start
                )
            elif action.kind == "kill_stage":
                undo = _blackhole_stage(plane.stages[action.target])
                restore_at.setdefault(
                    cycle + SIM_STAGE_KILL_CYCLES, []
                ).append(undo)
            elif action.kind == "stall_stage":
                undo = _blackhole_stage(plane.stages[action.target])
                restore_at.setdefault(
                    cycle + SIM_STAGE_STALL_CYCLES, []
                ).append(undo)
        env.run(controller.run_cycles(1))
        report.cycles_completed += 1
        if controller.cycles[-1].degraded:
            report.cycles_degraded += 1
        _sim_checks(checker, cycle, plane.stages)
    report.violations = checker.violations
    report.checks = checker.checks


def _sim_flat_standby(schedule: ChaosSchedule, report: ChaosReport) -> None:
    from repro.core.control_plane import ControlPlaneConfig, FlatControlPlane
    from repro.core.failover import HotStandby, attach_flat_standby

    # Probe an identical fault-free plane for the cycle period, so the
    # schedule's cycle coordinates translate to deterministic sim times.
    # Sim cycles run back-to-back (no pacing), so everything — heartbeat
    # interval, fault times, sampling — must scale with the cycle, not
    # with a wall clock.
    probe = FlatControlPlane.build(ControlPlaneConfig(n_stages=schedule.n_stages))
    probe.env.run(probe.global_controller.run_cycles(3))
    cycle_s = max(c.total_s for c in probe.global_controller.cycles)
    hb_s, missed = cycle_s / 2.0, 3

    config = ControlPlaneConfig(
        n_stages=schedule.n_stages, collect_timeout_s=2.0 * cycle_s
    )
    plane = FlatControlPlane.build(config)
    env = plane.env
    primary = plane.global_controller
    standby = attach_flat_standby(plane)
    hot = HotStandby(
        env, primary, standby,
        heartbeat_interval_s=hb_s, missed_heartbeats=missed,
    )
    checker = InvariantChecker(config.policy.allocatable_iops)
    kill_time: Dict[str, float] = {}

    for action in schedule.actions:
        # Fault-free cycle duration is a lower bound on progress, so a
        # kill mapped this way always lands while the run is in flight.
        when = max(action.cycle, 1) * cycle_s
        if action.kind == "kill_primary":
            def kill() -> None:
                kill_time["at"] = env.now
                hot.kill_primary()

            env.call_at(when, kill)
        elif action.kind in ("kill_stage", "stall_stage"):
            stage = plane.stages[action.target]
            down_cycles = (
                SIM_STAGE_KILL_CYCLES
                if action.kind == "kill_stage"
                else SIM_STAGE_STALL_CYCLES
            )

            def down(stage=stage, until=when + down_cycles * cycle_s) -> None:
                undo = _blackhole_stage(stage)
                env.call_at(until, undo)

            env.call_at(when, down)

    def sample_invariants():
        while True:
            yield env.timeout(cycle_s)
            _sim_checks(checker, hot.total_cycles(), plane.stages)

    env.process(sample_invariants(), name="chaos-checker")
    watch = hot.start(schedule.n_cycles)
    env.run(watch)

    report.cycles_completed = hot.total_cycles()
    report.cycles_degraded = sum(
        1 for c in (*primary.cycles, *standby.cycles) if c.degraded
    )
    if hot.failover is not None:
        report.takeovers = 1
        origin = kill_time.get("at", hot.last_heartbeat_at or 0.0)
        gap_s = hot.failover.time - origin
        report.gap_s = gap_s
        # Bound: heartbeat silence budget + watchdog poll granularity
        # + one (degraded, timeout-extended) control cycle.
        checker.check_gap(
            hot.total_cycles(),
            gap_s,
            hb_s * missed + hb_s + 2.0 * cycle_s,
        )
    elif schedule.kills_of("kill_primary"):
        checker.violations.append(
            Violation(
                schedule.n_cycles, "gap", "primary killed but no takeover"
            )
        )
    report.violations = checker.violations
    report.checks = checker.checks


# ---------------------------------------------------------------------------
# Live plane
# ---------------------------------------------------------------------------

def run_chaos_live(
    seed: int,
    design: str = "hier",
    n_stages: int = 9,
    n_aggregators: int = 3,
    n_cycles: int = 12,
    cycle_period_s: float = 0.1,
    rehome_bound_cycles: int = 3,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Run a seeded chaos schedule against the live asyncio plane.

    ``design="hier"`` exercises aggregator kill/stall with stage
    re-homing; ``design="flat"`` exercises a primary + hot-standby pair
    (``kill_primary`` actions) alongside stage faults.
    """
    if schedule is None:
        schedule = generate_schedule(
            seed, design, n_cycles, n_stages,
            n_aggregators if design == "hier" else 0,
        )
    report = _new_report(schedule, "live")
    if design == "hier":
        asyncio.run(
            _live_hier(schedule, report, cycle_period_s, rehome_bound_cycles)
        )
    else:
        asyncio.run(_live_flat(schedule, report, cycle_period_s))
    return report


_LIVE_BACKOFF = dict(backoff_base_s=0.02, backoff_factor=1.5, backoff_max_s=0.1)


def _live_checks(checker: InvariantChecker, cycle: int, stages) -> None:
    limits = {
        s.stage_id: s.applied_limit
        for s in stages
        if s.applied_limit is not None
    }
    epochs = {
        s.stage_id: s.applied_epoch
        for s in stages
        if s.applied_epoch is not None
    }
    checker.check_capacity(cycle, limits)
    checker.check_epochs(cycle, epochs)


async def _live_hier(
    schedule: ChaosSchedule,
    report: ChaosReport,
    cycle_period_s: float,
    rehome_bound_cycles: int,
) -> None:
    from repro.core.control_plane import default_policy
    from repro.core.registry import partition_stages
    from repro.live.aggregator_server import LiveAggregator
    from repro.live.controller_server import LiveHierGlobalController
    from repro.live.faults import (
        LiveFaultLog,
        kill_aggregator,
        kill_stage,
        stall_aggregator,
        stall_stage,
    )
    from repro.live.stage_client import LiveVirtualStage

    policy = default_policy(schedule.n_stages)
    controller = LiveHierGlobalController(
        policy,
        expected_aggregators=schedule.n_aggregators,
        collect_timeout_s=0.5,
        dead_after_missed=2,
    )
    await controller.start()
    stage_ids = [f"stage-{i:05d}" for i in range(schedule.n_stages)]
    partitions = partition_stages(stage_ids, schedule.n_aggregators)
    aggregators: List[LiveAggregator] = []
    stages: List[LiveVirtualStage] = []
    tasks: List[asyncio.Task] = []
    for a, owned in enumerate(partitions):
        agg = LiveAggregator(
            f"aggregator-{a:02d}",
            controller.host,
            controller.port,
            expected_stages=len(owned),
            collect_timeout_s=0.3,
        )
        await agg.start()
        aggregators.append(agg)
        for stage_id in owned:
            stage = LiveVirtualStage(
                agg.host,
                agg.port,
                stage_id=stage_id,
                job_id=stage_id.replace("stage", "job"),
                controller_timeout_s=1.0,
                **_LIVE_BACKOFF,
            )
            stages.append(stage)
            tasks.append(asyncio.create_task(stage.run()))
        tasks.append(asyncio.create_task(agg.run()))

    checker = InvariantChecker(policy.allocatable_iops, rehome_bound_cycles)
    fault_log = LiveFaultLog()
    stall_tasks: List[asyncio.Task] = []
    killed: set = set()
    try:
        await controller.wait_for_aggregators()
        for cycle in range(schedule.n_cycles):
            for action in schedule.at_cycle(cycle):
                if action.kind == "kill_aggregator":
                    if action.target not in killed:
                        killed.add(action.target)
                        kill_aggregator(
                            aggregators[action.target], log=fault_log
                        )
                elif action.kind == "stall_aggregator":
                    if action.target not in killed:
                        stall_tasks.append(
                            asyncio.create_task(
                                stall_aggregator(
                                    aggregators[action.target],
                                    action.duration_s,
                                    log=fault_log,
                                )
                            )
                        )
                elif action.kind == "kill_stage":
                    kill_stage(stages[action.target], log=fault_log)
                elif action.kind == "stall_stage":
                    stall_tasks.append(
                        asyncio.create_task(
                            stall_stage(
                                stages[action.target],
                                action.duration_s,
                                log=fault_log,
                            )
                        )
                    )
            await controller.run_cycles(1)
            await asyncio.sleep(cycle_period_s)
            report.cycles_completed += 1
            if controller.cycles[-1].degraded:
                report.cycles_degraded += 1
            _live_checks(checker, cycle, stages)
            checker.check_orphans(cycle, controller.orphans)
        report.rehomes = controller.rehomes
    finally:
        for task in stall_tasks:
            task.cancel()
        await asyncio.gather(*stall_tasks, return_exceptions=True)
        await controller.shutdown()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    report.violations = checker.violations
    report.checks = checker.checks


async def _live_flat(
    schedule: ChaosSchedule, report: ChaosReport, cycle_period_s: float
) -> None:
    from repro.core.control_plane import default_policy
    from repro.live.controller_server import LiveGlobalController
    from repro.live.failover import LiveHotStandby
    from repro.live.faults import LiveFaultLog, kill_stage, stall_stage
    from repro.live.stage_client import LiveVirtualStage

    hb_s, missed = 0.1, 3
    policy = default_policy(schedule.n_stages)
    primary = LiveGlobalController(
        policy,
        expected_stages=schedule.n_stages,
        collect_timeout_s=0.5,
        evicted_grace_cycles=5,
    )
    standby = LiveGlobalController(
        policy,
        expected_stages=schedule.n_stages,
        collect_timeout_s=0.5,
        evicted_grace_cycles=5,
    )
    await primary.start()
    await standby.start()
    stages: List[LiveVirtualStage] = []
    tasks: List[asyncio.Task] = []
    for i in range(schedule.n_stages):
        stage = LiveVirtualStage(
            primary.host,
            primary.port,
            stage_id=f"stage-{i:05d}",
            job_id=f"job-{i:05d}",
            alternates=[(standby.host, standby.port)],
            **_LIVE_BACKOFF,
        )
        stages.append(stage)
        tasks.append(asyncio.create_task(stage.run()))

    checker = InvariantChecker(policy.allocatable_iops)
    fault_log = LiveFaultLog()
    hot = LiveHotStandby(
        primary, standby, heartbeat_interval_s=hb_s, missed_heartbeats=missed
    )
    stall_tasks: List[asyncio.Task] = []

    async def inject_and_observe() -> None:
        # Wall-clock injector + sampler: fire each action at its cycle's
        # deadline, then sample the invariants once per period.
        for cycle in range(schedule.n_cycles):
            for action in schedule.at_cycle(cycle):
                if action.kind == "kill_primary":
                    hot.kill_primary()
                elif action.kind == "kill_stage":
                    kill_stage(stages[action.target], log=fault_log)
                elif action.kind == "stall_stage":
                    stall_tasks.append(
                        asyncio.create_task(
                            stall_stage(
                                stages[action.target],
                                action.duration_s,
                                log=fault_log,
                            )
                        )
                    )
            await asyncio.sleep(cycle_period_s)
            _live_checks(checker, cycle, stages)

    try:
        await primary.wait_for_stages()
        injector = asyncio.create_task(inject_and_observe())
        cycles = await hot.run_protected(
            schedule.n_cycles, cycle_period_s=cycle_period_s
        )
        injector.cancel()
        await asyncio.gather(injector, return_exceptions=True)
        report.cycles_completed = len(cycles)
        report.cycles_degraded = sum(1 for c in cycles if c.degraded)
        if hot.failover is not None:
            report.takeovers = 1
            report.gap_s = hot.failover.gap_s
            # One cycle's allowance on the live plane = the pacing period
            # plus the cycle itself (generously bounded by one period).
            checker.check_gap(
                schedule.n_cycles,
                hot.failover.gap_s,
                hb_s * missed + 2 * cycle_period_s + 0.2,
            )
        elif schedule.kills_of("kill_primary"):
            from repro.chaos.invariants import Violation

            checker.violations.append(
                Violation(
                    schedule.n_cycles, "gap", "primary killed but no takeover"
                )
            )
    finally:
        for task in stall_tasks:
            task.cancel()
        await asyncio.gather(*stall_tasks, return_exceptions=True)
        active = standby if hot.failover is not None else primary
        await active.shutdown()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    report.violations = checker.violations
    report.checks = checker.checks


# ---------------------------------------------------------------------------
# Full-plane restart (durable-store recovery)
# ---------------------------------------------------------------------------

def run_chaos_restart(
    seed: int,
    n_stages: int = 9,
    n_aggregators: int = 3,
    n_cycles: int = 14,
    cycle_period_s: float = 0.05,
    rehome_bound_cycles: int = 3,
    store_dir: Optional[str] = None,
    recover_timeout_s: float = 15.0,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Kill the *whole* live plane mid-schedule and restart from store.

    The PR 7 tentpole invariant run: controller and every aggregator die
    at once (socket aborts — the in-process ``kill -9``), surviving
    stages keep enforcing their last rules, and the plane restarts from
    a fresh :class:`~repro.store.DurableStore` recovery at
    ``resume_epoch()``. On top of the standing capacity/epoch/orphan
    checks, every post-restart cycle asserts the **resume floor**: the
    issued epoch stays strictly above the durable epoch at kill time.
    ``store_dir=None`` uses a run-scoped temporary directory.
    """
    if schedule is None:
        schedule = generate_restart_schedule(
            seed, n_cycles, n_stages, n_aggregators
        )
    report = _new_report(schedule, "live")
    asyncio.run(
        _live_restart(
            schedule,
            report,
            cycle_period_s,
            rehome_bound_cycles,
            store_dir,
            recover_timeout_s,
        )
    )
    return report


async def _live_restart(
    schedule: ChaosSchedule,
    report: ChaosReport,
    cycle_period_s: float,
    rehome_bound_cycles: int,
    store_dir: Optional[str],
    recover_timeout_s: float,
) -> None:
    import tempfile

    from repro.core.control_plane import default_policy
    from repro.live.harness import LiveHierPlane
    from repro.store.durable import DurableStore

    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
    store = DurableStore(store_dir, lease_batch=8)
    policy = default_policy(schedule.n_stages)
    plane = LiveHierPlane(
        schedule.n_stages,
        schedule.n_aggregators,
        policy,
        collect_timeout_s=0.5,
        enforce_timeout_s=0.5,
        initial_epoch=store.resume_epoch(),
        stage_backoff=_LIVE_BACKOFF,
    )
    checker = InvariantChecker(policy.allocatable_iops, rehome_bound_cycles)
    rehomes = 0
    resume_floor = 0
    try:
        await plane.start()
        for cycle in range(schedule.n_cycles):
            for action in schedule.at_cycle(cycle):
                if action.kind != "kill_plane":
                    continue
                resume_floor = store.last_durable_epoch
                await plane.kill_plane()
                store.close()
                # A fresh store handle runs the full recovery path, as a
                # restarted process would: snapshot + WAL fold + compact.
                store = DurableStore(store_dir, lease_batch=8)
                await plane.plane_restart(initial_epoch=store.resume_epoch())
                report.restarts += 1
                try:
                    await plane.wait_for_stages(timeout_s=recover_timeout_s)
                except asyncio.TimeoutError:
                    checker.violations.append(
                        Violation(
                            cycle,
                            "rehome",
                            f"only {plane.registered_stages}/"
                            f"{schedule.n_stages} stages re-homed within "
                            f"{recover_timeout_s}s of restart",
                        )
                    )
            if plane.epoch + 1 > store.state.leased_epoch:
                store.lease_epochs()
            await plane.run_cycles(1)
            store.record_cycle(plane.epoch, n_stages=schedule.n_stages)
            await asyncio.sleep(cycle_period_s)
            report.cycles_completed += 1
            if plane.controller.cycles[-1].degraded:
                report.cycles_degraded += 1
            _live_checks(checker, cycle, plane.stages)
            checker.check_orphans(cycle, plane.controller.orphans)
            checker.check_resume(cycle, plane.epoch, resume_floor)
        rehomes = plane.controller.rehomes
    finally:
        await plane.stop()
        store.close()
    report.rehomes = rehomes
    report.violations = checker.violations
    report.checks = checker.checks


# ---------------------------------------------------------------------------
# Overload (adversarial tenants + request flood)
# ---------------------------------------------------------------------------

#: Demand tuples adversaries report while active (data_iops, metadata_iops).
LIAR_DEMAND_IOPS = 50_000.0
NOISY_DEMAND_IOPS = 8_000.0
STORM_METADATA_IOPS = 20_000.0


async def _overload_request(
    host: str, port: int, method: str, path: str, body: bytes = b""
) -> int:
    """One short-lived HTTP request; returns the status code (-1 = error)."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        return -1
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=5.0)
        parts = raw.split(None, 2)
        return int(parts[1]) if len(parts) >= 2 else -1
    except (asyncio.TimeoutError, ValueError, ConnectionError, OSError):
        return -1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _p99(samples: List[float]) -> Optional[float]:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.999999))
    return ordered[index]


def run_chaos_overload(
    seed: int,
    n_stages: int = 9,
    n_aggregators: int = 3,
    n_cycles: int = 18,
    cycle_period_s: float = 0.05,
    flood_factor: float = 10.0,
    admission_rate: float = 200.0,
    session_outbox_bytes: int = 64 * 1024,
    healthz_p99_bound_s: float = 1.0,
    share_fraction: float = 0.9,
    store_dir: Optional[str] = None,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Overload the full service stack and check it degrades, not dies.

    The PR 8 tentpole run: a real ``ControlService`` (durable store +
    live hier plane + REST front door) with every guard armed — an
    admission gate at ``admission_rate`` req/s, bounded per-session
    outboxes, the demand clamp, and the degradation ladder. While the
    schedule's adversarial tenants lie about demand (and the liar's
    aggregator is killed so the lie flows through orphan reservation), a
    client floods the HTTP API at ``flood_factor ×`` the admission rate.

    Per cycle: capacity, epoch-monotonicity, orphan re-home, honest
    fair-share and outbox queue-bound invariants. At the end: the
    ``/healthz`` probe must have answered throughout the flood within a
    bounded p99, and the gate must show the flood was actually shed.
    """
    if schedule is None:
        schedule = generate_overload_schedule(
            seed, n_cycles, n_stages, n_aggregators
        )
    report = _new_report(schedule, "live")
    asyncio.run(
        _live_overload(
            schedule,
            report,
            cycle_period_s,
            flood_factor,
            admission_rate,
            session_outbox_bytes,
            healthz_p99_bound_s,
            share_fraction,
            store_dir,
        )
    )
    return report


async def _live_overload(
    schedule: ChaosSchedule,
    report: ChaosReport,
    cycle_period_s: float,
    flood_factor: float,
    admission_rate: float,
    session_outbox_bytes: int,
    healthz_p99_bound_s: float,
    share_fraction: float,
    store_dir: Optional[str],
) -> None:
    import tempfile

    from repro.core.registry import partition_stages
    from repro.guard import AdmissionGate, DegradationLadder, DemandClamp
    from repro.live.faults import LiveFaultLog, kill_aggregator
    from repro.obs.metrics import MetricsRegistry
    from repro.service.api import ServiceApi
    from repro.service.http import HttpServer
    from repro.service.server import ControlService

    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-chaos-overload-")
    metrics = MetricsRegistry()
    service = ControlService.open(
        store_dir,
        n_stages=schedule.n_stages,
        n_aggregators=schedule.n_aggregators,
        cycle_period_s=cycle_period_s,
        collect_timeout_s=0.5,
        enforce_timeout_s=0.5,
        metrics=metrics,
        stage_backoff=_LIVE_BACKOFF,
        degradation=DegradationLadder(trip_after=2, recover_after=3),
        demand_clamp=DemandClamp(),
        session_outbox_bytes=session_outbox_bytes,
    )
    gate = AdmissionGate(rate=admission_rate, metrics=metrics)
    api = ServiceApi(service, gate=gate, metrics=metrics)
    http = HttpServer(api.handle, metrics=metrics, max_connections=256)
    plane = service.plane
    checker = InvariantChecker(service.policy.allocatable_iops)
    fault_log = LiveFaultLog()
    stop = asyncio.Event()
    flood_statuses: Dict[int, int] = {}
    healthz_latencies: List[float] = []
    healthz_failures = 0

    flood_tasks: List[asyncio.Task] = []
    flood_sem = asyncio.Semaphore(192)

    async def _flood_one(method: str, path: str, body: bytes) -> None:
        async with flood_sem:
            status = await _overload_request(
                http.host, http.port, method, path, body
            )
        flood_statuses[status] = flood_statuses.get(status, 0) + 1

    async def flood() -> None:
        # Offered load: flood_factor × the admission rate. Requests are
        # fired without waiting for each other (a real flood does not
        # pace itself on the server's fsync latency), bounded only by a
        # client-side socket cap. A noisy tenant dominates (mutations
        # shed first) with some reads mixed in; statuses are tallied,
        # never asserted — shedding is the expected outcome.
        batch = max(1, int(flood_factor * admission_rate * cycle_period_s))
        body = b'{"tenant_id": "noisy", "weight": 1}'
        while not stop.is_set():
            flood_tasks[:] = [t for t in flood_tasks if not t.done()]
            for i in range(batch):
                if i % 4 == 0:
                    call = _flood_one("GET", "/rules", b"")
                else:
                    call = _flood_one("POST", "/tenants", body)
                flood_tasks.append(asyncio.create_task(call))
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=cycle_period_s)

    async def probe_healthz() -> None:
        nonlocal healthz_failures
        import time as _time

        while not stop.is_set():
            started = _time.perf_counter()
            status = await _overload_request(
                http.host, http.port, "GET", "/healthz"
            )
            healthz_latencies.append(_time.perf_counter() - started)
            if status != 200:
                healthz_failures += 1
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=cycle_period_s / 2)

    original_demand: Dict[int, tuple] = {}
    adversary_ids: set = set()
    agg_killed: set = set()
    background: List[asyncio.Task] = []
    try:
        await service.start(run_cycles=False)
        await http.start()
        await plane.wait_for_stages(timeout_s=15.0)
        stage_ids = [s.stage_id for s in plane.stages]
        partitions = partition_stages(stage_ids, schedule.n_aggregators)
        weights = {sid: 1.0 for sid in stage_ids}
        background = [
            asyncio.create_task(flood()),
            asyncio.create_task(probe_healthz()),
        ]
        for cycle in range(schedule.n_cycles):
            for action in schedule.at_cycle(cycle):
                stage = plane.stages[action.target]
                if action.kind in ("demand_liar", "noisy_neighbor",
                                   "metadata_storm"):
                    original_demand.setdefault(action.target, stage.demand)
                    adversary_ids.add(stage.stage_id)
                if action.kind == "demand_liar":
                    stage.demand = (LIAR_DEMAND_IOPS, stage.demand[1])
                elif action.kind == "noisy_neighbor":
                    stage.demand = (NOISY_DEMAND_IOPS, stage.demand[1])
                elif action.kind == "metadata_storm":
                    stage.demand = (stage.demand[0], STORM_METADATA_IOPS)
                elif action.kind == "orphan_liar":
                    home = next(
                        a for a, owned in enumerate(partitions)
                        if stage.stage_id in owned
                    )
                    if home not in agg_killed:
                        agg_killed.add(home)
                        kill_aggregator(plane.aggregators[home], log=fault_log)
                elif action.kind == "restore":
                    if action.target in original_demand:
                        stage.demand = original_demand[action.target]
            await service.cycle_once()
            pause = cycle_period_s * plane.interval_multiplier
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=pause)
            report.cycles_completed += 1
            if plane.controller.cycles[-1].degraded:
                report.cycles_degraded += 1
            _live_checks(checker, cycle, plane.stages)
            checker.check_orphans(cycle, plane.controller.orphans)
            allocations = dict(plane.controller.last_allocations)
            if allocations:
                demands = {
                    s.stage_id: s.demand[0] + s.demand[1]
                    for s in plane.stages
                }
                checker.check_honest_share(
                    cycle,
                    allocations,
                    demands,
                    weights,
                    adversary_ids,
                    fraction=share_fraction,
                )
            pending = {
                f"controller:{peer}": s.outbox.pending_bytes
                for peer, s in plane.controller.sessions.items()
            }
            for agg in plane.aggregators:
                for peer, s in agg.sessions.items():
                    pending[f"{agg.aggregator_id}:{peer}"] = (
                        s.outbox.pending_bytes
                    )
            checker.check_queue_bounds(
                cycle, pending, session_outbox_bytes
            )
        report.rehomes = plane.controller.rehomes
    finally:
        stop.set()
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)
        # Let in-flight flood requests finish (briefly), then cut them.
        if flood_tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*flood_tasks, return_exceptions=True),
                    timeout=2.0,
                )
            for task in flood_tasks:
                task.cancel()
            await asyncio.gather(*flood_tasks, return_exceptions=True)
        await http.stop()
        await service.stop()
    report.requests_flooded = sum(flood_statuses.values())
    report.requests_admitted = gate.admitted_total
    report.requests_shed = gate.shed_total + http.connections_shed
    report.healthz_p99_s = _p99(healthz_latencies)
    checker.check_healthz(
        schedule.n_cycles,
        report.healthz_p99_s,
        healthz_p99_bound_s,
        probes=len(healthz_latencies),
        failures=healthz_failures,
    )
    checker.checks += 1
    if report.requests_shed == 0:
        checker.violations.append(
            Violation(
                schedule.n_cycles,
                "shed",
                f"{flood_factor}x flood of {report.requests_flooded} "
                "requests recorded zero sheds — the gate is not engaged",
            )
        )
    report.violations = checker.violations
    report.checks = checker.checks


# ---------------------------------------------------------------------------
# Sharded (multi-process) plane
# ---------------------------------------------------------------------------

#: Cycles a killed shard worker stays down before its re-spawn.
SHARD_RESPAWN_CYCLES = 2


def run_chaos_shard(
    seed: int,
    n_stages: int = 8,
    n_workers: int = 2,
    n_cycles: int = 10,
    cycle_period_s: float = 0.05,
    rehome_bound_cycles: int = 6,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Run a seeded chaos schedule against the sharded live plane.

    Reuses the ``hier`` schedule generator with one shard worker per
    aggregator slot: ``kill_aggregator``/``stall_aggregator`` actions
    become real ``SIGKILL``s of the worker process (a stall with no
    process to pause is a kill), and the shard is re-spawned with the
    same pinned partition ``SHARD_RESPAWN_CYCLES`` cycles later. Stage
    faults are skipped — stages live inside the worker, so the worker
    kill already takes its whole partition down at once. Invariants are
    probed over the control pipes: enforced limits stay within capacity
    (orphan reservation) and applied epochs never regress across the
    kill/re-spawn (epoch fencing).
    """
    if schedule is None:
        schedule = generate_schedule(
            seed, "hier", n_cycles, n_stages, n_workers
        )
    report = _new_report(schedule, "shard")
    asyncio.run(
        _shard_chaos(schedule, report, cycle_period_s, rehome_bound_cycles)
    )
    return report


async def _shard_chaos(
    schedule: ChaosSchedule,
    report: ChaosReport,
    cycle_period_s: float,
    rehome_bound_cycles: int,
) -> None:
    from repro.shard.plane import ShardedControlPlane

    plane = ShardedControlPlane(
        schedule.n_stages,
        schedule.n_aggregators,
        collect_timeout_s=0.5,
        enforce_timeout_s=0.5,
        dead_after_missed=2,
    )
    checker: Optional[InvariantChecker] = None
    down: set = set()
    respawn_at: Dict[int, List[int]] = {}
    try:
        await plane.start()
        controller = plane.controller
        checker = InvariantChecker(
            plane.policy.allocatable_iops, rehome_bound_cycles
        )
        for cycle in range(schedule.n_cycles):
            for shard in respawn_at.pop(cycle, []):
                try:
                    await plane.respawn_shard(shard)
                    down.discard(shard)
                except TimeoutError:
                    # Eviction still pending: retry at the next cycle.
                    respawn_at.setdefault(cycle + 1, []).append(shard)
            for action in schedule.at_cycle(cycle):
                if action.kind in ("kill_aggregator", "stall_aggregator"):
                    if action.target not in down:
                        down.add(action.target)
                        plane.kill_shard(action.target)
                        respawn_at.setdefault(
                            cycle + SHARD_RESPAWN_CYCLES, []
                        ).append(action.target)
            await plane.run_cycles(1)
            await asyncio.sleep(cycle_period_s)
            report.cycles_completed += 1
            if controller.cycles[-1].degraded:
                report.cycles_degraded += 1
            probes = await plane.probe()
            limits: Dict[str, float] = {}
            epochs: Dict[str, int] = {}
            for rows in probes.values():
                for stage_id, row in rows.items():
                    if row["applied_limit"] is not None:
                        limits[stage_id] = row["applied_limit"]
                    if row["applied_epoch"] >= 0:
                        epochs[stage_id] = row["applied_epoch"]
            checker.check_capacity(cycle, limits)
            checker.check_epochs(cycle, epochs)
            checker.check_orphans(cycle, controller.orphans)
        report.rehomes = controller.rehomes
    finally:
        await plane.shutdown()
    if checker is not None:
        report.violations = checker.violations
        report.checks = checker.checks
