"""Chrome trace-event export: one viewer for both control planes.

Serialises :class:`~repro.obs.spans.SpanRecord` collections into the
Chrome trace-event JSON format (the ``traceEvents`` array of complete
``"X"`` events), viewable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``. Each track — a controller, aggregator, or stage —
becomes its own named thread row, so the collect/compute/enforce stacks
of Figs. 4–6 can be read straight off the timeline.

Timestamps are microseconds from the trace's clock origin. The clock
domain (``wall`` for live runs, ``sim`` for simulated ones) is recorded
in ``otherData.clock_domain``; sim traces show *modelled* latencies and
must not be compared tick-for-tick against wall-clock traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.spans import SpanRecord

__all__ = ["export_chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

#: Process id used for every track (one logical deployment per trace).
_PID = 1


def export_chrome_trace(
    spans: Iterable[SpanRecord],
    clock_domain: str = "wall",
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from span records.

    Tracks are assigned stable thread ids in first-appearance order and
    labelled with ``thread_name`` metadata events; spans become complete
    (``"ph": "X"``) events with microsecond ``ts``/``dur``.
    """
    spans = list(spans)
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for span in spans:
        if span.track not in tids:
            tid = len(tids)
            tids[span.track] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": span.track},
                }
            )
    origin = min((s.start_s for s in spans), default=0.0)
    for span in spans:
        args = dict(span.args)
        if span.parent is not None:
            args["parent"] = span.parent
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.parent or span.name,
                "pid": _PID,
                "tid": tids[span.track],
                "ts": (span.start_s - origin) * 1e6,
                "dur": span.dur_s * 1e6,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock_domain": clock_domain,
            "tracks": sorted(tids, key=tids.get),
        },
    }


def write_chrome_trace(
    path: Union[str, Path],
    spans: Iterable[SpanRecord],
    clock_domain: str = "wall",
) -> Path:
    """Export spans and write the JSON document to ``path``."""
    path = Path(path)
    document = export_chrome_trace(spans, clock_domain=clock_domain)
    path.write_text(json.dumps(document, indent=1), encoding="utf-8")
    return path


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Span names present in a structurally valid trace document.

    Raises ``ValueError`` on malformed documents (missing keys, events
    without the mandatory fields, negative durations) — used by CI to
    check emitted artefacts actually load in a viewer.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a chrome trace: missing 'traceEvents'")
    names: List[str] = []
    for event in document["traceEvents"]:
        ph = event.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"unsupported event phase: {event!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        if ph == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"complete event missing ts/dur: {event!r}")
            if event["ts"] < 0 or event["dur"] < 0:
                raise ValueError(f"negative timestamp in event: {event!r}")
            names.append(event["name"])
    return names
