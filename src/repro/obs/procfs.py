"""Live REMORA counterpart: resource accounting from ``/proc``.

The paper collects per-controller CPU, memory, and NIC usage with TACC's
REMORA tool (Tables II–IV). The simulated plane reproduces those tables
from modelled counters (:mod:`repro.monitoring.remora`); this module
produces the same rows from a *live* run by sampling the real kernel:

* ``/proc/self/stat`` — utime/stime (process CPU seconds);
* ``/proc/self/status`` — ``VmRSS`` (resident memory);
* ``/proc/net/dev`` — per-interface byte counters (loopback carries the
  localhost TCP control traffic).

The live harness runs every controller in one process, so ``/proc``
gives whole-process truth while per-controller attribution comes from
:class:`ComponentUsageMeter`: exact per-session byte counters for the
NIC columns, and CPU seconds accumulated around each controller's
synchronous critical sections (serialisation, PSFA compute) for the CPU
column. Memory is reported as process RSS on every row — co-located
controllers share one heap, which the docs call out next to Tables
II–IV.

On platforms without ``/proc`` the sampler degrades gracefully
(``resource``/``time`` fallbacks, zero NIC rates); see
:func:`procfs_available`.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.monitoring.remora import ControllerUsage, RemoraReport

__all__ = [
    "ComponentUsageMeter",
    "LiveUsageSession",
    "ProcSample",
    "ProcessSampler",
    "procfs_available",
    "read_cpu_seconds",
    "read_net_bytes",
    "read_rss_bytes",
]

_GB = 1024.0**3
_MB = 1e6  # REMORA reports decimal MB/s


def procfs_available() -> bool:
    """True when the Linux ``/proc`` files this module reads exist."""
    return (
        os.path.exists("/proc/self/stat")
        and os.path.exists("/proc/self/status")
        and os.path.exists("/proc/net/dev")
    )


def read_cpu_seconds() -> float:
    """Process CPU seconds (utime+stime) from ``/proc/self/stat``.

    Falls back to :func:`time.process_time` where ``/proc`` is missing.
    """
    try:
        with open("/proc/self/stat", "r", encoding="ascii") as fh:
            stat = fh.read()
    except OSError:
        return time.process_time()
    # Field 2 (comm) may contain spaces; parse after the closing paren.
    fields = stat.rsplit(")", 1)[-1].split()
    utime_ticks = float(fields[11])  # stat field 14
    stime_ticks = float(fields[12])  # stat field 15
    return (utime_ticks + stime_ticks) / os.sysconf("SC_CLK_TCK")


def read_rss_bytes() -> int:
    """Resident set size from ``/proc/self/status`` (``VmRSS``).

    Falls back to ``resource.getrusage`` peak RSS where ``/proc`` is
    missing; returns 0 if neither source exists.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


def read_net_bytes() -> Dict[str, tuple]:
    """Per-interface ``(rx_bytes, tx_bytes)`` from ``/proc/net/dev``.

    Empty on platforms without ``/proc`` (NIC columns then read zero).
    """
    counters: Dict[str, tuple] = {}
    try:
        with open("/proc/net/dev", "r", encoding="ascii") as fh:
            lines = fh.readlines()[2:]  # two header lines
    except OSError:
        return counters
    for line in lines:
        if ":" not in line:
            continue
        name, rest = line.split(":", 1)
        fields = rest.split()
        counters[name.strip()] = (int(fields[0]), int(fields[8]))
    return counters


@dataclass(frozen=True)
class ProcSample:
    """One periodic reading of the process-wide counters."""

    t: float
    cpu_s: float
    rss_bytes: int
    net_rx_bytes: int
    net_tx_bytes: int


def _take_sample() -> ProcSample:
    net = read_net_bytes()
    return ProcSample(
        t=time.perf_counter(),
        cpu_s=read_cpu_seconds(),
        rss_bytes=read_rss_bytes(),
        net_rx_bytes=sum(rx for rx, _ in net.values()),
        net_tx_bytes=sum(tx for _, tx in net.values()),
    )


class ProcessSampler:
    """Samples the process at a fixed interval (REMORA's periodic mode).

    ``start()``/``stop()`` bracket the measurement window inside a
    running event loop; :meth:`usage` reduces the window to one
    whole-process :class:`~repro.monitoring.remora.ControllerUsage` row
    from first/last counter deltas, with the periodic samples kept in
    :attr:`samples` for time-series inspection.
    """

    def __init__(self, interval_s: float = 0.05) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self.interval_s = interval_s
        self.samples: List[ProcSample] = []
        self._task: Optional[asyncio.Task] = None

    async def _run(self) -> None:
        while True:
            self.samples.append(_take_sample())
            await asyncio.sleep(self.interval_s)

    def start(self) -> None:
        """Take a baseline sample and begin periodic sampling."""
        self.samples.append(_take_sample())
        self._task = asyncio.get_event_loop().create_task(self._run())

    async def stop(self) -> None:
        """Take a final sample and cancel the sampling task."""
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        self.samples.append(_take_sample())

    @property
    def elapsed_s(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].t - self.samples[0].t

    @property
    def rss_bytes(self) -> int:
        """Most recent resident-set reading."""
        return self.samples[-1].rss_bytes if self.samples else 0

    def usage(self, name: str = "process", cores: int = 1) -> ControllerUsage:
        """Whole-process average usage over the sampled window."""
        if len(self.samples) < 2 or self.elapsed_s <= 0:
            raise RuntimeError("need a started+stopped sampling window")
        first, last = self.samples[0], self.samples[-1]
        elapsed = self.elapsed_s
        return ControllerUsage(
            name=name,
            cpu_percent=100.0 * (last.cpu_s - first.cpu_s) / (elapsed * cores),
            memory_gb=last.rss_bytes / _GB,
            transmitted_mb_s=(last.net_tx_bytes - first.net_tx_bytes) / elapsed / _MB,
            received_mb_s=(last.net_rx_bytes - first.net_rx_bytes) / elapsed / _MB,
        )


class ComponentUsageMeter:
    """Per-controller usage attribution inside the shared live process.

    NIC columns are exact: the session layer feeds every framed byte it
    writes/reads through :meth:`add_tx`/:meth:`add_rx`. The CPU column
    accumulates :func:`time.process_time` deltas measured around the
    component's synchronous critical sections via :meth:`cpu` — awaits
    that actually suspend must stay outside the measured region, so the
    attributed seconds are this component's own work.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.cpu_seconds = 0.0
        self.tx_bytes = 0
        self.rx_bytes = 0

    @contextlib.contextmanager
    def cpu(self) -> Iterator[None]:
        """Attribute the CPU time of the enclosed (synchronous) section."""
        start = time.process_time()
        try:
            yield
        finally:
            self.cpu_seconds += time.process_time() - start

    def add_tx(self, nbytes: int) -> None:
        self.tx_bytes += nbytes

    def add_rx(self, nbytes: int) -> None:
        self.rx_bytes += nbytes

    def usage(self, elapsed_s: float, rss_bytes: int) -> ControllerUsage:
        """This component's table row over a measurement window."""
        if elapsed_s <= 0:
            raise ValueError(f"elapsed_s must be positive: {elapsed_s}")
        return ControllerUsage(
            name=self.name,
            cpu_percent=100.0 * self.cpu_seconds / elapsed_s,
            memory_gb=rss_bytes / _GB,
            transmitted_mb_s=self.tx_bytes / elapsed_s / _MB,
            received_mb_s=self.rx_bytes / elapsed_s / _MB,
        )


class LiveUsageSession:
    """Bundles the process sampler with per-controller meters.

    The live harness creates one per run: controllers receive meters
    from :meth:`meter`, and :meth:`report` reduces everything to a
    :class:`~repro.monitoring.remora.RemoraReport` whose rows line up
    with the simulated plane's Tables II–IV (``RemoraReport.table_row``
    renders either source).
    """

    def __init__(self, interval_s: float = 0.05) -> None:
        self.sampler = ProcessSampler(interval_s=interval_s)
        self.meters: Dict[str, ComponentUsageMeter] = {}

    def meter(self, name: str) -> ComponentUsageMeter:
        """The (singleton) meter for a named controller."""
        if name not in self.meters:
            self.meters[name] = ComponentUsageMeter(name)
        return self.meters[name]

    def start(self) -> None:
        self.sampler.start()

    async def stop(self) -> None:
        await self.sampler.stop()

    def report(self) -> RemoraReport:
        """Per-controller usage rows over the sampled window."""
        elapsed = self.sampler.elapsed_s
        if elapsed <= 0:
            raise RuntimeError("usage session never ran")
        rss = self.sampler.rss_bytes
        per_host = {
            name: meter.usage(elapsed, rss)
            for name, meter in self.meters.items()
        }
        return RemoraReport(per_host)
