"""Metrics registry with Prometheus text exposition.

Counters, gauges, and latency histograms (reusing the fixed-memory
log-bucketed :class:`~repro.monitoring.histogram.LatencyHistogram`)
registered by name+labels, rendered in the Prometheus text format, and
optionally served by a tiny asyncio HTTP endpoint (``GET /metrics``) so
a live controller run can be scraped while it cycles.

The registry is process-local and lock-free (asyncio is single-threaded
here); metric families are created on first use::

    registry = MetricsRegistry()
    registry.counter("cycles_total", role="global").inc()
    registry.histogram("cycle_seconds", role="global").observe(0.012)
    print(registry.render())
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.monitoring.histogram import LatencyHistogram

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry", "MetricsServer"]

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


class Counter:
    """Monotonically increasing count (Prometheus ``counter``)."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (Prometheus ``gauge``)."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramMetric:
    """Latency distribution backed by :class:`LatencyHistogram`."""

    def __init__(self, histogram: Optional[LatencyHistogram] = None) -> None:
        self.histogram = histogram or LatencyHistogram()

    def observe(self, value_s: float) -> None:
        self.histogram.record(value_s)


class MetricsRegistry:
    """Named metric families, each keyed by a label set."""

    def __init__(self) -> None:
        self._families: Dict[str, Tuple[str, str, Dict[_LabelKey, object]]] = {}

    def _family(self, name: str, kind: str, help_text: str) -> Dict[_LabelKey, object]:
        if name in self._families:
            existing_kind, _, series = self._families[name]
            if existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}"
                )
            return series
        series: Dict[_LabelKey, object] = {}
        self._families[name] = (kind, help_text, series)
        return series

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        series = self._family(name, "counter", help)
        key = _label_key(labels)
        if key not in series:
            series[key] = Counter()
        return series[key]  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        series = self._family(name, "gauge", help)
        key = _label_key(labels)
        if key not in series:
            series[key] = Gauge()
        return series[key]  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        histogram: Optional[LatencyHistogram] = None,
        **labels: str,
    ) -> HistogramMetric:
        """The histogram for ``name`` + ``labels`` (created on first use)."""
        series = self._family(name, "histogram", help)
        key = _label_key(labels)
        if key not in series:
            series[key] = HistogramMetric(histogram)
        return series[key]  # type: ignore[return-value]

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for name in sorted(self._families):
            kind, help_text, series = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(series):
                metric = series[key]
                if kind in ("counter", "gauge"):
                    lines.append(f"{name}{_label_text(key)} {metric.value}")
                    continue
                hist = metric.histogram  # type: ignore[union-attr]
                cumulative = 0
                for upper, count in hist.nonzero_buckets():
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text(key, ('le', format(upper, '.6g')))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_label_text(key, ('le', '+Inf'))} {hist.total}"
                )
                lines.append(f"{name}_sum{_label_text(key)} {hist.mean * hist.total}")
                lines.append(f"{name}_count{_label_text(key)} {hist.total}")
        return "\n".join(lines) + "\n"


class MetricsServer:
    """Minimal asyncio HTTP endpoint serving ``GET /metrics``.

    Binds ``host:port`` (port 0 picks an ephemeral port, exposed via
    :attr:`port` after :meth:`start`) and answers every request with the
    registry's current text exposition; anything but ``GET /metrics``
    gets a 404. Intended for scraping a live run, not for the internet.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Begin serving; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_connection(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            # Drain remaining headers until the blank line.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            if len(parts) >= 2 and parts[0] == "GET" and parts[1] in ("/metrics", "/"):
                body = self.registry.render().encode("utf-8")
                status = b"200 OK"
                content_type = b"text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found\n"
                status = b"404 Not Found"
                content_type = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + content_type + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
