"""Unified observability for both control planes (spans, traces, usage).

The paper's evidence is (a) per-phase control-cycle latency (Figs. 4–6)
and (b) per-controller CPU/memory/NIC usage collected with REMORA
(Tables II–IV). This package makes both first-class for the simulated
*and* the live deployment:

* :mod:`repro.obs.spans` — a span tracer with pluggable clocks
  (sim virtual time or wall clock) recording every control cycle as a
  ``cycle`` span with ``collect``/``compute``/``enforce`` children;
* :mod:`repro.obs.chrome_trace` — a Chrome trace-event exporter so one
  Perfetto timeline renders either plane;
* :mod:`repro.obs.procfs` — a live REMORA counterpart sampling
  ``/proc`` plus per-controller byte/CPU meters, producing
  :class:`~repro.monitoring.remora.RemoraReport` rows from real runs;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  Prometheus text exposition and an optional ``GET /metrics`` endpoint.

Entry points: ``repro live --obs-out trace.json --metrics-port 0`` and
``repro flat/hier/coordinated --trace-out trace.json``.
"""

from repro.obs.chrome_trace import (
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry, MetricsServer
from repro.obs.procfs import (
    ComponentUsageMeter,
    LiveUsageSession,
    ProcessSampler,
    procfs_available,
)
from repro.obs.spans import (
    NullSpanTracer,
    SpanRecord,
    SpanTracer,
    sim_clock,
    spans_from_trace_records,
    wall_clock,
)

__all__ = [
    "ComponentUsageMeter",
    "LiveUsageSession",
    "MetricsRegistry",
    "MetricsServer",
    "NullSpanTracer",
    "ProcessSampler",
    "SpanRecord",
    "SpanTracer",
    "export_chrome_trace",
    "procfs_available",
    "sim_clock",
    "spans_from_trace_records",
    "validate_chrome_trace",
    "wall_clock",
    "write_chrome_trace",
]
