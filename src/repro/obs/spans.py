"""Span tracing shared by the simulated and the live control planes.

The paper's primary evidence is per-phase control-cycle latency
(Figs. 4–6); a *span* is the structured form of one bar segment: a named
interval on a named track, optionally nested. Every control cycle is
recorded as a ``cycle`` span with ``collect``/``compute``/``enforce``
children, and (on the live plane) per-session RPC children, so one
viewer inspects both planes.

Clocks are pluggable: the simulated plane traces with ``env.now``
(virtual seconds — latencies are modelled, not measured), while the
live plane traces with ``time.perf_counter`` (wall seconds). The two
must never be mixed on one timeline; exporters label the clock domain.

A :class:`SpanTracer` may mirror finished spans into an existing
:class:`repro.simnet.trace.Tracer` (category ``"span"``) so simulation
tests keep filtering one record stream;
:func:`spans_from_trace_records` converts such records back.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "NullSpanTracer",
    "SpanRecord",
    "SpanTracer",
    "sim_clock",
    "spans_from_trace_records",
    "wall_clock",
]


def wall_clock() -> float:
    """The live plane's clock: monotonic wall seconds."""
    return time.perf_counter()


def sim_clock(env) -> Any:
    """A clock reading a simulation :class:`Environment`'s virtual time."""
    return lambda: env.now


@dataclass(slots=True)
class SpanRecord:
    """One completed span: a named interval on a track.

    ``track`` identifies the emitting component (controller, aggregator,
    stage); ``parent`` names the enclosing span (``cycle`` for phase
    spans) so exporters can nest without re-deriving containment.
    Slotted and unfrozen: live controllers create dozens per cycle, and
    frozen-dataclass construction is measurable at ms-scale cycles.
    """

    track: str
    name: str
    start_s: float
    dur_s: float
    parent: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


class SpanTracer:
    """Collects :class:`SpanRecord` objects from one component.

    Parameters
    ----------
    clock:
        Zero-arg callable returning the current time in seconds —
        :func:`wall_clock` for live components, :func:`sim_clock` for
        simulated ones. The clock domain is a property of the whole
        trace; never mix tracers with different domains in one export.
    track:
        Component name (one timeline row in the viewer).
    spans:
        Optional shared destination list, so several components of one
        deployment collect into a single trace.
    mirror:
        Optional :class:`repro.simnet.trace.Tracer`; every finished span
        is also emitted there as a ``"span"`` category record.
    clock_domain:
        ``"wall"`` or ``"sim"``, recorded in exports.
    """

    def __init__(
        self,
        clock=wall_clock,
        track: str = "main",
        spans: Optional[List[SpanRecord]] = None,
        mirror=None,
        clock_domain: str = "wall",
    ) -> None:
        if clock_domain not in ("wall", "sim"):
            raise ValueError(f"unknown clock domain: {clock_domain!r}")
        self._clock = clock
        #: The clock itself, bound as ``now`` so the per-RPC hot path
        #: pays one call, not a method wrapper around one.
        self.now = time.perf_counter if clock is wall_clock else clock
        self.track = track
        self.spans: List[SpanRecord] = spans if spans is not None else []
        self.mirror = mirror
        self.clock_domain = clock_domain
        self._children: Dict[str, "SpanTracer"] = {}

    @property
    def enabled(self) -> bool:
        return True

    def for_track(self, track: str) -> "SpanTracer":
        """A tracer for another component sharing this one's trace.

        Memoized: RPC-span emission calls this once per reply, and a
        fresh tracer per call is measurable overhead at ms-scale cycles.
        """
        child = self._children.get(track)
        if child is None:
            child = SpanTracer(
                clock=self._clock,
                track=track,
                spans=self.spans,
                mirror=self.mirror,
                clock_domain=self.clock_domain,
            )
            self._children[track] = child
        return child

    def emit(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        parent: Optional[str] = None,
        **args: Any,
    ) -> SpanRecord:
        """Record an already-timed interval (sim phases time themselves)."""
        record = SpanRecord(
            track=self.track,
            name=name,
            start_s=start_s,
            dur_s=max(dur_s, 0.0),
            parent=parent,
            args=args,
        )
        self.spans.append(record)
        if self.mirror is not None:
            self.mirror.record(
                "span",
                track=record.track,
                name=record.name,
                start_s=record.start_s,
                dur_s=record.dur_s,
                parent=record.parent,
                **args,
            )
        return record

    @contextlib.contextmanager
    def span(
        self, name: str, parent: Optional[str] = None, **args: Any
    ) -> Iterator[Dict[str, Any]]:
        """Context manager timing its body as one span.

        Yields the span's mutable ``args`` dict so the body can attach
        results (reply counts, missing sessions) before the span closes.
        """
        start = self._clock()
        try:
            yield args
        finally:
            self.emit(name, start, self._clock() - start, parent=parent, **args)


class NullSpanTracer:
    """No-op tracer: the default when observability is off.

    Presents the full :class:`SpanTracer` API at near-zero cost so
    instrumented code needs no ``if`` guards.
    """

    spans: List[SpanRecord] = []
    track = "null"
    clock_domain = "wall"

    @property
    def enabled(self) -> bool:
        return False

    def now(self) -> float:
        return 0.0

    def for_track(self, track: str) -> "NullSpanTracer":
        return self

    def emit(self, name, start_s, dur_s, parent=None, **args):
        return None

    @contextlib.contextmanager
    def span(self, name, parent=None, **args) -> Iterator[Dict[str, Any]]:
        yield args


def spans_from_trace_records(records: Iterable) -> List[SpanRecord]:
    """Convert mirrored ``"span"`` :class:`~repro.simnet.trace.TraceRecord`
    objects back into :class:`SpanRecord` form (for export)."""
    out: List[SpanRecord] = []
    for r in records:
        if r.category != "span":
            continue
        fields = dict(r.fields)
        out.append(
            SpanRecord(
                track=fields.pop("track", "main"),
                name=fields.pop("name", "span"),
                start_s=fields.pop("start_s", r.time),
                dur_s=fields.pop("dur_s", 0.0),
                parent=fields.pop("parent", None),
                args=fields,
            )
        )
    return out
