"""Hot-standby failover for the *live* global controller (paper §VI).

The asyncio/TCP port of :mod:`repro.core.failover`, with the same
semantics and the same bound: the primary streams heartbeats (carrying
its latest epoch) to the standby over a dedicated connection; the
standby declares the primary dead after ``missed_heartbeats`` silent
intervals — or immediately when the primary's task dies under it — and
resumes control cycles from ``last_primary_epoch + EPOCH_SLACK``, so
stage-side epoch fencing accepts standby rules and discards any late
primary traffic. The QoS-adaptation gap is therefore bounded by
``heartbeat_interval_s × missed_heartbeats`` plus one control cycle
(which, on the live plane, also absorbs the stages' reconnect backoff).

Unlike the simulator — where the standby holds pre-established
connections to every stage — live stages hold *one* connection, built
with the standby's address in their ``alternates`` list
(:class:`~repro.live.stage_client.LiveVirtualStage`): when the primary's
sockets die, the stages' reconnect loops rotate to the standby and
re-register, typically well inside the heartbeat silence budget.

Usage::

    primary = LiveGlobalController(policy, expected_stages=n)
    standby = LiveGlobalController(policy, expected_stages=n)
    await primary.start(); await standby.start()
    stages = [LiveVirtualStage(primary.host, primary.port, ...,
                               alternates=[(standby.host, standby.port)])
              for ...]
    hot = LiveHotStandby(primary, standby, heartbeat_interval_s=0.05)
    ... stages connect; await primary.wait_for_stages() ...
    cycles = await hot.run_protected(n_cycles)   # survives kill_primary()
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.cycle import ControlCycle
from repro.core.failover import EPOCH_SLACK
from repro.live.controller_server import LiveGlobalController
from repro.live.protocol import write_message
from repro.obs.spans import NullSpanTracer

__all__ = ["LiveFailoverEvent", "LiveHotStandby"]


@dataclass(frozen=True)
class LiveFailoverEvent:
    """Record of a live take-over decision (monotonic wall seconds).

    ``gap_s`` is the measured QoS-adaptation gap: from the kill (or the
    last heartbeat, if the primary died without :meth:`kill_primary`)
    until the standby's first control cycle completed.
    """

    time: float
    last_primary_epoch: int
    resumed_epoch: int
    gap_s: float


class LiveHotStandby:
    """Couples a primary and a standby :class:`LiveGlobalController`.

    Both controllers must be listening before :meth:`run_protected`. The
    standby stays passive — it accepts registrations and heartbeats but
    runs no cycles — until the primary goes silent past the budget.
    """

    def __init__(
        self,
        primary: LiveGlobalController,
        standby: LiveGlobalController,
        heartbeat_interval_s: float = 0.05,
        missed_heartbeats: int = 3,
        span_tracer=None,
        metrics=None,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat interval must be positive: {heartbeat_interval_s}"
            )
        if missed_heartbeats < 1:
            raise ValueError(f"missed_heartbeats must be >= 1: {missed_heartbeats}")
        if primary is standby:
            raise ValueError("primary and standby must be distinct controllers")
        self.primary = primary
        self.standby = standby
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.missed_heartbeats = int(missed_heartbeats)
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.failover: Optional[LiveFailoverEvent] = None
        self.heartbeats_sent = 0
        self.killed_at: Optional[float] = None
        self._m_takeovers = None
        if metrics is not None:
            self._m_takeovers = metrics.counter(
                "repro_failover_takeovers_total",
                "standby takeovers after primary-controller loss",
                role="standby",
            )
        self._primary_task: Optional[asyncio.Task] = None
        self._hb_task: Optional[asyncio.Task] = None
        self._hb_writer: Optional[asyncio.StreamWriter] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Open the heartbeat channel (run_protected calls this lazily)."""
        _reader, writer = await asyncio.open_connection(
            self.standby.host, self.standby.port
        )
        self._hb_writer = writer
        await write_message(
            writer, {"kind": "heartbeat", "epoch": self.primary.epoch}
        )
        self.heartbeats_sent += 1
        self._hb_task = asyncio.create_task(self._heartbeat())

    def kill_primary(self) -> None:
        """Crash the primary mid-run (failure injection).

        Everything a process kill would take down goes at once: the cycle
        task, the heartbeat stream, the primary's child sockets, and its
        listening socket (so stages rotate to the standby).
        """
        self.killed_at = time.monotonic()
        if self._primary_task is not None:
            self._primary_task.cancel()
        if self._hb_task is not None:
            self._hb_task.cancel()
        writer = self._hb_writer
        if writer is not None and writer.transport is not None:
            writer.transport.abort()
        self.primary.kill()

    @property
    def active_controller(self) -> LiveGlobalController:
        """Whoever is currently (or was last) driving control cycles."""
        return self.standby if self.failover is not None else self.primary

    def total_cycles(self) -> int:
        """Cycles completed across primary + standby."""
        return len(self.primary.cycles) + len(self.standby.cycles)

    # -- main loop -----------------------------------------------------------
    async def run_protected(
        self,
        n_cycles: int,
        cycle_period_s: float = 0.0,
        stage_timeout_s: float = 10.0,
    ) -> List[ControlCycle]:
        """Run ``n_cycles`` cycles with failover protection.

        Returns the combined cycle records (primary's, then — after a
        take-over — the standby's). ``cycle_period_s`` paces the cycles
        (0 = back-to-back, the stress mode).
        """
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        if self._hb_writer is None:
            await self.start()
        self._primary_task = asyncio.create_task(
            self._paced_cycles(self.primary, n_cycles, cycle_period_s)
        )
        silence_budget = self.heartbeat_interval_s * self.missed_heartbeats
        poll_s = self.heartbeat_interval_s / 4.0
        started = time.monotonic()
        try:
            while True:
                await asyncio.sleep(poll_s)
                task = self._primary_task
                crashed = task.done() and (
                    task.cancelled() or task.exception() is not None
                )
                if task.done() and not crashed:
                    return self._all_cycles()
                last_beat = self.standby.last_heartbeat_at or started
                silent_for = time.monotonic() - last_beat
                if not crashed and silent_for < silence_budget:
                    continue
                remaining = n_cycles - len(self.primary.cycles)
                if remaining > 0:
                    await self._take_over(
                        remaining, cycle_period_s, stage_timeout_s
                    )
                return self._all_cycles()
        finally:
            await self._stop_heartbeats()

    # -- internals -------------------------------------------------------------
    def _all_cycles(self) -> List[ControlCycle]:
        return list(self.primary.cycles) + list(self.standby.cycles)

    async def _paced_cycles(
        self, controller: LiveGlobalController, n_cycles: int, period_s: float
    ) -> None:
        for _ in range(n_cycles):
            await controller.run_cycles(1)
            if period_s > 0:
                await asyncio.sleep(period_s)

    async def _take_over(
        self, remaining: int, cycle_period_s: float, stage_timeout_s: float
    ) -> None:
        # Resume above the highest epoch the primary is known to have
        # used: stages accept standby rules, late primary rules are
        # fenced by the stages' staleness checks.
        last_known = max(self.standby.last_primary_epoch, self.primary.epoch)
        self.standby.epoch = last_known + EPOCH_SLACK
        origin = (
            self.killed_at
            if self.killed_at is not None
            else (self.standby.last_heartbeat_at or time.monotonic())
        )
        with self.tracer.span("takeover", last_primary_epoch=last_known) as args:
            await self.standby.wait_for_stages(timeout_s=stage_timeout_s)
            await self.standby.run_cycles(1)
            args["resumed_epoch"] = self.standby.epoch
        gap_s = time.monotonic() - origin
        self.failover = LiveFailoverEvent(
            time=time.monotonic(),
            last_primary_epoch=last_known,
            resumed_epoch=last_known + EPOCH_SLACK + 1,
            gap_s=gap_s,
        )
        if self._m_takeovers is not None:
            self._m_takeovers.inc()
        if remaining > 1:
            await self._paced_cycles(self.standby, remaining - 1, cycle_period_s)

    async def _heartbeat(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval_s)
                await write_message(
                    self._hb_writer,
                    {"kind": "heartbeat", "epoch": self.primary.epoch},
                )
                self.heartbeats_sent += 1
        except (ConnectionError, OSError):
            pass  # standby gone; nothing left to reassure

    async def _stop_heartbeats(self) -> None:
        if self._hb_task is not None:
            self._hb_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._hb_task
            self._hb_task = None
        writer = self._hb_writer
        if writer is not None:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            self._hb_writer = None
