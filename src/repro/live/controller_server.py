"""Live global controller: an asyncio TCP server running control cycles.

The same collect → compute → enforce loop as the simulated
:class:`~repro.core.controller.GlobalController`, timed with the
wall clock and executing the *same* PSFA implementation
(:class:`repro.core.algorithms.psfa.PSFA`) over the collected demand.

Failure semantics match the simulated plane (paper §VI dependability):

* ``collect_timeout_s`` / ``enforce_timeout_s`` put a deadline on each
  reply-gathering phase. A cycle that misses replies proceeds on partial
  metrics — absent stages fall back to their last-known demand — and
  records the damage in :class:`~repro.core.cycle.ControlCycle` via the
  ``n_missing`` / ``timed_out`` fields.
* A session whose socket dies (EOF, reset) is *evicted* instead of
  poisoning the cycle; even without a timeout configured, the cycle
  completes over the survivors rather than hanging forever.
* Evicted stage ids become free again, so a restarted stage re-registers
  (see :class:`~repro.live.stage_client.LiveVirtualStage`'s reconnect
  loop) and is picked up by the next cycle.

Observability (``repro.obs``): pass ``span_tracer`` to record every
cycle as a ``cycle`` span with ``collect``/``compute``/``enforce``
children plus per-session RPC spans; pass ``usage_meter`` to charge
framed bytes and synchronous CPU sections to this controller's Tables
II–IV row; pass ``metrics`` (a registry) for Prometheus counters and
latency histograms.
"""

from __future__ import annotations

import asyncio
import contextlib
import copy
import time
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.columnar import StageColumns
from repro.core.cycle import ControlCycle
from repro.core.policies import QoSPolicy
from repro.live.protocol import (
    ProtocolError,
    choose_codec,
    encode,
    read_message,
    write_message,
)
from repro.live.sessions import Session, SessionClosed, gather_phase
from repro.obs.spans import NullSpanTracer

__all__ = ["LiveGlobalController", "LiveHierGlobalController"]


class _StageSession(Session):
    """Server-side state for one connected stage."""

    def __init__(self, stage_id: str, job_id: str, reader, writer, meter=None) -> None:
        super().__init__(stage_id, reader, writer, meter=meter)
        self.job_id = job_id
        # Last-known demand is tracked per axis: collapsing data +
        # metadata into one scalar loses the split a dead socket's
        # fallback (and the metadata allocator) needs.
        self.latest_data_demand = 0.0
        self.latest_metadata_demand = 0.0
        #: Row index in the controller's :class:`StageColumns` (columnar
        #: mode only); refreshed by the controller after compaction.
        self.column_row: Optional[int] = None

    @property
    def latest_demand(self) -> float:
        """Summed last-known demand (the undifferentiated axis)."""
        return self.latest_data_demand + self.latest_metadata_demand

    @property
    def stage_id(self) -> str:
        return self.peer_id


class _LiveControllerBase:
    """Registration, eviction, and teardown shared by both designs."""

    #: ``kind`` a valid hello frame must carry (set by subclasses).
    _register_kind = "register"

    #: Role label used on metric series ("global" | "hier-global").
    _role = "global"

    def __init__(
        self,
        host: str,
        port: int,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
        degradation=None,
        demand_clamp=None,
        session_outbox_bytes: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.meter = usage_meter
        self.metrics = metrics
        #: Optional :class:`repro.guard.DegradationLadder` — fed each
        #: cycle's degraded flag; its multipliers tighten the collect
        #: deadline and (at the top rung) force changed-only enforcement.
        #: Share ONE instance across controller generations (restarts) so
        #: the ladder's streaks survive the processes it protects.
        self.degradation = degradation
        #: Optional :class:`repro.guard.DemandClamp` — caps each reported
        #: demand at a multiple of that stage's observed usage before
        #: PSFA runs ("no false allocation" against demand liars). Also
        #: share one instance across generations.
        self.demand_clamp = demand_clamp
        #: Per-session outbound-buffer bound (bytes); None = unbounded.
        #: Only enable together with phase deadlines — a shed rule means
        #: a missing ack, which needs ``enforce_timeout_s`` to resolve.
        self.session_outbox_bytes = session_outbox_bytes
        #: Shed counts carried over from evicted sessions (monotone).
        self._outbox_shed_evicted = 0
        self._outbox_shed_bytes_evicted = 0
        self.sessions: Dict[str, Session] = {}
        self.cycles: List[ControlCycle] = []
        self.epoch = 0
        #: Buffer a phase's frames per session and drain once (the
        #: writev-style fast path); ``False`` restores the seed's
        #: frame-per-drain writes, which the bench uses as its baseline.
        self.coalesce = True
        #: Sessions evicted because their socket died mid-cycle.
        self.evictions = 0
        #: Registrations rejected (duplicate id, malformed hello).
        self.registrations_rejected = 0
        #: Last computed allocation per stage id (chaos invariant probe).
        self.last_allocations: Dict[str, float] = {}
        #: Standby-side heartbeat intake (see repro.live.failover): a
        #: primary controller connects with a ``heartbeat`` hello and
        #: streams epochs; the watchdog reads these fields.
        self.last_heartbeat_at: Optional[float] = None
        self.last_primary_epoch = 0
        self.heartbeats_received = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()
        # Instruments resolved once — registry lookups (label-key sort +
        # dict walk) are too slow for a per-cycle hot path.
        if metrics is not None:
            role = self._role
            self._m_cycles = metrics.counter(
                "repro_cycles_total", "control cycles completed", role=role
            )
            self._m_degraded = metrics.counter(
                "repro_degraded_cycles_total",
                "cycles run on partial metrics or past a deadline",
                role=role,
            )
            self._m_missing = metrics.counter(
                "repro_missing_replies_total",
                "child replies missing across cycles",
                role=role,
            )
            self._m_sessions = metrics.gauge(
                "repro_sessions", "currently registered children", role=role
            )
            self._m_cycle_seconds = metrics.histogram(
                "repro_cycle_seconds", "end-to-end control cycle latency", role=role
            )
            self._m_phase_seconds = {
                phase: metrics.histogram(
                    "repro_phase_seconds",
                    "per-phase control cycle latency",
                    role=role,
                    phase=phase,
                )
                for phase in ("collect", "compute", "enforce")
            }
            self._m_evictions = metrics.counter(
                "repro_evictions_total",
                "sessions dropped after their socket died",
                role=role,
            )
            self._m_outbox_shed = metrics.gauge(
                "repro_outbox_frames_shed",
                "frames shed from bounded session outboxes (cumulative)",
                role=role,
            )
            self._m_outbox_pending = metrics.gauge(
                "repro_outbox_pending_bytes",
                "bytes currently buffered across session outboxes",
                role=role,
            )
            self._m_degradation_level = metrics.gauge(
                "repro_degradation_level",
                "graceful-degradation ladder rung (0 = normal)",
                role=role,
            )
            self._m_demand_clamped = metrics.gauge(
                "repro_demand_clamped_iops",
                "reported demand trimmed by the trust clamp (cumulative)",
                role=role,
            )

    def _cpu(self):
        """CPU-attribution context for synchronous critical sections."""
        return self.meter.cpu() if self.meter is not None else contextlib.nullcontext()

    def _record_cycle(self, cycle: ControlCycle, started: float) -> None:
        """Append the record and emit its spans/metrics (obs enabled)."""
        self.cycles.append(cycle)
        tracer = self.tracer
        if tracer.enabled:
            t = started
            for phase in ("collect", "compute", "enforce"):
                dur = cycle.phase(phase)
                tracer.emit(phase, t, dur, parent="cycle", epoch=cycle.epoch)
                t += dur
            tracer.emit(
                "cycle",
                started,
                cycle.total_s,
                epoch=cycle.epoch,
                n_stages=cycle.n_stages,
                n_missing=cycle.n_missing,
                timed_out=cycle.timed_out,
            )
        if self.degradation is not None:
            self.degradation.observe(cycle.degraded)
        if self.metrics is not None:
            self._m_cycles.inc()
            if cycle.degraded:
                self._m_degraded.inc()
            if cycle.n_missing:
                self._m_missing.inc(cycle.n_missing)
            self._m_sessions.set(len(self.sessions))
            self._m_cycle_seconds.observe(cycle.total_s)
            for phase in ("collect", "compute", "enforce"):
                self._m_phase_seconds[phase].observe(cycle.phase(phase))
            self._m_outbox_shed.set(self.outbox_frames_shed)
            self._m_outbox_pending.set(
                sum(s.outbox.pending_bytes for s in self.sessions.values())
            )
            if self.degradation is not None:
                self._m_degradation_level.set(self.degradation.level)
            if self.demand_clamp is not None:
                self._m_demand_clamped.set(self.demand_clamp.clamped_iops_total)

    @property
    def outbox_frames_shed(self) -> int:
        """Frames shed across all sessions, living and evicted (monotone)."""
        return self._outbox_shed_evicted + sum(
            s.outbox.frames_shed for s in self.sessions.values()
        )

    @property
    def outbox_bytes_shed(self) -> int:
        return self._outbox_shed_bytes_evicted + sum(
            s.outbox.bytes_shed for s in self.sessions.values()
        )

    def _effective_collect_timeout(self) -> Optional[float]:
        """Collect deadline after the degradation ladder's tightening."""
        timeout = self.collect_timeout_s
        if timeout is not None and self.degradation is not None:
            timeout *= self.degradation.collect_timeout_multiplier
        return timeout

    def _effective_changed_only(self) -> bool:
        """Changed-only enforcement, forced at the ladder's top rung."""
        if self.degradation is not None and self.degradation.force_changed_only:
            return True
        return self.enforce_changed_only

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start listening; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Tell children to stop, flush the frames, and close the server."""
        for session in list(self.sessions.values()):
            try:
                await session.send({"kind": "shutdown"})
            except SessionClosed:
                pass
            await session.close()
        self.sessions.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def kill(self) -> None:
        """Die abruptly: abort every child socket, stop listening.

        The live counterpart of killing the controller process — children
        see EOF (not a ``shutdown`` frame) and their reconnect loops
        rotate to alternate addresses (e.g. the hot standby).
        """
        for session in list(self.sessions.values()):
            if session.writer.transport is not None:
                session.writer.transport.abort()
        if self._server is not None:
            self._server.close()

    @property
    def stale_messages(self) -> int:
        """Frames drained as stale across all live sessions."""
        return sum(s.stale_messages for s in self.sessions.values())

    # -- registration -------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except (asyncio.IncompleteReadError, ProtocolError, ConnectionError, OSError):
            writer.close()
            return
        if hello.get("kind") == "heartbeat":
            await self._heartbeat_loop(hello, reader, writer)
            return
        if hello.get("kind") != self._register_kind:
            writer.close()
            return
        error = self._validate_hello(hello)
        if error is not None:
            await self._reject(writer, error)
            return
        session = self._make_session(hello, reader, writer)
        # Codec negotiation: binary when the child advertises it, JSON for
        # older children. The ack itself is always JSON-decodable.
        session.codec = choose_codec(hello.get("codecs"))
        self.sessions[session.peer_id] = session
        await write_message(
            writer, {"kind": "registered", "codec": session.codec}
        )
        session.start()
        if len(self.sessions) >= self._expected:
            self._all_registered.set()
        await self._after_register(session)
        # The controller drives all further I/O through the session's
        # frame pump; the handler returns and the streams stay owned by
        # the session.

    async def _heartbeat_loop(self, first: dict, reader, writer) -> None:
        """Consume a primary's heartbeat stream (this side is standby)."""
        message = first
        try:
            while True:
                if message.get("kind") == "heartbeat":
                    self.last_heartbeat_at = time.monotonic()
                    self.last_primary_epoch = max(
                        self.last_primary_epoch, int(message.get("epoch", 0))
                    )
                    self.heartbeats_received += 1
                message = await read_message(reader)
        except (asyncio.IncompleteReadError, ProtocolError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _after_register(self, session: Session) -> None:
        """Hook run after a child registers (hier: topology broadcast)."""

    async def _reject(self, writer, reason: str) -> None:
        """Refuse a registration: error reply, then close the connection."""
        self.registrations_rejected += 1
        try:
            await write_message(
                writer, {"kind": "register_error", "reason": reason}
            )
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _evict(self, session: Session) -> None:
        """Drop a dead session so its id can register again."""
        if self.sessions.get(session.peer_id) is session:
            del self.sessions[session.peer_id]
            self.evictions += 1
            self._outbox_shed_evicted += session.outbox.frames_shed
            self._outbox_shed_bytes_evicted += session.outbox.bytes_shed
            if self.metrics is not None:
                self._m_evictions.inc()
            self._on_evicted(session)
        await session.close()

    # Subclass hooks ---------------------------------------------------------
    def _on_evicted(self, session: Session) -> None:
        """Bookkeeping hook after a session is dropped (subclasses)."""

    def _validate_hello(self, hello: dict) -> Optional[str]:
        raise NotImplementedError

    def _make_session(self, hello: dict, reader, writer) -> Session:
        raise NotImplementedError

    @property
    def _expected(self) -> int:
        raise NotImplementedError


class LiveGlobalController(_LiveControllerBase):
    """Flat-design controller over real TCP connections.

    Usage::

        ctrl = LiveGlobalController(policy, expected_stages=50)
        await ctrl.start()                 # begins listening; port assigned
        ... stages connect ...
        await ctrl.wait_for_stages()
        cycles = await ctrl.run_cycles(20)
        await ctrl.shutdown()

    ``collect_timeout_s`` / ``enforce_timeout_s`` bound the collect and
    enforce phases; ``enforce_timeout_s`` defaults to the collect value.

    ``evicted_grace_cycles`` keeps an evicted stage's share *reserved*
    (its last demand still participates in PSFA, no rule shipped) for
    that many cycles: a killed-but-restarting stage keeps enforcing its
    last rule, so redistributing its share immediately would oversubscribe
    the PFS until it re-registers. 0 (default) redistributes immediately,
    the seed behaviour.
    """

    _register_kind = "register"

    def __init__(
        self,
        policy: QoSPolicy,
        expected_stages: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        evicted_grace_cycles: int = 0,
        enforce_changed_only: bool = False,
        rule_change_tolerance: float = 0.0,
        coalesce: bool = True,
        initial_epoch: int = 0,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
        degradation=None,
        demand_clamp=None,
        session_outbox_bytes: Optional[int] = None,
        columnar: bool = False,
    ) -> None:
        if expected_stages < 1:
            raise ValueError(f"expected_stages must be >= 1: {expected_stages}")
        if initial_epoch < 0:
            raise ValueError(f"initial_epoch must be >= 0: {initial_epoch}")
        if evicted_grace_cycles < 0:
            raise ValueError(
                f"evicted_grace_cycles must be >= 0: {evicted_grace_cycles}"
            )
        if rule_change_tolerance < 0:
            raise ValueError(
                f"negative rule change tolerance: {rule_change_tolerance}"
            )
        for name, value in (
            ("collect_timeout_s", collect_timeout_s),
            ("enforce_timeout_s", enforce_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        super().__init__(
            host,
            port,
            span_tracer=span_tracer,
            usage_meter=usage_meter,
            metrics=metrics,
            degradation=degradation,
            demand_clamp=demand_clamp,
            session_outbox_bytes=session_outbox_bytes,
        )
        # Boot-from-store resume floor: a controller restored from a
        # durable store starts above its last durable epoch so stage-side
        # fencing accepts its rules and discards any pre-crash stragglers.
        self.epoch = initial_epoch
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_stages = expected_stages
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = (
            enforce_timeout_s if enforce_timeout_s is not None else collect_timeout_s
        )
        self.evicted_grace_cycles = evicted_grace_cycles
        #: Ship only rules whose limit moved by more than
        #: ``rule_change_tolerance`` (relative) since the last one sent —
        #: the live counterpart of the sim's changed-only enforce ablation.
        #: Suppressed stages keep enforcing their cached rule-epoch.
        self.enforce_changed_only = enforce_changed_only
        self.rule_change_tolerance = rule_change_tolerance
        self.rules_suppressed = 0
        self.coalesce = coalesce
        #: Encoded-rule cache: stage id -> (rule-epoch, data limit,
        #: metadata limit, wire frame). The rule-epoch is the epoch at
        #: which the stage's limits last changed; the cached frame is what
        #: went on the wire then, so the changed-only diff is O(1) and
        #: needs no re-encoding.
        self._rule_frames: Dict[str, tuple] = {}
        #: Evicted-but-graced stages:
        #: id -> (job_id, data_demand, metadata_demand, epoch).
        self.departed: Dict[str, tuple] = {}
        #: Separate algorithm instance for the metadata axis when the
        #: policy differentiates: a stateful brain (PID) must not have
        #: its loop state corrupted by alternating axes through one
        #: instance. Stateless brains don't care; PADLL-style brains are
        #: driven through ``allocate_axes`` instead.
        self.metadata_algorithm = copy.deepcopy(self.algorithm)
        #: Columnar per-stage demand store (flat float64 columns, one row
        #: per session). The compute phase gathers demand and weights
        #: with fancy indexing instead of per-session list comps; replies
        #: scatter into the columns through cached row handles. The
        #: scalar session attributes stay authoritative for everything
        #: else (grace fallback, clamp scoring, tests), so the two modes
        #: are allocation-identical.
        self.columns: Optional[StageColumns] = StageColumns() if columnar else None
        # (columns generation, ok): session order still mirrors row order.
        self._order_cache: Optional[tuple] = None
        # (columns generation, policy version) -> per-row weight vector.
        self._weights_cache: Optional[tuple] = None
        if metrics is not None:
            self._m_suppressed = metrics.counter(
                "repro_rules_suppressed_total",
                "unchanged rules withheld by changed-only enforcement",
                role=self._role,
            )

    async def wait_for_stages(self, timeout_s: float = 30.0) -> None:
        """Block until every expected stage has registered."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    def _on_evicted(self, session: Session) -> None:
        if self.columns is not None:
            self.columns.evict(session.peer_id)
        if self.evicted_grace_cycles > 0:
            self.departed[session.peer_id] = (
                session.job_id,
                session.latest_data_demand,
                session.latest_metadata_demand,
                self.epoch,
            )

    async def _after_register(self, session: Session) -> None:
        self.departed.pop(session.peer_id, None)
        # A (re)joining stage may be a fresh process with no applied rule;
        # forget its cached rule so the next enforce ships one for sure.
        self._rule_frames.pop(session.peer_id, None)
        if self.columns is not None:
            # A rejoining id gets a fresh row at the tail — same position
            # its session takes in the (insertion-ordered) session dict.
            if session.peer_id in self.columns:
                self.columns.evict(session.peer_id)
            session.column_row = self.columns.register(
                session.peer_id, session.job_id
            )

    def _validate_hello(self, hello: dict) -> Optional[str]:
        stage_id = hello.get("stage_id")
        job_id = hello.get("job_id")
        if not stage_id or not job_id:
            return "register requires stage_id and job_id"
        if stage_id in self.sessions:
            return f"stage_id already registered: {stage_id}"
        return None

    def _make_session(self, hello: dict, reader, writer) -> _StageSession:
        session = _StageSession(
            hello["stage_id"], hello["job_id"], reader, writer, meter=self.meter
        )
        session.outbox.max_bytes = self.session_outbox_bytes
        return session

    @property
    def _expected(self) -> int:
        return self.expected_stages

    # -- control loop -----------------------------------------------------------
    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` back-to-back cycles; returns their records."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    def _columnar_snapshot(self, sessions: List["_StageSession"]):
        """Cycle-start row/weight snapshot, or ``None`` to run scalar.

        Taken before any I/O: mid-cycle evictions only tombstone rows
        (values stay readable), so the snapshot keeps indexing the exact
        stage set ``sessions`` froze — the same last-known-demand
        semantics as the scalar gather. Compaction (the one thing that
        renumbers rows) happens here and refreshes the session handles.
        """
        cols = self.columns
        if cols is None:
            return None
        if cols.maybe_compact():
            for s in self.sessions.values():
                s.column_row = cols.row_of(s.stage_id)
        gen = cols.generation
        order = self._order_cache
        if order is None or order[0] != gen:
            ok = cols.active_ids() == tuple(s.stage_id for s in sessions)
            self._order_cache = order = (gen, ok)
        if not order[1]:
            return None
        wkey = (gen, self.policy.version)
        weights = self._weights_cache
        if weights is None or weights[0] != wkey:
            self._weights_cache = weights = (
                wkey, self.policy.weights(cols.active_jobs())
            )
        return cols.active_rows(), weights[1]

    async def _cycle(self) -> None:
        self.epoch += 1
        epoch = self.epoch
        sessions: List[_StageSession] = list(self.sessions.values())
        snapshot = self._columnar_snapshot(sessions)
        started = time.perf_counter()
        missing_ids: Set[str] = set()
        timed_out = False
        tracer = self.tracer
        sent_at: Dict[str, float] = {}

        # ---- collect (partial on deadline, evict dead sockets) ----
        polled: List[_StageSession] = []
        with self._cpu():
            for s in sessions:
                try:
                    s.feed({"kind": "collect_req", "epoch": epoch})
                    if not self.coalesce:
                        await s.flush()
                    polled.append(s)
                    if tracer.enabled:
                        sent_at[s.stage_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    missing_ids.add(s.stage_id)
            if self.coalesce:
                alive: List[_StageSession] = []
                for s in polled:
                    try:
                        await s.flush()
                        alive.append(s)
                    except SessionClosed:
                        await self._evict(s)
                        missing_ids.add(s.stage_id)
                polled = alive

        columns = self.columns

        async def read_reply(s: _StageSession) -> None:
            message = await s.expect("metrics_reply", epoch)
            data = float(message["data_iops"])
            meta = float(message["metadata_iops"])
            s.latest_data_demand = data
            s.latest_metadata_demand = meta
            if columns is not None and s.column_row is not None:
                columns.data[s.column_row] = data
                columns.meta[s.column_row] = meta
            if tracer.enabled:
                t0 = sent_at.get(s.stage_id, started)
                tracer.for_track(s.stage_id).emit(
                    "collect_rpc", t0, tracer.now() - t0,
                    parent="collect", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            polled, read_reply, self._effective_collect_timeout()
        )
        timed_out |= phase_timed_out
        for s in missing:
            missing_ids.add(s.stage_id)
            if not s.connected:
                await self._evict(s)
        t_collect = time.perf_counter() - started

        # ---- compute (the real PSFA; absent stages at last-known demand) ----
        compute_started = time.perf_counter()
        with self._cpu():
            clamp = self.demand_clamp

            def clamped_axes(stage_id: str, data: float, meta: float):
                # Trust scoring: a reported demand is only believed up to
                # a multiple of what the stage has been using. The clamp
                # tracks *total* demand, so a trimmed report shrinks both
                # axes by the same ratio (the liar's split is preserved,
                # its magnitude is not).
                if clamp is None:
                    return data, meta
                total = data + meta
                believed = clamp.clamp(stage_id, total)
                if total > 0.0 and believed < total:
                    ratio = believed / total
                    return data * ratio, meta * ratio
                return data, meta

            if snapshot is not None and clamp is None and not self.departed:
                # Columnar gather: demand and weights come straight out
                # of the cycle-start row snapshot — no per-session Python.
                # Identical inputs to the scalar path (replies wrote both
                # the columns and the session attributes).
                rows, weights = snapshot
                data_demands = columns.data[rows]
                metadata_demands = columns.meta[rows]
            else:
                job_ids = [s.job_id for s in sessions]
                data_demands = []
                metadata_demands = []
                for s in sessions:
                    data, meta = clamped_axes(
                        s.stage_id, s.latest_data_demand, s.latest_metadata_demand
                    )
                    data_demands.append(data)
                    metadata_demands.append(meta)
                # Graced departures still hold their share (they are out
                # there enforcing their last rule); expired entries are
                # forgotten.
                registered = set(self.sessions)
                for stage_id in list(self.departed):
                    job_id, data, meta, evicted_epoch = self.departed[stage_id]
                    if (
                        stage_id in registered
                        or epoch - evicted_epoch > self.evicted_grace_cycles
                    ):
                        del self.departed[stage_id]
                        continue
                    job_ids.append(job_id)
                    data, meta = clamped_axes(stage_id, data, meta)
                    data_demands.append(data)
                    metadata_demands.append(meta)
                weights = self.policy.weights(job_ids)
            if self.policy.differentiated:
                data_arr = np.array(data_demands)
                meta_arr = np.array(metadata_demands)
                axes = getattr(self.algorithm, "allocate_axes", None)
                if axes is not None:
                    data_result, meta_result = axes(
                        data_arr,
                        meta_arr,
                        weights,
                        self.policy.allocatable_iops,
                        self.policy.allocatable_metadata_iops,
                    )
                else:
                    data_result = self.algorithm.allocate(
                        data_arr, weights, self.policy.allocatable_iops
                    )
                    meta_result = self.metadata_algorithm.allocate(
                        meta_arr, weights, self.policy.allocatable_metadata_iops
                    )
                limits = data_result.allocations[: len(sessions)]
                meta_limits = meta_result.allocations[: len(sessions)]
            else:
                result = self.algorithm.allocate(
                    np.array(data_demands) + np.array(metadata_demands),
                    weights,
                    self.policy.allocatable_iops,
                )
                limits = result.allocations[: len(sessions)]
                meta_limits = None
            self.last_allocations = {
                s.stage_id: float(limit) for s, limit in zip(sessions, limits)
            }
            if clamp is not None:
                for i, (s, limit) in enumerate(zip(sessions, limits)):
                    granted = float(limit)
                    if meta_limits is not None:
                        granted += float(meta_limits[i])
                    clamp.observe(s.stage_id, s.latest_demand, granted)
        t_compute = time.perf_counter() - compute_started

        # ---- enforce ----
        enforce_started = time.perf_counter()
        ruled: List[_StageSession] = []
        with self._cpu():
            changed_only = self._effective_changed_only()
            tolerance = self.rule_change_tolerance
            meta_iter = (
                meta_limits if meta_limits is not None else [None] * len(sessions)
            )
            for s, limit, meta_limit in zip(sessions, limits, meta_iter):
                if not s.connected:
                    continue
                limit = float(limit)
                if meta_limit is not None:
                    meta_limit = float(meta_limit)
                cached = self._rule_frames.get(s.stage_id)
                if changed_only and cached is not None:
                    data_unchanged = abs(limit - cached[1]) <= (
                        tolerance * max(abs(cached[1]), 1e-9)
                    )
                    prev_meta = cached[2]
                    meta_unchanged = (
                        meta_limit is None and prev_meta is None
                    ) or (
                        meta_limit is not None
                        and prev_meta is not None
                        and abs(meta_limit - prev_meta)
                        <= tolerance * max(abs(prev_meta), 1e-9)
                    )
                    if data_unchanged and meta_unchanged:
                        # Unchanged within tolerance on every axis: the
                        # stage keeps enforcing the cached rule-epoch; no
                        # frame on the wire, no ack expected.
                        self.rules_suppressed += 1
                        if self.metrics is not None:
                            self._m_suppressed.inc()
                        continue
                message = {
                    "kind": "rule",
                    "epoch": epoch,
                    "stage_id": s.stage_id,
                    "data_iops_limit": limit,
                }
                if meta_limit is not None:
                    # A plain-"binary" or old-JSON peer simply never sees
                    # this key and defaults the axis to unlimited.
                    message["metadata_iops_limit"] = meta_limit
                frame = encode(message, s.codec)
                try:
                    # Rules are sheddable under outbox pressure: the next
                    # epoch supersedes them, and a shed rule surfaces as a
                    # missing ack the degraded path already absorbs.
                    s.feed_frame(frame, sheddable=True)
                    if not self.coalesce:
                        await s.flush()
                    self._rule_frames[s.stage_id] = (
                        epoch, limit, meta_limit, frame
                    )
                    ruled.append(s)
                    if tracer.enabled:
                        sent_at[s.stage_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    missing_ids.add(s.stage_id)
            if self.coalesce:
                alive = []
                for s in ruled:
                    try:
                        await s.flush()
                        alive.append(s)
                    except SessionClosed:
                        await self._evict(s)
                        missing_ids.add(s.stage_id)
                ruled = alive

        async def read_ack(s: _StageSession) -> None:
            await s.expect("rule_ack", epoch)
            if tracer.enabled:
                t0 = sent_at.get(s.stage_id, enforce_started)
                tracer.for_track(s.stage_id).emit(
                    "enforce_rpc", t0, tracer.now() - t0,
                    parent="enforce", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            ruled, read_ack, self.enforce_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            missing_ids.add(s.stage_id)
            if not s.connected:
                await self._evict(s)
        t_enforce = time.perf_counter() - enforce_started

        self._record_cycle(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(sessions),
                n_missing=len(missing_ids),
                timed_out=timed_out,
            ),
            started,
        )


class _AggregatorSession(Session):
    """Server-side state for one registered aggregator."""

    def __init__(
        self, aggregator_id, stage_ids, job_ids, reader, writer, meter=None
    ) -> None:
        super().__init__(aggregator_id, reader, writer, meter=meter)
        self.stage_ids = list(stage_ids)
        self.job_ids = list(job_ids)
        #: Advertised stage-facing listen address (None = not advertised;
        #: the aggregator is then invisible to topology broadcasts).
        self.listen_host: Optional[str] = None
        self.listen_port: Optional[int] = None
        #: Stages the aggregator itself reported missing last cycle.
        self.last_missing = 0
        #: Consecutive collect epochs without a reply (health signal).
        self.missed_epochs = 0

    @property
    def aggregator_id(self) -> str:
        return self.peer_id


class LiveHierGlobalController(_LiveControllerBase):
    """Hierarchical-design global controller over real TCP.

    Talks only to :class:`~repro.live.aggregator_server.LiveAggregator`
    instances; runs the same PSFA computation over the union of their
    partitions and ships per-aggregator rule batches — the live
    counterpart of the paper's Fig. 3 deployment. ``n_missing`` on a
    degraded cycle counts *stages* without fresh metrics: every stage
    behind an absent aggregator, orphaned stages awaiting re-home, plus
    stages the aggregators themselves reported missing.

    Aggregator fault tolerance (paper §VI): the controller tracks every
    aggregator's health over two signals — a dead socket (EOF/reset) and
    ``dead_after_missed`` consecutive collect epochs without a reply (a
    stalled-but-connected aggregator). A dead aggregator's stages become
    *orphans*: still enforcing their last rules, so their last-known
    demand stays in the PSFA input (their share is reserved, never
    redistributed, and epoch fencing on the stage side discards any late
    rules from the dead aggregator). Aggregators advertise their listen
    address at registration; on every membership change the controller
    broadcasts a ``topology`` frame so each aggregator re-arms its stages
    with ``rehome`` alternates, and adoption announcements
    (``partition_update``, an out-of-band frame) move orphans onto their
    new home — observable as ``stage_rehomes_total`` /
    ``orphaned_stages`` metrics and ``aggregator_dead``/``rehome`` span
    events on the controller track.
    """

    _register_kind = "register_aggregator"

    _role = "hier-global"

    def __init__(
        self,
        policy: QoSPolicy,
        expected_aggregators: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        dead_after_missed: Optional[int] = None,
        enforce_changed_only: bool = False,
        rule_change_tolerance: float = 0.0,
        coalesce: bool = True,
        initial_epoch: int = 0,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
        degradation=None,
        demand_clamp=None,
        session_outbox_bytes: Optional[int] = None,
        columnar: bool = False,
    ) -> None:
        if initial_epoch < 0:
            raise ValueError(f"initial_epoch must be >= 0: {initial_epoch}")
        if expected_aggregators < 1:
            raise ValueError(
                f"expected_aggregators must be >= 1: {expected_aggregators}"
            )
        if dead_after_missed is not None and dead_after_missed < 1:
            raise ValueError(
                f"dead_after_missed must be >= 1: {dead_after_missed}"
            )
        if rule_change_tolerance < 0:
            raise ValueError(
                f"negative rule change tolerance: {rule_change_tolerance}"
            )
        for name, value in (
            ("collect_timeout_s", collect_timeout_s),
            ("enforce_timeout_s", enforce_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        super().__init__(
            host,
            port,
            span_tracer=span_tracer,
            usage_meter=usage_meter,
            metrics=metrics,
            degradation=degradation,
            demand_clamp=demand_clamp,
            session_outbox_bytes=session_outbox_bytes,
        )
        # Boot-from-store resume floor (see LiveGlobalController).
        self.epoch = initial_epoch
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_aggregators = expected_aggregators
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = (
            enforce_timeout_s if enforce_timeout_s is not None else collect_timeout_s
        )
        self.dead_after_missed = dead_after_missed
        #: Batch-entry changed-only suppression: unchanged per-stage rules
        #: are left out of the ``rule_batch`` (the batch itself still goes
        #: out — its ack paces the enforce phase).
        self.enforce_changed_only = enforce_changed_only
        self.rule_change_tolerance = rule_change_tolerance
        self.rules_suppressed = 0
        self.coalesce = coalesce
        #: Last shipped limits per stage id:
        #: (rule-epoch, data limit, metadata limit | None).
        self._last_rule: Dict[str, tuple] = {}
        #: Last-known per-axis demand per stage id, as a
        #: ``(data_iops, metadata_iops)`` tuple — survives its aggregator
        #: (a dead subtree's fallback must keep the axis split, not a
        #: summed scalar). In columnar mode the store is
        #: :attr:`columns` instead: aggregator replies scatter into flat
        #: float64 columns in one vectorized write per reply, and the
        #: compute gather is a fancy-index over the concatenated
        #: partition instead of a per-stage dict walk.
        self.latest_demand_of: Dict[str, tuple] = {}
        self.columns: Optional[StageColumns] = StageColumns() if columnar else None
        #: Metadata-axis twin of ``algorithm`` (see LiveGlobalController).
        self.metadata_algorithm = copy.deepcopy(self.algorithm)
        #: Stages whose aggregator died: id -> job id. Cleared on re-home.
        self.orphans: Dict[str, str] = {}
        #: Epoch at which each current orphan lost its home.
        self.orphaned_at_epoch: Dict[str, int] = {}
        #: Orphans moved onto a live aggregator (completed re-homes).
        self.rehomes = 0
        #: Aggregators declared dead via the missed-epoch health check.
        self.aggregators_declared_dead = 0
        self._topology_dirty = False
        if metrics is not None:
            self._m_rehomes = metrics.counter(
                "repro_stage_rehomes_total",
                "orphaned stages adopted by a surviving aggregator",
                role=self._role,
            )
            self._m_orphans = metrics.gauge(
                "repro_orphaned_stages",
                "stages currently without a live aggregator",
                role=self._role,
            )
            self._m_suppressed = metrics.counter(
                "repro_rules_suppressed_total",
                "unchanged rules withheld by changed-only enforcement",
                role=self._role,
            )

    async def wait_for_aggregators(self, timeout_s: float = 30.0) -> None:
        """Block until every expected aggregator has registered."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    def _validate_hello(self, hello: dict) -> Optional[str]:
        aggregator_id = hello.get("aggregator_id")
        stage_ids = hello.get("stage_ids")
        job_ids = hello.get("job_ids")
        if not aggregator_id or stage_ids is None or job_ids is None:
            return "register_aggregator requires aggregator_id, stage_ids, job_ids"
        if len(stage_ids) != len(job_ids):
            return "stage_ids and job_ids lengths differ"
        if aggregator_id in self.sessions:
            return f"aggregator_id already registered: {aggregator_id}"
        return None

    def _make_session(self, hello: dict, reader, writer) -> _AggregatorSession:
        session = _AggregatorSession(
            hello["aggregator_id"],
            hello["stage_ids"],
            hello["job_ids"],
            reader,
            writer,
            meter=self.meter,
        )
        session.outbox.max_bytes = self.session_outbox_bytes
        if hello.get("host") is not None and hello.get("port") is not None:
            session.listen_host = str(hello["host"])
            session.listen_port = int(hello["port"])
        # Adoption announcements arrive between cycles; keep them out of
        # the phase inboxes so they are never drained as stale.
        session.oob_kinds = frozenset({"partition_update"})
        return session

    @property
    def _expected(self) -> int:
        return self.expected_aggregators

    @property
    def n_stages(self) -> int:
        return sum(len(s.stage_ids) for s in self.sessions.values())

    # -- membership / re-homing ----------------------------------------------
    def _on_evicted(self, session: Session) -> None:
        """A dead aggregator orphans every stage no other session owns."""
        owned_elsewhere = set()
        for other in self.sessions.values():
            owned_elsewhere.update(other.stage_ids)
        n_orphaned = 0
        for stage_id, job_id in zip(session.stage_ids, session.job_ids):
            # An in-flight batch may have died with the socket; forget the
            # diff record so the next enforce re-ships these rules.
            self._last_rule.pop(stage_id, None)
            if stage_id in owned_elsewhere:
                continue
            self.orphans[stage_id] = job_id
            self.orphaned_at_epoch.setdefault(stage_id, self.epoch)
            n_orphaned += 1
        self._topology_dirty = True
        if self.metrics is not None:
            self._m_orphans.set(len(self.orphans))
        if self.tracer.enabled:
            now = self.tracer.now()
            self.tracer.emit(
                "aggregator_dead", now, 0.0,
                aggregator=session.peer_id, orphans=n_orphaned,
            )

    def _adopt(self, session: _AggregatorSession, stage_id: str, job_id: str) -> None:
        """Home ``stage_id`` on ``session``, releasing any prior owner."""
        was_homed_elsewhere = False
        for other in self.sessions.values():
            if other is session or stage_id not in other.stage_ids:
                continue
            idx = other.stage_ids.index(stage_id)
            other.stage_ids.pop(idx)
            other.job_ids.pop(idx)
            was_homed_elsewhere = True
        was_orphan = stage_id in self.orphans
        self.orphans.pop(stage_id, None)
        self.orphaned_at_epoch.pop(stage_id, None)
        # A re-homed stage may be a restarted process with no applied
        # rule; make sure the next enforce ships one.
        self._last_rule.pop(stage_id, None)
        if stage_id not in session.stage_ids:
            session.stage_ids.append(stage_id)
            session.job_ids.append(job_id)
        if was_orphan or was_homed_elsewhere:
            self.rehomes += 1
            if self.metrics is not None:
                self._m_rehomes.inc()
                self._m_orphans.set(len(self.orphans))
            if self.tracer.enabled:
                now = self.tracer.now()
                self.tracer.emit(
                    "rehome", now, 0.0, stage=stage_id, to=session.peer_id
                )

    async def _after_register(self, session: Session) -> None:
        """A (re)joining aggregator may be adopting orphans; re-arm all."""
        for stage_id, job_id in zip(
            list(session.stage_ids), list(session.job_ids)
        ):
            self._adopt(session, stage_id, job_id)
        await self._broadcast_topology()

    def _drain_partition_updates(self) -> None:
        """Apply adoption announcements queued since the last cycle."""
        for session in list(self.sessions.values()):
            pending, session.oob = session.oob, []
            for message in pending:
                for entry in message.get("added", []):
                    self._adopt(session, entry["stage_id"], entry["job_id"])

    async def _broadcast_topology(self) -> None:
        """Tell every aggregator who its live peers are (rehome targets)."""
        self._topology_dirty = False
        entries = [
            {
                "aggregator_id": s.aggregator_id,
                "host": s.listen_host,
                "port": s.listen_port,
            }
            for s in self.sessions.values()
            if s.listen_host is not None
        ]
        for session in list(self.sessions.values()):
            try:
                await session.send({"kind": "topology", "aggregators": entries})
            except SessionClosed:
                # Its death is handled by the cycle path; don't recurse.
                pass

    async def _declare_dead(self, session: _AggregatorSession) -> None:
        """Health verdict: too many missed epochs — cut the socket loose."""
        self.aggregators_declared_dead += 1
        if session.writer.transport is not None:
            session.writer.transport.abort()
        await self._evict(session)

    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` back-to-back cycles; returns their records."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    async def _cycle(self) -> None:
        # Membership first: adoptions announced since the last cycle move
        # orphans onto their new homes, and a changed tree is re-broadcast
        # so every stage's alternate list stays current.
        self._drain_partition_updates()
        if self._topology_dirty:
            await self._broadcast_topology()
        self.epoch += 1
        epoch = self.epoch
        sessions: List[_AggregatorSession] = [
            self.sessions[a] for a in sorted(self.sessions)
        ]
        started = time.perf_counter()
        n_missing = 0
        timed_out = False
        tracer = self.tracer
        sent_at: Dict[str, float] = {}

        # ---- collect (via aggregators) ----
        polled: List[_AggregatorSession] = []
        absent: List[_AggregatorSession] = []
        with self._cpu():
            for s in sessions:
                try:
                    s.feed({"kind": "agg_collect_req", "epoch": epoch})
                    if not self.coalesce:
                        await s.flush()
                    polled.append(s)
                    if tracer.enabled:
                        sent_at[s.aggregator_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    absent.append(s)
            if self.coalesce:
                alive: List[_AggregatorSession] = []
                for s in polled:
                    try:
                        await s.flush()
                        alive.append(s)
                    except SessionClosed:
                        await self._evict(s)
                        absent.append(s)
                polled = alive

        columns = self.columns

        async def read_agg_reply(s: _AggregatorSession) -> None:
            m = await s.expect("agg_metrics_reply", epoch)
            data = m.get("data_demands")
            meta = m.get("metadata_demands")
            if columns is not None:
                # One vectorized scatter per reply: the partition's row
                # map is cached inside the columns (same ids every
                # cycle), so no per-stage dict writes happen here.
                sids = m["stage_ids"]
                if data is not None and meta is not None:
                    columns.observe_many(sids, data, meta)
                else:
                    # Pre-rev-2 aggregator: only the summed vector
                    # exists, so the split is unknowable — book it all
                    # as data.
                    columns.observe_many(
                        sids, m["demands"], np.zeros(len(sids))
                    )
            elif data is not None and meta is not None:
                self.latest_demand_of.update(
                    (sid, (float(d), float(md)))
                    for sid, d, md in zip(m["stage_ids"], data, meta)
                )
            else:
                # Pre-rev-2 aggregator: only the summed vector exists, so
                # the split is unknowable — book it all as data.
                self.latest_demand_of.update(
                    (sid, (float(d), 0.0))
                    for sid, d in zip(m["stage_ids"], m["demands"])
                )
            # Missing = stages the aggregator flagged as silent, plus any
            # registered stages it evicted and no longer reports at all.
            s.last_missing = int(m.get("n_missing", 0)) + max(
                0, len(s.stage_ids) - len(m["stage_ids"])
            )
            if tracer.enabled:
                t0 = sent_at.get(s.aggregator_id, started)
                tracer.for_track(s.aggregator_id).emit(
                    "collect_rpc", t0, tracer.now() - t0,
                    parent="collect", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            polled, read_agg_reply, self._effective_collect_timeout()
        )
        timed_out |= phase_timed_out
        for s in missing:
            absent.append(s)
            if not s.connected:
                await self._evict(s)
        # Health: consecutive silent epochs mark a connected-but-dead
        # aggregator (stall, partition) for declaration.
        for s in sessions:
            if s in absent:
                s.missed_epochs += 1
            else:
                s.missed_epochs = 0
        if self.dead_after_missed is not None:
            for s in sessions:
                if (
                    s.missed_epochs >= self.dead_after_missed
                    and self.sessions.get(s.aggregator_id) is s
                ):
                    await self._declare_dead(s)
        # Stages without fresh metrics: the absent aggregators' partitions
        # (dedup'd against orphans below — an aggregator evicted this very
        # cycle already turned its stages into orphans) plus counts the
        # live aggregators reported themselves.
        unreported: Set[str] = set()
        for s in sessions:
            if s in absent:
                unreported.update(s.stage_ids)
            else:
                n_missing += s.last_missing
        t_collect = time.perf_counter() - started

        # ---- compute (PSFA over all partitions, last-known for absent;
        # orphans keep their reserved share so survivors are never
        # over-allocated while a dead aggregator's stages still enforce
        # their last rules) ----
        compute_started = time.perf_counter()
        with self._cpu():
            clamp = self.demand_clamp
            stage_ids: List[str] = []
            job_ids: List[str] = []

            def raw_axes(stage_id: str):
                if columns is not None:
                    return columns.axes(stage_id)
                return self.latest_demand_of.get(stage_id, (0.0, 0.0))

            def believed(stage_id: str):
                data, meta = raw_axes(stage_id)
                if clamp is None:
                    return data, meta
                # The clamp scores total demand; a trimmed report shrinks
                # both axes by the same ratio (split preserved).
                total = data + meta
                trusted = clamp.clamp(stage_id, total)
                if total > 0.0 and trusted < total:
                    ratio = trusted / total
                    return data * ratio, meta * ratio
                return data, meta

            for s in sessions:
                if self.sessions.get(s.aggregator_id) is not s:
                    continue  # declared dead above; its stages are orphans
                stage_ids.extend(s.stage_ids)
                job_ids.extend(s.job_ids)
            homed = set(stage_ids)
            orphan_ids = [o for o in sorted(self.orphans) if o not in homed]
            # Orphan reservations run through the same clamp: an orphaned
            # liar would otherwise hold its absurd last report against
            # the whole budget until re-homed.
            for stage_id in orphan_ids:
                stage_ids.append(stage_id)
                job_ids.append(self.orphans[stage_id])
            if columns is not None and clamp is None:
                # Columnar gather over the concatenated partitions: the
                # row map is cached per id tuple, the demand pull is two
                # fancy-indexes. Never-reported stages auto-register as
                # zero rows — the dict path's (0.0, 0.0) default.
                rows = columns.rows_for(tuple(stage_ids))
                data_demands = columns.data[rows]
                metadata_demands = columns.meta[rows]
            else:
                data_demands = []
                metadata_demands = []
                for stage_id in stage_ids:
                    data, meta = believed(stage_id)
                    data_demands.append(data)
                    metadata_demands.append(meta)
            weights = self.policy.weights(job_ids)
            if self.policy.differentiated:
                data_arr = np.array(data_demands)
                meta_arr = np.array(metadata_demands)
                axes = getattr(self.algorithm, "allocate_axes", None)
                if axes is not None:
                    data_result, meta_result = axes(
                        data_arr,
                        meta_arr,
                        weights,
                        self.policy.allocatable_iops,
                        self.policy.allocatable_metadata_iops,
                    )
                else:
                    data_result = self.algorithm.allocate(
                        data_arr, weights, self.policy.allocatable_iops
                    )
                    meta_result = self.metadata_algorithm.allocate(
                        meta_arr, weights, self.policy.allocatable_metadata_iops
                    )
                limit_of = dict(zip(stage_ids, data_result.allocations))
                meta_limit_of = dict(zip(stage_ids, meta_result.allocations))
            else:
                result = self.algorithm.allocate(
                    np.array(data_demands) + np.array(metadata_demands),
                    weights,
                    self.policy.allocatable_iops,
                )
                limit_of = dict(zip(stage_ids, result.allocations))
                meta_limit_of = None
            self.last_allocations = {
                sid: float(limit) for sid, limit in limit_of.items()
            }
            if clamp is not None:
                for sid, limit in limit_of.items():
                    granted = float(limit)
                    if meta_limit_of is not None:
                        granted += float(meta_limit_of[sid])
                    data, meta = raw_axes(sid)
                    clamp.observe(sid, data + meta, granted)
        n_missing += len((unreported - homed) | set(orphan_ids))
        t_compute = time.perf_counter() - compute_started

        # ---- enforce (rule batches) ----
        enforce_started = time.perf_counter()
        batched: List[_AggregatorSession] = []
        with self._cpu():
            changed_only = self._effective_changed_only()
            tolerance = self.rule_change_tolerance
            last_rule = self._last_rule
            for s in sessions:
                if not s.connected:
                    continue
                rules = []
                # Adopted mid-cycle stages (not in limit_of yet) wait for
                # the next cycle's rules.
                for stage_id in s.stage_ids:
                    if stage_id not in limit_of:
                        continue
                    limit = float(limit_of[stage_id])
                    meta_limit = (
                        float(meta_limit_of[stage_id])
                        if meta_limit_of is not None
                        else None
                    )
                    if changed_only:
                        prev = last_rule.get(stage_id)
                        if prev is not None:
                            data_unchanged = abs(limit - prev[1]) <= (
                                tolerance * max(abs(prev[1]), 1e-9)
                            )
                            prev_meta = prev[2]
                            meta_unchanged = (
                                meta_limit is None and prev_meta is None
                            ) or (
                                meta_limit is not None
                                and prev_meta is not None
                                and abs(meta_limit - prev_meta)
                                <= tolerance * max(abs(prev_meta), 1e-9)
                            )
                            if data_unchanged and meta_unchanged:
                                # Unchanged entry: left out of the batch;
                                # the stage keeps its cached rule-epoch.
                                self.rules_suppressed += 1
                                if self.metrics is not None:
                                    self._m_suppressed.inc()
                                continue
                    rule = {"stage_id": stage_id, "data_iops_limit": limit}
                    if meta_limit is not None:
                        rule["metadata_iops_limit"] = meta_limit
                    rules.append(rule)
                try:
                    # Sheddable like flat-plane rules: the next epoch's
                    # batch supersedes this one, and the missing batch_ack
                    # resolves through the enforce deadline.
                    s.feed(
                        {"kind": "rule_batch", "epoch": epoch, "rules": rules},
                        sheddable=True,
                    )
                    if not self.coalesce:
                        await s.flush()
                    # Commit the diff record only for rules that actually
                    # went on the wire (an evicted batch must re-ship).
                    for rule in rules:
                        last_rule[rule["stage_id"]] = (
                            epoch,
                            rule["data_iops_limit"],
                            rule.get("metadata_iops_limit"),
                        )
                    batched.append(s)
                    if tracer.enabled:
                        sent_at[s.aggregator_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
            if self.coalesce:
                alive = []
                for s in batched:
                    try:
                        await s.flush()
                        alive.append(s)
                    except SessionClosed:
                        await self._evict(s)
                batched = alive

        async def read_batch_ack(s: _AggregatorSession) -> None:
            await s.expect("batch_ack", epoch)
            if tracer.enabled:
                t0 = sent_at.get(s.aggregator_id, enforce_started)
                tracer.for_track(s.aggregator_id).emit(
                    "enforce_rpc", t0, tracer.now() - t0,
                    parent="enforce", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            batched, read_batch_ack, self.enforce_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            if not s.connected:
                await self._evict(s)
        t_enforce = time.perf_counter() - enforce_started

        self._record_cycle(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(stage_ids),
                n_missing=n_missing,
                timed_out=timed_out,
            ),
            started,
        )
