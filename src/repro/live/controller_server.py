"""Live global controller: an asyncio TCP server running control cycles.

The same collect → compute → enforce loop as the simulated
:class:`~repro.core.controller.GlobalController`, timed with the
wall clock and executing the *same* PSFA implementation
(:class:`repro.core.algorithms.psfa.PSFA`) over the collected demand.

Failure semantics match the simulated plane (paper §VI dependability):

* ``collect_timeout_s`` / ``enforce_timeout_s`` put a deadline on each
  reply-gathering phase. A cycle that misses replies proceeds on partial
  metrics — absent stages fall back to their last-known demand — and
  records the damage in :class:`~repro.core.cycle.ControlCycle` via the
  ``n_missing`` / ``timed_out`` fields.
* A session whose socket dies (EOF, reset) is *evicted* instead of
  poisoning the cycle; even without a timeout configured, the cycle
  completes over the survivors rather than hanging forever.
* Evicted stage ids become free again, so a restarted stage re-registers
  (see :class:`~repro.live.stage_client.LiveVirtualStage`'s reconnect
  loop) and is picked up by the next cycle.

Observability (``repro.obs``): pass ``span_tracer`` to record every
cycle as a ``cycle`` span with ``collect``/``compute``/``enforce``
children plus per-session RPC spans; pass ``usage_meter`` to charge
framed bytes and synchronous CPU sections to this controller's Tables
II–IV row; pass ``metrics`` (a registry) for Prometheus counters and
latency histograms.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.cycle import ControlCycle
from repro.core.policies import QoSPolicy
from repro.live.protocol import ProtocolError, read_message, write_message
from repro.live.sessions import Session, SessionClosed, gather_phase
from repro.obs.spans import NullSpanTracer

__all__ = ["LiveGlobalController", "LiveHierGlobalController"]


class _StageSession(Session):
    """Server-side state for one connected stage."""

    def __init__(self, stage_id: str, job_id: str, reader, writer, meter=None) -> None:
        super().__init__(stage_id, reader, writer, meter=meter)
        self.job_id = job_id
        self.latest_demand = 0.0

    @property
    def stage_id(self) -> str:
        return self.peer_id


class _LiveControllerBase:
    """Registration, eviction, and teardown shared by both designs."""

    #: ``kind`` a valid hello frame must carry (set by subclasses).
    _register_kind = "register"

    #: Role label used on metric series ("global" | "hier-global").
    _role = "global"

    def __init__(
        self,
        host: str,
        port: int,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
    ) -> None:
        self.host = host
        self.port = port
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.meter = usage_meter
        self.metrics = metrics
        self.sessions: Dict[str, Session] = {}
        self.cycles: List[ControlCycle] = []
        self.epoch = 0
        #: Sessions evicted because their socket died mid-cycle.
        self.evictions = 0
        #: Registrations rejected (duplicate id, malformed hello).
        self.registrations_rejected = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()
        # Instruments resolved once — registry lookups (label-key sort +
        # dict walk) are too slow for a per-cycle hot path.
        if metrics is not None:
            role = self._role
            self._m_cycles = metrics.counter(
                "repro_cycles_total", "control cycles completed", role=role
            )
            self._m_degraded = metrics.counter(
                "repro_degraded_cycles_total",
                "cycles run on partial metrics or past a deadline",
                role=role,
            )
            self._m_missing = metrics.counter(
                "repro_missing_replies_total",
                "child replies missing across cycles",
                role=role,
            )
            self._m_sessions = metrics.gauge(
                "repro_sessions", "currently registered children", role=role
            )
            self._m_cycle_seconds = metrics.histogram(
                "repro_cycle_seconds", "end-to-end control cycle latency", role=role
            )
            self._m_phase_seconds = {
                phase: metrics.histogram(
                    "repro_phase_seconds",
                    "per-phase control cycle latency",
                    role=role,
                    phase=phase,
                )
                for phase in ("collect", "compute", "enforce")
            }
            self._m_evictions = metrics.counter(
                "repro_evictions_total",
                "sessions dropped after their socket died",
                role=role,
            )

    def _cpu(self):
        """CPU-attribution context for synchronous critical sections."""
        return self.meter.cpu() if self.meter is not None else contextlib.nullcontext()

    def _record_cycle(self, cycle: ControlCycle, started: float) -> None:
        """Append the record and emit its spans/metrics (obs enabled)."""
        self.cycles.append(cycle)
        tracer = self.tracer
        if tracer.enabled:
            t = started
            for phase in ("collect", "compute", "enforce"):
                dur = cycle.phase(phase)
                tracer.emit(phase, t, dur, parent="cycle", epoch=cycle.epoch)
                t += dur
            tracer.emit(
                "cycle",
                started,
                cycle.total_s,
                epoch=cycle.epoch,
                n_stages=cycle.n_stages,
                n_missing=cycle.n_missing,
                timed_out=cycle.timed_out,
            )
        if self.metrics is not None:
            self._m_cycles.inc()
            if cycle.degraded:
                self._m_degraded.inc()
            if cycle.n_missing:
                self._m_missing.inc(cycle.n_missing)
            self._m_sessions.set(len(self.sessions))
            self._m_cycle_seconds.observe(cycle.total_s)
            for phase in ("collect", "compute", "enforce"):
                self._m_phase_seconds[phase].observe(cycle.phase(phase))

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start listening; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Tell children to stop, flush the frames, and close the server."""
        for session in list(self.sessions.values()):
            try:
                await session.send({"kind": "shutdown"})
            except SessionClosed:
                pass
            await session.close()
        self.sessions.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def stale_messages(self) -> int:
        """Frames drained as stale across all live sessions."""
        return sum(s.stale_messages for s in self.sessions.values())

    # -- registration -------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except (asyncio.IncompleteReadError, ProtocolError, ConnectionError, OSError):
            writer.close()
            return
        if hello.get("kind") != self._register_kind:
            writer.close()
            return
        error = self._validate_hello(hello)
        if error is not None:
            await self._reject(writer, error)
            return
        session = self._make_session(hello, reader, writer)
        self.sessions[session.peer_id] = session
        await write_message(writer, {"kind": "registered"})
        session.start()
        if len(self.sessions) >= self._expected:
            self._all_registered.set()
        # The controller drives all further I/O through the session's
        # frame pump; the handler returns and the streams stay owned by
        # the session.

    async def _reject(self, writer, reason: str) -> None:
        """Refuse a registration: error reply, then close the connection."""
        self.registrations_rejected += 1
        try:
            await write_message(
                writer, {"kind": "register_error", "reason": reason}
            )
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _evict(self, session: Session) -> None:
        """Drop a dead session so its id can register again."""
        if self.sessions.get(session.peer_id) is session:
            del self.sessions[session.peer_id]
            self.evictions += 1
            if self.metrics is not None:
                self._m_evictions.inc()
        await session.close()

    # Subclass hooks ---------------------------------------------------------
    def _validate_hello(self, hello: dict) -> Optional[str]:
        raise NotImplementedError

    def _make_session(self, hello: dict, reader, writer) -> Session:
        raise NotImplementedError

    @property
    def _expected(self) -> int:
        raise NotImplementedError


class LiveGlobalController(_LiveControllerBase):
    """Flat-design controller over real TCP connections.

    Usage::

        ctrl = LiveGlobalController(policy, expected_stages=50)
        await ctrl.start()                 # begins listening; port assigned
        ... stages connect ...
        await ctrl.wait_for_stages()
        cycles = await ctrl.run_cycles(20)
        await ctrl.shutdown()

    ``collect_timeout_s`` / ``enforce_timeout_s`` bound the collect and
    enforce phases; ``enforce_timeout_s`` defaults to the collect value.
    """

    _register_kind = "register"

    def __init__(
        self,
        policy: QoSPolicy,
        expected_stages: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
    ) -> None:
        if expected_stages < 1:
            raise ValueError(f"expected_stages must be >= 1: {expected_stages}")
        for name, value in (
            ("collect_timeout_s", collect_timeout_s),
            ("enforce_timeout_s", enforce_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        super().__init__(
            host,
            port,
            span_tracer=span_tracer,
            usage_meter=usage_meter,
            metrics=metrics,
        )
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_stages = expected_stages
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = (
            enforce_timeout_s if enforce_timeout_s is not None else collect_timeout_s
        )

    async def wait_for_stages(self, timeout_s: float = 30.0) -> None:
        """Block until every expected stage has registered."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    def _validate_hello(self, hello: dict) -> Optional[str]:
        stage_id = hello.get("stage_id")
        job_id = hello.get("job_id")
        if not stage_id or not job_id:
            return "register requires stage_id and job_id"
        if stage_id in self.sessions:
            return f"stage_id already registered: {stage_id}"
        return None

    def _make_session(self, hello: dict, reader, writer) -> _StageSession:
        return _StageSession(
            hello["stage_id"], hello["job_id"], reader, writer, meter=self.meter
        )

    @property
    def _expected(self) -> int:
        return self.expected_stages

    # -- control loop -----------------------------------------------------------
    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` back-to-back cycles; returns their records."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    async def _cycle(self) -> None:
        self.epoch += 1
        epoch = self.epoch
        sessions: List[_StageSession] = list(self.sessions.values())
        started = time.perf_counter()
        missing_ids: Set[str] = set()
        timed_out = False
        tracer = self.tracer
        sent_at: Dict[str, float] = {}

        # ---- collect (partial on deadline, evict dead sockets) ----
        polled: List[_StageSession] = []
        with self._cpu():
            for s in sessions:
                try:
                    await s.send({"kind": "collect_req", "epoch": epoch})
                    polled.append(s)
                    if tracer.enabled:
                        sent_at[s.stage_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    missing_ids.add(s.stage_id)

        async def read_reply(s: _StageSession) -> None:
            message = await s.expect("metrics_reply", epoch)
            s.latest_demand = message["data_iops"] + message["metadata_iops"]
            if tracer.enabled:
                t0 = sent_at.get(s.stage_id, started)
                tracer.for_track(s.stage_id).emit(
                    "collect_rpc", t0, tracer.now() - t0,
                    parent="collect", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            polled, read_reply, self.collect_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            missing_ids.add(s.stage_id)
            if not s.connected:
                await self._evict(s)
        t_collect = time.perf_counter() - started

        # ---- compute (the real PSFA; absent stages at last-known demand) ----
        compute_started = time.perf_counter()
        with self._cpu():
            job_ids = [s.job_id for s in sessions]
            demands = np.array([s.latest_demand for s in sessions])
            weights = self.policy.weights(job_ids)
            result = self.algorithm.allocate(
                demands, weights, self.policy.allocatable_iops
            )
            limits = result.allocations
        t_compute = time.perf_counter() - compute_started

        # ---- enforce ----
        enforce_started = time.perf_counter()
        ruled: List[_StageSession] = []
        with self._cpu():
            for s, limit in zip(sessions, limits):
                if not s.connected:
                    continue
                try:
                    await s.send(
                        {
                            "kind": "rule",
                            "epoch": epoch,
                            "stage_id": s.stage_id,
                            "data_iops_limit": float(limit),
                        }
                    )
                    ruled.append(s)
                    if tracer.enabled:
                        sent_at[s.stage_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    missing_ids.add(s.stage_id)

        async def read_ack(s: _StageSession) -> None:
            await s.expect("rule_ack", epoch)
            if tracer.enabled:
                t0 = sent_at.get(s.stage_id, enforce_started)
                tracer.for_track(s.stage_id).emit(
                    "enforce_rpc", t0, tracer.now() - t0,
                    parent="enforce", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            ruled, read_ack, self.enforce_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            missing_ids.add(s.stage_id)
            if not s.connected:
                await self._evict(s)
        t_enforce = time.perf_counter() - enforce_started

        self._record_cycle(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(sessions),
                n_missing=len(missing_ids),
                timed_out=timed_out,
            ),
            started,
        )


class _AggregatorSession(Session):
    """Server-side state for one registered aggregator."""

    def __init__(
        self, aggregator_id, stage_ids, job_ids, reader, writer, meter=None
    ) -> None:
        super().__init__(aggregator_id, reader, writer, meter=meter)
        self.stage_ids = list(stage_ids)
        self.job_ids = list(job_ids)
        self.latest_demands: Dict[str, float] = {}
        #: Stages the aggregator itself reported missing last cycle.
        self.last_missing = 0

    @property
    def aggregator_id(self) -> str:
        return self.peer_id


class LiveHierGlobalController(_LiveControllerBase):
    """Hierarchical-design global controller over real TCP.

    Talks only to :class:`~repro.live.aggregator_server.LiveAggregator`
    instances; runs the same PSFA computation over the union of their
    partitions and ships per-aggregator rule batches — the live
    counterpart of the paper's Fig. 3 deployment. ``n_missing`` on a
    degraded cycle counts *stages* without fresh metrics: every stage
    behind an absent aggregator, plus stages the aggregators themselves
    reported missing.
    """

    _register_kind = "register_aggregator"

    _role = "hier-global"

    def __init__(
        self,
        policy: QoSPolicy,
        expected_aggregators: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        span_tracer=None,
        usage_meter=None,
        metrics=None,
    ) -> None:
        if expected_aggregators < 1:
            raise ValueError(
                f"expected_aggregators must be >= 1: {expected_aggregators}"
            )
        for name, value in (
            ("collect_timeout_s", collect_timeout_s),
            ("enforce_timeout_s", enforce_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        super().__init__(
            host,
            port,
            span_tracer=span_tracer,
            usage_meter=usage_meter,
            metrics=metrics,
        )
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_aggregators = expected_aggregators
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = (
            enforce_timeout_s if enforce_timeout_s is not None else collect_timeout_s
        )

    async def wait_for_aggregators(self, timeout_s: float = 30.0) -> None:
        """Block until every expected aggregator has registered."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    def _validate_hello(self, hello: dict) -> Optional[str]:
        aggregator_id = hello.get("aggregator_id")
        stage_ids = hello.get("stage_ids")
        job_ids = hello.get("job_ids")
        if not aggregator_id or stage_ids is None or job_ids is None:
            return "register_aggregator requires aggregator_id, stage_ids, job_ids"
        if len(stage_ids) != len(job_ids):
            return "stage_ids and job_ids lengths differ"
        if aggregator_id in self.sessions:
            return f"aggregator_id already registered: {aggregator_id}"
        return None

    def _make_session(self, hello: dict, reader, writer) -> _AggregatorSession:
        return _AggregatorSession(
            hello["aggregator_id"],
            hello["stage_ids"],
            hello["job_ids"],
            reader,
            writer,
            meter=self.meter,
        )

    @property
    def _expected(self) -> int:
        return self.expected_aggregators

    @property
    def n_stages(self) -> int:
        return sum(len(s.stage_ids) for s in self.sessions.values())

    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` back-to-back cycles; returns their records."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    async def _cycle(self) -> None:
        self.epoch += 1
        epoch = self.epoch
        sessions: List[_AggregatorSession] = [
            self.sessions[a] for a in sorted(self.sessions)
        ]
        started = time.perf_counter()
        n_missing = 0
        timed_out = False
        tracer = self.tracer
        sent_at: Dict[str, float] = {}

        # ---- collect (via aggregators) ----
        polled: List[_AggregatorSession] = []
        absent: List[_AggregatorSession] = []
        with self._cpu():
            for s in sessions:
                try:
                    await s.send({"kind": "agg_collect_req", "epoch": epoch})
                    polled.append(s)
                    if tracer.enabled:
                        sent_at[s.aggregator_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)
                    absent.append(s)

        async def read_agg_reply(s: _AggregatorSession) -> None:
            m = await s.expect("agg_metrics_reply", epoch)
            s.latest_demands.update(zip(m["stage_ids"], m["demands"]))
            # Missing = stages the aggregator flagged as silent, plus any
            # registered stages it evicted and no longer reports at all.
            s.last_missing = int(m.get("n_missing", 0)) + max(
                0, len(s.stage_ids) - len(m["stage_ids"])
            )
            if tracer.enabled:
                t0 = sent_at.get(s.aggregator_id, started)
                tracer.for_track(s.aggregator_id).emit(
                    "collect_rpc", t0, tracer.now() - t0,
                    parent="collect", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            polled, read_agg_reply, self.collect_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            absent.append(s)
            if not s.connected:
                await self._evict(s)
        for s in sessions:
            if s in absent:
                n_missing += len(s.stage_ids)
            else:
                n_missing += s.last_missing
        t_collect = time.perf_counter() - started

        # ---- compute (PSFA over all partitions, last-known for absent) ----
        compute_started = time.perf_counter()
        with self._cpu():
            stage_ids: List[str] = []
            job_ids: List[str] = []
            demands: List[float] = []
            for s in sessions:
                for stage_id, job_id in zip(s.stage_ids, s.job_ids):
                    stage_ids.append(stage_id)
                    job_ids.append(job_id)
                    demands.append(s.latest_demands.get(stage_id, 0.0))
            result = self.algorithm.allocate(
                np.array(demands), self.policy.weights(job_ids),
                self.policy.allocatable_iops,
            )
            limit_of = dict(zip(stage_ids, result.allocations))
        t_compute = time.perf_counter() - compute_started

        # ---- enforce (rule batches) ----
        enforce_started = time.perf_counter()
        batched: List[_AggregatorSession] = []
        with self._cpu():
            for s in sessions:
                if not s.connected:
                    continue
                try:
                    await s.send(
                        {
                            "kind": "rule_batch",
                            "epoch": epoch,
                            "rules": [
                                {
                                    "stage_id": stage_id,
                                    "data_iops_limit": float(limit_of[stage_id]),
                                }
                                for stage_id in s.stage_ids
                            ],
                        }
                    )
                    batched.append(s)
                    if tracer.enabled:
                        sent_at[s.aggregator_id] = tracer.now()
                except SessionClosed:
                    await self._evict(s)

        async def read_batch_ack(s: _AggregatorSession) -> None:
            await s.expect("batch_ack", epoch)
            if tracer.enabled:
                t0 = sent_at.get(s.aggregator_id, enforce_started)
                tracer.for_track(s.aggregator_id).emit(
                    "enforce_rpc", t0, tracer.now() - t0,
                    parent="enforce", epoch=epoch,
                )

        missing, phase_timed_out = await gather_phase(
            batched, read_batch_ack, self.enforce_timeout_s
        )
        timed_out |= phase_timed_out
        for s in missing:
            if not s.connected:
                await self._evict(s)
        t_enforce = time.perf_counter() - enforce_started

        self._record_cycle(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(stage_ids),
                n_missing=n_missing,
                timed_out=timed_out,
            ),
            started,
        )
