"""Live global controller: an asyncio TCP server running control cycles.

The same collect → compute → enforce loop as the simulated
:class:`~repro.core.controller.GlobalController`, timed with the
wall clock and executing the *same* PSFA implementation
(:class:`repro.core.algorithms.psfa.PSFA`) over the collected demand.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.cycle import ControlCycle
from repro.core.policies import QoSPolicy
from repro.live.protocol import read_message, write_message

__all__ = ["LiveGlobalController", "LiveHierGlobalController"]


class _StageSession:
    """Server-side state for one connected stage."""

    def __init__(self, stage_id: str, job_id: str, reader, writer) -> None:
        self.stage_id = stage_id
        self.job_id = job_id
        self.reader = reader
        self.writer = writer
        self.latest_demand = 0.0


class LiveGlobalController:
    """Flat-design controller over real TCP connections.

    Usage::

        ctrl = LiveGlobalController(policy, expected_stages=50)
        await ctrl.start()                 # begins listening; port assigned
        ... stages connect ...
        await ctrl.wait_for_stages()
        cycles = await ctrl.run_cycles(20)
        await ctrl.shutdown()
    """

    def __init__(
        self,
        policy: QoSPolicy,
        expected_stages: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if expected_stages < 1:
            raise ValueError(f"expected_stages must be >= 1: {expected_stages}")
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_stages = expected_stages
        self.host = host
        self.port = port
        self.sessions: Dict[str, _StageSession] = {}
        self.cycles: List[ControlCycle] = []
        self.epoch = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start listening; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_for_stages(self, timeout_s: float = 30.0) -> None:
        """Block until every expected stage has registered."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    async def shutdown(self) -> None:
        """Tell stages to stop and close the server."""
        for session in self.sessions.values():
            try:
                await write_message(session.writer, {"kind": "shutdown"})
                session.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except asyncio.IncompleteReadError:
            writer.close()
            return
        if hello.get("kind") != "register":
            writer.close()
            return
        session = _StageSession(hello["stage_id"], hello["job_id"], reader, writer)
        self.sessions[session.stage_id] = session
        await write_message(writer, {"kind": "registered"})
        if len(self.sessions) >= self.expected_stages:
            self._all_registered.set()
        # The controller drives all further I/O on this connection; the
        # handler returns and the streams stay owned by the session.

    # -- control loop -----------------------------------------------------------
    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` back-to-back cycles; returns their records."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    async def _cycle(self) -> None:
        self.epoch += 1
        epoch = self.epoch
        sessions = list(self.sessions.values())
        started = time.perf_counter()

        # ---- collect ----
        for s in sessions:
            await write_message(s.writer, {"kind": "collect_req", "epoch": epoch})

        async def read_reply(s: _StageSession) -> None:
            while True:
                message = await read_message(s.reader)
                if message["kind"] == "metrics_reply" and message["epoch"] == epoch:
                    s.latest_demand = (
                        message["data_iops"] + message["metadata_iops"]
                    )
                    return

        await asyncio.gather(*(read_reply(s) for s in sessions))
        t_collect = time.perf_counter() - started

        # ---- compute (the real PSFA) ----
        compute_started = time.perf_counter()
        job_ids = [s.job_id for s in sessions]
        demands = np.array([s.latest_demand for s in sessions])
        weights = self.policy.weights(job_ids)
        result = self.algorithm.allocate(
            demands, weights, self.policy.allocatable_iops
        )
        limits = result.allocations
        t_compute = time.perf_counter() - compute_started

        # ---- enforce ----
        enforce_started = time.perf_counter()
        for s, limit in zip(sessions, limits):
            await write_message(
                s.writer,
                {
                    "kind": "rule",
                    "epoch": epoch,
                    "stage_id": s.stage_id,
                    "data_iops_limit": float(limit),
                },
            )

        async def read_ack(s: _StageSession) -> None:
            while True:
                message = await read_message(s.reader)
                if message["kind"] == "rule_ack" and message["epoch"] == epoch:
                    return

        await asyncio.gather(*(read_ack(s) for s in sessions))
        t_enforce = time.perf_counter() - enforce_started

        self.cycles.append(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(sessions),
            )
        )


class _AggregatorSession:
    """Server-side state for one registered aggregator."""

    def __init__(self, aggregator_id, stage_ids, job_ids, reader, writer) -> None:
        self.aggregator_id = aggregator_id
        self.stage_ids = list(stage_ids)
        self.job_ids = list(job_ids)
        self.reader = reader
        self.writer = writer
        self.latest_demands: Dict[str, float] = {}


class LiveHierGlobalController:
    """Hierarchical-design global controller over real TCP.

    Talks only to :class:`~repro.live.aggregator_server.LiveAggregator`
    instances; runs the same PSFA computation over the union of their
    partitions and ships per-aggregator rule batches — the live
    counterpart of the paper's Fig. 3 deployment.
    """

    def __init__(
        self,
        policy: QoSPolicy,
        expected_aggregators: int,
        algorithm: Optional[ControlAlgorithm] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if expected_aggregators < 1:
            raise ValueError(
                f"expected_aggregators must be >= 1: {expected_aggregators}"
            )
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.expected_aggregators = expected_aggregators
        self.host = host
        self.port = port
        self.sessions: Dict[str, _AggregatorSession] = {}
        self.cycles: List[ControlCycle] = []
        self.epoch = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_for_aggregators(self, timeout_s: float = 30.0) -> None:
        await asyncio.wait_for(self._all_registered.wait(), timeout=timeout_s)

    async def shutdown(self) -> None:
        for session in self.sessions.values():
            try:
                await write_message(session.writer, {"kind": "shutdown"})
                session.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except asyncio.IncompleteReadError:
            writer.close()
            return
        if hello.get("kind") != "register_aggregator":
            writer.close()
            return
        session = _AggregatorSession(
            hello["aggregator_id"],
            hello["stage_ids"],
            hello["job_ids"],
            reader,
            writer,
        )
        self.sessions[session.aggregator_id] = session
        await write_message(writer, {"kind": "registered"})
        if len(self.sessions) >= self.expected_aggregators:
            self._all_registered.set()

    @property
    def n_stages(self) -> int:
        return sum(len(s.stage_ids) for s in self.sessions.values())

    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        for _ in range(n_cycles):
            await self._cycle()
        return self.cycles

    async def _cycle(self) -> None:
        self.epoch += 1
        epoch = self.epoch
        sessions = [self.sessions[a] for a in sorted(self.sessions)]
        started = time.perf_counter()

        # ---- collect (via aggregators) ----
        for s in sessions:
            await write_message(
                s.writer, {"kind": "agg_collect_req", "epoch": epoch}
            )

        async def read_agg_reply(s: _AggregatorSession) -> None:
            while True:
                m = await read_message(s.reader)
                if m["kind"] == "agg_metrics_reply" and m["epoch"] == epoch:
                    s.latest_demands = dict(zip(m["stage_ids"], m["demands"]))
                    return

        await asyncio.gather(*(read_agg_reply(s) for s in sessions))
        t_collect = time.perf_counter() - started

        # ---- compute (PSFA over all partitions) ----
        compute_started = time.perf_counter()
        stage_ids: List[str] = []
        job_ids: List[str] = []
        demands: List[float] = []
        for s in sessions:
            for stage_id, job_id in zip(s.stage_ids, s.job_ids):
                stage_ids.append(stage_id)
                job_ids.append(job_id)
                demands.append(s.latest_demands.get(stage_id, 0.0))
        result = self.algorithm.allocate(
            np.array(demands), self.policy.weights(job_ids),
            self.policy.allocatable_iops,
        )
        limit_of = dict(zip(stage_ids, result.allocations))
        t_compute = time.perf_counter() - compute_started

        # ---- enforce (rule batches) ----
        enforce_started = time.perf_counter()
        for s in sessions:
            await write_message(
                s.writer,
                {
                    "kind": "rule_batch",
                    "epoch": epoch,
                    "rules": [
                        {
                            "stage_id": stage_id,
                            "data_iops_limit": float(limit_of[stage_id]),
                        }
                        for stage_id in s.stage_ids
                    ],
                },
            )

        async def read_batch_ack(s: _AggregatorSession) -> None:
            while True:
                m = await read_message(s.reader)
                if m["kind"] == "batch_ack" and m["epoch"] == epoch:
                    return

        await asyncio.gather(*(read_batch_ack(s) for s in sessions))
        t_enforce = time.perf_counter() - enforce_started

        self.cycles.append(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(stage_ids),
            )
        )
