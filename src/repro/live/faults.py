"""Live fault injection: kill, stall, and flaky-socket wrappers.

The live counterpart of :mod:`repro.core.failures` — the same fault
menagerie, but inflicted on real asyncio TCP endpoints instead of
simulated actors:

* :func:`kill_stage` — abort the stage's socket mid-flight (SIGKILL /
  node loss). The controller sees EOF and evicts the session; with the
  stage's reconnect loop enabled the "restarted" process re-registers
  after backoff, like the simulated ``crash_stage`` recovery.
* :func:`stall_stage` — freeze the stage's reply loop for a window
  without closing the socket (GC pause, overloaded node, network
  partition with a live TCP session). Only a ``collect_timeout_s``
  lets cycles make progress past a stalled stage.
* :func:`flaky_socket` — wrap the stage's current connection so it
  aborts after N more frames are written, exercising mid-phase
  connection loss (enforce-time and collect-time eviction paths).
* :func:`kill_aggregator` — abort every socket of a live aggregator
  (upstream and stage-facing) and close its server: the global
  controller orphans the partition and the stages re-home to surviving
  aggregators via their alternate-address rotation.
* :func:`stall_aggregator` — freeze an aggregator's upstream frame
  handling for a window without closing any socket; the global
  controller's ``dead_after_missed`` health check declares it dead, and
  the stages' ``controller_timeout_s`` silence watchdogs rotate away.
* :class:`LiveFaultLog` — wall-clock record of injected events, for
  assertions, mirroring :class:`repro.core.failures.FailureLog`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.live.aggregator_server import LiveAggregator
from repro.live.stage_client import LiveVirtualStage

__all__ = [
    "FlakySocket",
    "LiveFaultEvent",
    "LiveFaultLog",
    "flaky_socket",
    "kill_aggregator",
    "kill_stage",
    "stall_aggregator",
    "stall_stage",
]


@dataclass(frozen=True)
class LiveFaultEvent:
    """One injected fault or recovery (wall-clock seconds)."""

    time: float
    target: str
    action: str  # "kill" | "stall" | "resume" | "flaky"


@dataclass
class LiveFaultLog:
    """Chronological record of injected live faults."""

    events: List[LiveFaultEvent] = field(default_factory=list)

    def record(self, target: str, action: str) -> None:
        self.events.append(LiveFaultEvent(time.monotonic(), target, action))

    def kills(self) -> List[LiveFaultEvent]:
        return [e for e in self.events if e.action == "kill"]

    def stalls(self) -> List[LiveFaultEvent]:
        return [e for e in self.events if e.action == "stall"]


def kill_stage(
    stage: LiveVirtualStage,
    restart: bool = True,
    log: Optional[LiveFaultLog] = None,
) -> LiveFaultLog:
    """Abort ``stage``'s connection right now (simulated process kill).

    With ``restart`` (default) the stage's reconnect loop brings it back
    with backoff + re-registration; with ``restart=False`` it stays dead
    (the serve loop exits instead of retrying).
    """
    log = log if log is not None else LiveFaultLog()
    if not restart:
        stage.reconnect = False
    stage.kill()
    log.record(stage.stage_id, "kill")
    return log


async def stall_stage(
    stage: LiveVirtualStage,
    duration_s: float,
    log: Optional[LiveFaultLog] = None,
) -> LiveFaultLog:
    """Freeze ``stage``'s reply loop for ``duration_s`` seconds.

    The socket stays open, so the controller sees silence rather than
    EOF: without a phase timeout the cycle blocks; with one, the stage
    goes missing and rides at last-known demand. On resume, the stage
    serves its backlog — late replies are drained as stale by epoch
    checks on the controller side.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive: {duration_s}")
    log = log if log is not None else LiveFaultLog()
    stage.pause()
    log.record(stage.stage_id, "stall")
    try:
        await asyncio.sleep(duration_s)
    finally:
        stage.resume()
        log.record(stage.stage_id, "resume")
    return log


def kill_aggregator(
    aggregator: LiveAggregator,
    log: Optional[LiveFaultLog] = None,
) -> LiveFaultLog:
    """Kill ``aggregator`` right now (simulated controller-node loss).

    Upstream and stage-facing sockets are aborted and the listening
    socket is closed: the global controller sees EOF and orphans the
    partition; the stages see EOF, then connection-refused on retry, and
    rotate to the alternates learnt from ``rehome`` frames. A killed
    aggregator does not come back.
    """
    log = log if log is not None else LiveFaultLog()
    aggregator.kill()
    log.record(aggregator.aggregator_id, "kill")
    return log


async def stall_aggregator(
    aggregator: LiveAggregator,
    duration_s: float,
    log: Optional[LiveFaultLog] = None,
) -> LiveFaultLog:
    """Freeze ``aggregator``'s frame handling for ``duration_s`` seconds.

    All sockets stay open, so both neighbours see silence rather than
    EOF: the global controller needs ``collect_timeout_s`` (to degrade
    past it) and ``dead_after_missed`` (to declare it dead); the stages
    need ``controller_timeout_s`` to rotate away from it. On resume the
    backlog is served — late replies are drained as stale upstream, and
    late rules are fenced by the stages' epoch checks.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive: {duration_s}")
    log = log if log is not None else LiveFaultLog()
    aggregator.pause()
    log.record(aggregator.aggregator_id, "stall")
    try:
        await asyncio.sleep(duration_s)
    finally:
        aggregator.resume()
        log.record(aggregator.aggregator_id, "resume")
    return log


class FlakySocket:
    """StreamWriter proxy that aborts the connection after N writes.

    Models a failing NIC/link: traffic flows, then the connection dies
    mid-phase. Reads pass through untouched; the failure surfaces as a
    ``ConnectionResetError`` on the writing side and an EOF on the peer.
    """

    def __init__(self, writer, fail_after_writes: int) -> None:
        if fail_after_writes < 0:
            raise ValueError(f"negative fail_after_writes: {fail_after_writes}")
        self._writer = writer
        self.fail_after_writes = fail_after_writes
        self.writes = 0

    def write(self, data: bytes) -> None:
        if self.writes >= self.fail_after_writes:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError("flaky socket: injected write failure")
        self.writes += 1
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def __getattr__(self, name):
        return getattr(self._writer, name)


def flaky_socket(
    stage: LiveVirtualStage,
    fail_after_writes: int,
    log: Optional[LiveFaultLog] = None,
) -> LiveFaultLog:
    """Make ``stage``'s *current* connection fail after N more replies.

    The wrapper lasts until the connection dies; the reconnected session
    (if the stage retries) uses a clean socket again.
    """
    log = log if log is not None else LiveFaultLog()
    writer = stage._writer
    if writer is None:
        raise RuntimeError(f"stage {stage.stage_id} is not connected")
    stage._writer = FlakySocket(writer, fail_after_writes)
    log.record(stage.stage_id, "flaky")
    return log
