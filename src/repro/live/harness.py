"""One-call live cluster runner.

Spins up a :class:`~repro.live.controller_server.LiveGlobalController` and
``n_stages`` :class:`~repro.live.stage_client.LiveVirtualStage` clients in
a single asyncio loop over localhost TCP, runs the stress workload, and
returns wall-clock cycle statistics.

``collect_timeout_s`` / ``enforce_timeout_s`` arm the controllers' phase
deadlines (degraded cycles instead of stalls when stages die or stall);
the result carries per-cycle ``n_missing``/``timed_out`` so degraded
cycles are visible in every table built from :class:`CycleStats`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional

from repro.core.control_plane import default_policy
from repro.core.cycle import ControlCycle, CycleStats
from repro.core.policies import QoSPolicy
from repro.core.registry import partition_stages
from repro.live.aggregator_server import LiveAggregator
from repro.live.controller_server import LiveGlobalController, LiveHierGlobalController
from repro.live.stage_client import LiveVirtualStage

__all__ = ["LiveRunResult", "run_live_flat", "run_live_hierarchical"]


@dataclass
class LiveRunResult:
    """Outcome of a live run: real cycle timings plus stage-side checks."""

    n_stages: int
    cycles: List[ControlCycle]
    rules_applied_total: int
    rules_stale_total: int
    #: Sessions evicted by the controller(s) after their socket died.
    evictions: int = 0
    #: Successful stage re-registrations (reconnect loop recoveries).
    reconnects: int = 0

    def stats(self, warmup: int = 2) -> CycleStats:
        return CycleStats(self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0)))

    @property
    def degraded_cycles(self) -> int:
        """Cycles that ran on partial metrics or hit a phase deadline."""
        return sum(1 for c in self.cycles if c.degraded)

    @property
    def missing_total(self) -> int:
        """Missing child replies summed over every cycle."""
        return sum(c.n_missing for c in self.cycles)


async def _run(
    n_stages: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
) -> LiveRunResult:
    policy = policy or default_policy(n_stages)
    controller = LiveGlobalController(
        policy,
        expected_stages=n_stages,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
    )
    await controller.start()

    stages = [
        LiveVirtualStage(
            controller.host,
            controller.port,
            stage_id=f"stage-{i:05d}",
            job_id=f"job-{i:05d}",
        )
        for i in range(n_stages)
    ]
    stage_tasks = [asyncio.create_task(s.run()) for s in stages]
    try:
        await controller.wait_for_stages()
        cycles = await controller.run_cycles(n_cycles)
    finally:
        await controller.shutdown()
        for task in stage_tasks:
            task.cancel()
        await asyncio.gather(*stage_tasks, return_exceptions=True)
    return LiveRunResult(
        n_stages=n_stages,
        cycles=list(cycles),
        rules_applied_total=sum(s.rules_applied for s in stages),
        rules_stale_total=sum(s.rules_ignored_stale for s in stages),
        evictions=controller.evictions,
        reconnects=sum(s.reconnects for s in stages),
    )


def run_live_flat(
    n_stages: int = 50,
    n_cycles: int = 20,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
) -> LiveRunResult:
    """Run a flat control plane over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    return asyncio.run(
        _run(n_stages, n_cycles, policy, collect_timeout_s, enforce_timeout_s)
    )


async def _run_hier(
    n_stages: int,
    n_aggregators: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
) -> LiveRunResult:
    policy = policy or default_policy(n_stages)
    controller = LiveHierGlobalController(
        policy,
        expected_aggregators=n_aggregators,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
    )
    await controller.start()

    stage_ids = [f"stage-{i:05d}" for i in range(n_stages)]
    partitions = partition_stages(stage_ids, n_aggregators)
    aggregators = []
    stage_tasks = []
    agg_tasks = []
    stages = []
    for a, owned in enumerate(partitions):
        agg = LiveAggregator(
            f"aggregator-{a:02d}",
            controller.host,
            controller.port,
            expected_stages=len(owned),
            collect_timeout_s=collect_timeout_s,
            enforce_timeout_s=enforce_timeout_s,
        )
        await agg.start()
        aggregators.append(agg)
        for stage_id in owned:
            stage = LiveVirtualStage(
                agg.host,
                agg.port,
                stage_id=stage_id,
                job_id=stage_id.replace("stage", "job"),
            )
            stages.append(stage)
            stage_tasks.append(asyncio.create_task(stage.run()))
        agg_tasks.append(asyncio.create_task(agg.run()))
    try:
        await controller.wait_for_aggregators()
        cycles = await controller.run_cycles(n_cycles)
    finally:
        await controller.shutdown()
        for task in (*agg_tasks, *stage_tasks):
            task.cancel()
        await asyncio.gather(*agg_tasks, *stage_tasks, return_exceptions=True)
    return LiveRunResult(
        n_stages=n_stages,
        cycles=list(cycles),
        rules_applied_total=sum(s.rules_applied for s in stages),
        rules_stale_total=sum(s.rules_ignored_stale for s in stages),
        evictions=controller.evictions + sum(a.evictions for a in aggregators),
        reconnects=sum(s.reconnects for s in stages),
    )


def run_live_hierarchical(
    n_stages: int = 40,
    n_aggregators: int = 4,
    n_cycles: int = 10,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
) -> LiveRunResult:
    """Run the hierarchical design over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    if not 1 <= n_aggregators <= n_stages:
        raise ValueError("n_aggregators must be in [1, n_stages]")
    return asyncio.run(
        _run_hier(
            n_stages,
            n_aggregators,
            n_cycles,
            policy,
            collect_timeout_s,
            enforce_timeout_s,
        )
    )
