"""One-call live cluster runner.

Spins up a :class:`~repro.live.controller_server.LiveGlobalController` and
``n_stages`` :class:`~repro.live.stage_client.LiveVirtualStage` clients in
a single asyncio loop over localhost TCP, runs the stress workload, and
returns wall-clock cycle statistics.

``collect_timeout_s`` / ``enforce_timeout_s`` arm the controllers' phase
deadlines (degraded cycles instead of stalls when stages die or stall);
the result carries per-cycle ``n_missing``/``timed_out`` so degraded
cycles are visible in every table built from :class:`CycleStats`.

``observe=True`` turns on the :mod:`repro.obs` instrumentation: every
cycle is recorded as wall-clock spans (Chrome-trace exportable), the run
is sampled REMORA-style from ``/proc`` with per-controller attribution
(:class:`~repro.obs.procfs.LiveUsageSession`), and control-plane metrics
accumulate in a :class:`~repro.obs.metrics.MetricsRegistry` — optionally
scrapeable over HTTP while the run cycles (``metrics_port``).

Wire-path knobs (PR 5): ``codec`` picks what the endpoints *offer* at
registration ("binary" offers the struct fast-codec with JSON fallback;
"json" emulates a pre-binary deployment), ``coalesce`` batches each
phase's frames into one drain per session, and
``enforce_changed_only``/``rule_change_tolerance`` suppress rule frames
whose limit did not move. ``use_uvloop=True`` swaps in the uvloop event
loop when that package is importable and silently falls back to the
stdlib loop otherwise — results are identical either way; only wall
clocks differ, so benchmarks must record which loop actually ran.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
from dataclasses import dataclass, field
from typing import Coroutine, Dict, List, Optional, Tuple

from repro.core.control_plane import default_policy
from repro.core.cycle import ControlCycle, CycleStats
from repro.core.policies import QoSPolicy
from repro.core.registry import partition_stages
from repro.live.aggregator_server import LiveAggregator
from repro.live.controller_server import LiveGlobalController, LiveHierGlobalController
from repro.live.stage_client import LiveVirtualStage
from repro.monitoring.remora import RemoraReport
from repro.obs.metrics import MetricsRegistry, MetricsServer
from repro.obs.procfs import LiveUsageSession
from repro.obs.spans import SpanRecord, SpanTracer

__all__ = [
    "LiveHierPlane",
    "LiveRunResult",
    "run_live_flat",
    "run_live_hierarchical",
]


def _offered_codecs(codec: str) -> Tuple[str, ...]:
    """Map the harness-level ``codec`` knob to an offer list.

    ``"binary"`` offers every binary revision (negotiation settles on the
    newest both sides speak); ``"binary1"`` pins the legacy packed schema
    for mixed-version tests; ``"json"`` emulates a pre-binary fleet.
    """
    if codec == "binary":
        return ("binary2", "binary", "json")
    if codec == "binary1":
        return ("binary", "json")
    if codec == "json":
        return ("json",)
    raise ValueError(
        f"unknown codec {codec!r}: expected 'binary', 'binary1' or 'json'"
    )


def _run_loop(coro: Coroutine, use_uvloop: bool):
    """Run ``coro`` to completion, on uvloop when asked for and available.

    uvloop is an optional accelerator, never a dependency: when the
    import fails we fall back to ``asyncio.run`` without complaint so the
    same call sites work on bare-stdlib installs.
    """
    if use_uvloop:
        try:
            import uvloop  # type: ignore[import-not-found]
        except ImportError:
            pass
        else:
            if hasattr(uvloop, "run"):  # uvloop >= 0.18
                return uvloop.run(coro)
            uvloop.install()
    return asyncio.run(coro)


@dataclass
class LiveRunResult:
    """Outcome of a live run: real cycle timings plus stage-side checks."""

    n_stages: int
    cycles: List[ControlCycle]
    rules_applied_total: int
    rules_stale_total: int
    #: Sessions evicted by the controller(s) after their socket died.
    evictions: int = 0
    #: Successful stage re-registrations (reconnect loop recoveries).
    reconnects: int = 0
    #: Wall-clock spans recorded during the run (empty unless observed).
    spans: List[SpanRecord] = field(default_factory=list)
    #: Per-controller usage rows (Tables II–IV style); None unless observed.
    usage_report: Optional[RemoraReport] = None
    #: Final Prometheus text exposition; None unless observed.
    metrics_text: Optional[str] = None
    #: Bound ``GET /metrics`` port; None unless a server was requested.
    metrics_port: Optional[int] = None

    def stats(self, warmup: int = 2) -> CycleStats:
        return CycleStats(self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0)))

    @property
    def degraded_cycles(self) -> int:
        """Cycles that ran on partial metrics or hit a phase deadline."""
        return sum(1 for c in self.cycles if c.degraded)

    @property
    def missing_total(self) -> int:
        """Missing child replies summed over every cycle."""
        return sum(c.n_missing for c in self.cycles)


class _Obs:
    """Per-run observability bundle (tracer + usage session + metrics)."""

    def __init__(
        self, observe: bool, metrics_port: Optional[int], sample_interval_s: float
    ) -> None:
        self.tracer: Optional[SpanTracer] = None
        self.usage: Optional[LiveUsageSession] = None
        self.registry: Optional[MetricsRegistry] = None
        self.server: Optional[MetricsServer] = None
        self._metrics_port = metrics_port
        if observe:
            self.tracer = SpanTracer(track="global-ctrl", clock_domain="wall")
            self.usage = LiveUsageSession(interval_s=sample_interval_s)
            self.registry = MetricsRegistry()

    def tracer_for(self, track: str):
        return self.tracer.for_track(track) if self.tracer is not None else None

    def meter_for(self, name: str):
        return self.usage.meter(name) if self.usage is not None else None

    async def start(self) -> None:
        if self.registry is not None and self._metrics_port is not None:
            self.server = MetricsServer(self.registry, port=self._metrics_port)
            await self.server.start()
        if self.usage is not None:
            self.usage.start()

    async def stop(self) -> None:
        if self.usage is not None:
            await self.usage.stop()
        if self.server is not None:
            await self.server.stop()

    def finish(self, result: LiveRunResult) -> LiveRunResult:
        """Attach whatever was observed to the run result."""
        if self.tracer is not None:
            result.spans = self.tracer.spans
        if self.usage is not None:
            result.usage_report = self.usage.report()
        if self.registry is not None:
            result.metrics_text = self.registry.render()
        if self.server is not None:
            result.metrics_port = self.server.port
        return result


async def _run(
    n_stages: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    columnar: bool = False,
) -> LiveRunResult:
    policy = policy or default_policy(n_stages)
    offered = _offered_codecs(codec)
    obs = _Obs(observe, metrics_port, sample_interval_s)
    controller = LiveGlobalController(
        policy,
        expected_stages=n_stages,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
        span_tracer=obs.tracer_for("global-ctrl"),
        usage_meter=obs.meter_for("global-ctrl"),
        metrics=obs.registry,
        enforce_changed_only=enforce_changed_only,
        rule_change_tolerance=rule_change_tolerance,
        coalesce=coalesce,
        columnar=columnar,
    )
    await controller.start()
    await obs.start()

    stages = [
        LiveVirtualStage(
            controller.host,
            controller.port,
            stage_id=f"stage-{i:05d}",
            job_id=f"job-{i:05d}",
            codecs=offered,
        )
        for i in range(n_stages)
    ]
    stage_tasks = [asyncio.create_task(s.run()) for s in stages]
    try:
        await controller.wait_for_stages()
        cycles = await controller.run_cycles(n_cycles)
    finally:
        await controller.shutdown()
        await obs.stop()
        for task in stage_tasks:
            task.cancel()
        await asyncio.gather(*stage_tasks, return_exceptions=True)
    return obs.finish(
        LiveRunResult(
            n_stages=n_stages,
            cycles=list(cycles),
            rules_applied_total=sum(s.rules_applied for s in stages),
            rules_stale_total=sum(s.rules_ignored_stale for s in stages),
            evictions=controller.evictions,
            reconnects=sum(s.reconnects for s in stages),
        )
    )


def run_live_flat(
    n_stages: int = 50,
    n_cycles: int = 20,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    use_uvloop: bool = False,
    columnar: bool = False,
) -> LiveRunResult:
    """Run a flat control plane over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    return _run_loop(
        _run(
            n_stages,
            n_cycles,
            policy,
            collect_timeout_s,
            enforce_timeout_s,
            observe=observe,
            metrics_port=metrics_port,
            sample_interval_s=sample_interval_s,
            codec=codec,
            coalesce=coalesce,
            enforce_changed_only=enforce_changed_only,
            rule_change_tolerance=rule_change_tolerance,
            columnar=columnar,
        ),
        use_uvloop,
    )


async def _start_rebinding(component, attempts: int = 60, delay_s: float = 0.05):
    """``await component.start()``, retrying while the port drains.

    A restarted plane rebinds the *same* ports so surviving stage
    reconnect loops find it again; on slow CI the previous listen socket
    can still be mid-close, so EADDRINUSE here means "wait", not "fail".
    """
    for attempt in range(attempts):
        try:
            return await component.start()
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE or attempt == attempts - 1:
                raise
            await asyncio.sleep(delay_s)


class LiveHierPlane:
    """A restartable hierarchical live plane (controller + aggs + stages).

    Owns the whole process tree the hierarchical harness used to build
    inline: one :class:`LiveHierGlobalController`, ``n_aggregators``
    :class:`LiveAggregator` servers, and ``n_stages`` stage clients.
    Unlike the one-shot ``run_live_hierarchical`` wrapper, the plane
    persists across control runs and supports **full-plane restart**:

    * :meth:`kill_plane` aborts every controller/aggregator socket
      without a goodbye — the in-process analogue of ``kill -9`` on the
      whole control plane. Stage clients stay alive, keep enforcing
      their last rules, and keep their ``applied_epoch`` fencing state.
    * :meth:`plane_restart` rebinds the *same* ports (retrying while the
      old sockets drain — the back-to-back-start CI flake fix) with a
      caller-supplied ``initial_epoch``, typically a durable store's
      :meth:`~repro.store.DurableStore.resume_epoch`. Surviving stages
      re-home through their reconnect loops; restarted aggregators boot
      as hot spares (``expected_stages=0``) and adopt whoever arrives,
      so re-homed stages may land on any aggregator.

    The epoch contract this preserves: stage fencing only accepts rules
    with ``epoch > applied_epoch``, so a restart resumed *at or below*
    the pre-kill epoch would be silently fenced out forever — visible in
    tests as ``rules_applied`` never advancing after restart.
    """

    def __init__(
        self,
        n_stages: int,
        n_aggregators: int,
        policy: Optional[QoSPolicy] = None,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        dead_after_missed: Optional[int] = None,
        codec: str = "binary",
        coalesce: bool = True,
        enforce_changed_only: bool = False,
        rule_change_tolerance: float = 0.0,
        initial_epoch: int = 0,
        obs: Optional[_Obs] = None,
        stage_backoff: Optional[Dict[str, float]] = None,
        degradation=None,
        demand_clamp=None,
        session_outbox_bytes: Optional[int] = None,
        columnar: bool = False,
    ) -> None:
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1: {n_stages}")
        if not 1 <= n_aggregators <= n_stages:
            raise ValueError("n_aggregators must be in [1, n_stages]")
        self.n_stages = n_stages
        self.n_aggregators = n_aggregators
        self.policy = policy or default_policy(n_stages)
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = enforce_timeout_s
        self.dead_after_missed = dead_after_missed
        self.coalesce = coalesce
        self.enforce_changed_only = enforce_changed_only
        self.rule_change_tolerance = rule_change_tolerance
        self.initial_epoch = initial_epoch
        self._offered = _offered_codecs(codec)
        self._obs = obs if obs is not None else _Obs(False, None, 0.05)
        #: Stage reconnect-backoff overrides (tests shrink the delays).
        self._stage_backoff = dict(stage_backoff or {})
        #: Guard instances shared across controller generations: a plane
        #: restart must not reset the degradation ladder's streaks or the
        #: clamp's earned trust (see repro.guard).
        self.degradation = degradation
        self.demand_clamp = demand_clamp
        self.session_outbox_bytes = session_outbox_bytes
        self.columnar = columnar
        stage_ids = [f"stage-{i:05d}" for i in range(n_stages)]
        self._partitions = partition_stages(stage_ids, n_aggregators)
        self.controller: Optional[LiveHierGlobalController] = None
        self.aggregators: List[LiveAggregator] = []
        self.stages: List[LiveVirtualStage] = []
        self._stage_tasks: List[asyncio.Task] = []
        self._agg_tasks: List[asyncio.Task] = []
        #: Ports pinned at first start and reused by every restart.
        self._ctrl_port = 0
        self._agg_ports = [0] * n_aggregators
        #: Completed full-plane restarts.
        self.restarts = 0
        #: Evictions accumulated across dead controller generations.
        self._evictions_past = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self, initial_epoch: Optional[int] = None) -> None:
        """Boot (or re-boot) the plane; idempotent ports after first call."""
        if self.controller is not None:
            raise RuntimeError("plane already started")
        if initial_epoch is not None:
            self.initial_epoch = initial_epoch
        obs = self._obs
        restarting = bool(self.stages)
        self.controller = LiveHierGlobalController(
            self.policy,
            expected_aggregators=self.n_aggregators,
            port=self._ctrl_port,
            collect_timeout_s=self.collect_timeout_s,
            enforce_timeout_s=self.enforce_timeout_s,
            dead_after_missed=self.dead_after_missed,
            enforce_changed_only=self.enforce_changed_only,
            rule_change_tolerance=self.rule_change_tolerance,
            coalesce=self.coalesce,
            initial_epoch=self.initial_epoch,
            span_tracer=obs.tracer_for("global-ctrl"),
            usage_meter=obs.meter_for("global-ctrl"),
            metrics=obs.registry,
            degradation=self.degradation,
            demand_clamp=self.demand_clamp,
            session_outbox_bytes=self.session_outbox_bytes,
            columnar=self.columnar,
        )
        await _start_rebinding(self.controller)
        self._ctrl_port = self.controller.port
        self.aggregators = []
        for a, owned in enumerate(self._partitions):
            agg_id = f"aggregator-{a:02d}"
            agg = LiveAggregator(
                agg_id,
                self.controller.host,
                self._ctrl_port,
                # Restarted aggregators boot as hot spares: surviving
                # stages rotate through alternates, so any stage may
                # re-home to any aggregator — expecting the original
                # partition back would deadlock registration.
                expected_stages=0 if restarting else len(owned),
                port=self._agg_ports[a],
                collect_timeout_s=self.collect_timeout_s,
                enforce_timeout_s=self.enforce_timeout_s,
                span_tracer=obs.tracer_for(agg_id),
                usage_meter=obs.meter_for(agg_id),
                metrics=obs.registry,
                coalesce=self.coalesce,
                codecs=self._offered,
                session_outbox_bytes=self.session_outbox_bytes,
            )
            await _start_rebinding(agg)
            self._agg_ports[a] = agg.port
            self.aggregators.append(agg)
        if not restarting:
            for a, owned in enumerate(self._partitions):
                agg = self.aggregators[a]
                for stage_id in owned:
                    stage = LiveVirtualStage(
                        agg.host,
                        agg.port,
                        stage_id=stage_id,
                        job_id=stage_id.replace("stage", "job"),
                        codecs=self._offered,
                        **self._stage_backoff,
                    )
                    self.stages.append(stage)
                    self._stage_tasks.append(asyncio.create_task(stage.run()))
        self._agg_tasks = [asyncio.create_task(a.run()) for a in self.aggregators]
        await self.controller.wait_for_aggregators()

    async def wait_for_stages(self, timeout_s: float = 30.0) -> None:
        """Wait until every stage is registered somewhere in the tree."""

        async def _poll() -> None:
            while self.registered_stages < self.n_stages:
                await asyncio.sleep(0.01)

        await asyncio.wait_for(_poll(), timeout=timeout_s)

    @property
    def registered_stages(self) -> int:
        """Stages currently homed on a live aggregator, tree-wide."""
        return sum(len(a.sessions) for a in self.aggregators)

    @property
    def interval_multiplier(self) -> float:
        """Cycle-interval stretch requested by the degradation ladder.

        The serve loop multiplies its sleep by this: at the STRETCH rung
        and above the plane runs fewer, cheaper-to-miss cycles.
        """
        if self.degradation is None:
            return 1.0
        return self.degradation.interval_multiplier

    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` control cycles on the current controller."""
        if self.controller is None:
            raise RuntimeError("start() first")
        return await self.controller.run_cycles(n_cycles)

    @property
    def epoch(self) -> int:
        """The current controller's rule epoch (0 when down)."""
        return self.controller.epoch if self.controller is not None else 0

    @property
    def evictions(self) -> int:
        """Evictions across all controller generations and aggregators."""
        live = self.controller.evictions if self.controller is not None else 0
        return self._evictions_past + live + sum(
            a.evictions for a in self.aggregators
        )

    async def _reap(self) -> None:
        for task in self._agg_tasks:
            task.cancel()
        await asyncio.gather(*self._agg_tasks, return_exceptions=True)
        self._agg_tasks = []

    async def kill_plane(self) -> None:
        """Abort the controller and every aggregator — ``kill -9`` style.

        No shutdown frames: stages see EOF exactly as they would if the
        plane's process died, and keep enforcing their last rules while
        their reconnect loops probe the (dead) ports.
        """
        if self.controller is None:
            return
        self._evictions_past += self.controller.evictions
        self.controller.kill()
        for agg in self.aggregators:
            agg.kill()
        await self._reap()
        # kill() closes listen sockets without awaiting: drain them here
        # so the restart's rebind loop starts from "almost free".
        for agg in self.aggregators:
            if agg._server is not None:
                with contextlib.suppress(ConnectionError, OSError):
                    await agg._server.wait_closed()
        if self.controller._server is not None:
            with contextlib.suppress(ConnectionError, OSError):
                await self.controller._server.wait_closed()
        self.controller = None

    async def plane_restart(
        self, initial_epoch: Optional[int] = None, hard: bool = True
    ) -> None:
        """Stop everything (ports kept free) and restart the plane.

        ``initial_epoch`` is the resume floor — pass a durable store's
        ``resume_epoch()`` to restore the crash-restart invariant, or
        leave ``None`` to keep the current floor (useful in tests that
        deliberately resume too low). ``hard=False`` flushes child links
        and closes them cleanly instead of aborting sockets — but never
        sends ``shutdown`` frames, which would take the surviving stages
        down with the plane instead of releasing them to re-home.
        """
        if self.controller is not None:
            if hard:
                await self.kill_plane()
            else:
                await self._release_plane()
        await self.start(initial_epoch=initial_epoch)
        self.restarts += 1

    async def _release_plane(self) -> None:
        """Graceful plane teardown that releases (not stops) the stages.

        Controller→aggregator sessions are flushed and closed without
        ``shutdown`` frames, then the aggregators' downstream links are
        closed too — reaping cancels the aggregator tasks mid-teardown,
        so leaving the release to their own upstream-loss handling can
        strand a stage on a half-open socket that never sees EOF. The
        stages' reconnect loops then re-home against the pinned ports.
        """
        if self.controller is None:
            return
        self._evictions_past += self.controller.evictions
        for session in list(self.controller.sessions.values()):
            with contextlib.suppress(ConnectionError, OSError):
                await session.close()
        self.controller.sessions.clear()
        if self.controller._server is not None:
            self.controller._server.close()
            with contextlib.suppress(ConnectionError, OSError):
                await self.controller._server.wait_closed()
        for agg in self.aggregators:
            agg.kill()
        await self._reap()
        for agg in self.aggregators:
            if agg._server is not None:
                with contextlib.suppress(ConnectionError, OSError):
                    await agg._server.wait_closed()
        self.controller = None

    async def stop(self, stop_stages: bool = True) -> None:
        """Graceful teardown; with ``stop_stages=False`` stages survive."""
        if stop_stages:
            for stage in self.stages:
                stage.stop()
        if self.controller is not None:
            self._evictions_past += self.controller.evictions
            await self.controller.shutdown()
            self.controller = None
        await self._reap()
        if stop_stages:
            for task in self._stage_tasks:
                task.cancel()
            await asyncio.gather(*self._stage_tasks, return_exceptions=True)
            self._stage_tasks = []

    # -- result plumbing -----------------------------------------------------
    @property
    def rules_applied_total(self) -> int:
        """Rules accepted by stage-side fencing, across all generations."""
        return sum(s.rules_applied for s in self.stages)

    @property
    def rules_stale_total(self) -> int:
        """Rules discarded as stale by stage-side fencing."""
        return sum(s.rules_ignored_stale for s in self.stages)

    @property
    def reconnects(self) -> int:
        """Successful stage re-registrations (re-homes included)."""
        return sum(s.reconnects for s in self.stages)


async def _run_hier(
    n_stages: int,
    n_aggregators: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    columnar: bool = False,
) -> LiveRunResult:
    obs = _Obs(observe, metrics_port, sample_interval_s)
    plane = LiveHierPlane(
        n_stages,
        n_aggregators,
        policy,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
        codec=codec,
        coalesce=coalesce,
        enforce_changed_only=enforce_changed_only,
        rule_change_tolerance=rule_change_tolerance,
        obs=obs,
        columnar=columnar,
    )
    await plane.start()
    await obs.start()
    cycles: List[ControlCycle] = []
    try:
        cycles = await plane.run_cycles(n_cycles)
    finally:
        await plane.stop()
        await obs.stop()
    return obs.finish(
        LiveRunResult(
            n_stages=n_stages,
            cycles=list(cycles),
            rules_applied_total=plane.rules_applied_total,
            rules_stale_total=plane.rules_stale_total,
            evictions=plane.evictions,
            reconnects=plane.reconnects,
        )
    )


def run_live_hierarchical(
    n_stages: int = 40,
    n_aggregators: int = 4,
    n_cycles: int = 10,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    use_uvloop: bool = False,
    columnar: bool = False,
) -> LiveRunResult:
    """Run the hierarchical design over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    if not 1 <= n_aggregators <= n_stages:
        raise ValueError("n_aggregators must be in [1, n_stages]")
    return _run_loop(
        _run_hier(
            n_stages,
            n_aggregators,
            n_cycles,
            policy,
            collect_timeout_s,
            enforce_timeout_s,
            observe=observe,
            metrics_port=metrics_port,
            sample_interval_s=sample_interval_s,
            codec=codec,
            coalesce=coalesce,
            enforce_changed_only=enforce_changed_only,
            rule_change_tolerance=rule_change_tolerance,
            columnar=columnar,
        ),
        use_uvloop,
    )
