"""One-call live cluster runner.

Spins up a :class:`~repro.live.controller_server.LiveGlobalController` and
``n_stages`` :class:`~repro.live.stage_client.LiveVirtualStage` clients in
a single asyncio loop over localhost TCP, runs the stress workload, and
returns wall-clock cycle statistics.

``collect_timeout_s`` / ``enforce_timeout_s`` arm the controllers' phase
deadlines (degraded cycles instead of stalls when stages die or stall);
the result carries per-cycle ``n_missing``/``timed_out`` so degraded
cycles are visible in every table built from :class:`CycleStats`.

``observe=True`` turns on the :mod:`repro.obs` instrumentation: every
cycle is recorded as wall-clock spans (Chrome-trace exportable), the run
is sampled REMORA-style from ``/proc`` with per-controller attribution
(:class:`~repro.obs.procfs.LiveUsageSession`), and control-plane metrics
accumulate in a :class:`~repro.obs.metrics.MetricsRegistry` — optionally
scrapeable over HTTP while the run cycles (``metrics_port``).

Wire-path knobs (PR 5): ``codec`` picks what the endpoints *offer* at
registration ("binary" offers the struct fast-codec with JSON fallback;
"json" emulates a pre-binary deployment), ``coalesce`` batches each
phase's frames into one drain per session, and
``enforce_changed_only``/``rule_change_tolerance`` suppress rule frames
whose limit did not move. ``use_uvloop=True`` swaps in the uvloop event
loop when that package is importable and silently falls back to the
stdlib loop otherwise — results are identical either way; only wall
clocks differ, so benchmarks must record which loop actually ran.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Coroutine, List, Optional, Tuple

from repro.core.control_plane import default_policy
from repro.core.cycle import ControlCycle, CycleStats
from repro.core.policies import QoSPolicy
from repro.core.registry import partition_stages
from repro.live.aggregator_server import LiveAggregator
from repro.live.controller_server import LiveGlobalController, LiveHierGlobalController
from repro.live.stage_client import LiveVirtualStage
from repro.monitoring.remora import RemoraReport
from repro.obs.metrics import MetricsRegistry, MetricsServer
from repro.obs.procfs import LiveUsageSession
from repro.obs.spans import SpanRecord, SpanTracer

__all__ = ["LiveRunResult", "run_live_flat", "run_live_hierarchical"]


def _offered_codecs(codec: str) -> Tuple[str, ...]:
    """Map the harness-level ``codec`` knob to an offer list."""
    if codec == "binary":
        return ("binary", "json")
    if codec == "json":
        return ("json",)
    raise ValueError(f"unknown codec {codec!r}: expected 'binary' or 'json'")


def _run_loop(coro: Coroutine, use_uvloop: bool):
    """Run ``coro`` to completion, on uvloop when asked for and available.

    uvloop is an optional accelerator, never a dependency: when the
    import fails we fall back to ``asyncio.run`` without complaint so the
    same call sites work on bare-stdlib installs.
    """
    if use_uvloop:
        try:
            import uvloop  # type: ignore[import-not-found]
        except ImportError:
            pass
        else:
            if hasattr(uvloop, "run"):  # uvloop >= 0.18
                return uvloop.run(coro)
            uvloop.install()
    return asyncio.run(coro)


@dataclass
class LiveRunResult:
    """Outcome of a live run: real cycle timings plus stage-side checks."""

    n_stages: int
    cycles: List[ControlCycle]
    rules_applied_total: int
    rules_stale_total: int
    #: Sessions evicted by the controller(s) after their socket died.
    evictions: int = 0
    #: Successful stage re-registrations (reconnect loop recoveries).
    reconnects: int = 0
    #: Wall-clock spans recorded during the run (empty unless observed).
    spans: List[SpanRecord] = field(default_factory=list)
    #: Per-controller usage rows (Tables II–IV style); None unless observed.
    usage_report: Optional[RemoraReport] = None
    #: Final Prometheus text exposition; None unless observed.
    metrics_text: Optional[str] = None
    #: Bound ``GET /metrics`` port; None unless a server was requested.
    metrics_port: Optional[int] = None

    def stats(self, warmup: int = 2) -> CycleStats:
        return CycleStats(self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0)))

    @property
    def degraded_cycles(self) -> int:
        """Cycles that ran on partial metrics or hit a phase deadline."""
        return sum(1 for c in self.cycles if c.degraded)

    @property
    def missing_total(self) -> int:
        """Missing child replies summed over every cycle."""
        return sum(c.n_missing for c in self.cycles)


class _Obs:
    """Per-run observability bundle (tracer + usage session + metrics)."""

    def __init__(
        self, observe: bool, metrics_port: Optional[int], sample_interval_s: float
    ) -> None:
        self.tracer: Optional[SpanTracer] = None
        self.usage: Optional[LiveUsageSession] = None
        self.registry: Optional[MetricsRegistry] = None
        self.server: Optional[MetricsServer] = None
        self._metrics_port = metrics_port
        if observe:
            self.tracer = SpanTracer(track="global-ctrl", clock_domain="wall")
            self.usage = LiveUsageSession(interval_s=sample_interval_s)
            self.registry = MetricsRegistry()

    def tracer_for(self, track: str):
        return self.tracer.for_track(track) if self.tracer is not None else None

    def meter_for(self, name: str):
        return self.usage.meter(name) if self.usage is not None else None

    async def start(self) -> None:
        if self.registry is not None and self._metrics_port is not None:
            self.server = MetricsServer(self.registry, port=self._metrics_port)
            await self.server.start()
        if self.usage is not None:
            self.usage.start()

    async def stop(self) -> None:
        if self.usage is not None:
            await self.usage.stop()
        if self.server is not None:
            await self.server.stop()

    def finish(self, result: LiveRunResult) -> LiveRunResult:
        """Attach whatever was observed to the run result."""
        if self.tracer is not None:
            result.spans = self.tracer.spans
        if self.usage is not None:
            result.usage_report = self.usage.report()
        if self.registry is not None:
            result.metrics_text = self.registry.render()
        if self.server is not None:
            result.metrics_port = self.server.port
        return result


async def _run(
    n_stages: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
) -> LiveRunResult:
    policy = policy or default_policy(n_stages)
    offered = _offered_codecs(codec)
    obs = _Obs(observe, metrics_port, sample_interval_s)
    controller = LiveGlobalController(
        policy,
        expected_stages=n_stages,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
        span_tracer=obs.tracer_for("global-ctrl"),
        usage_meter=obs.meter_for("global-ctrl"),
        metrics=obs.registry,
        enforce_changed_only=enforce_changed_only,
        rule_change_tolerance=rule_change_tolerance,
        coalesce=coalesce,
    )
    await controller.start()
    await obs.start()

    stages = [
        LiveVirtualStage(
            controller.host,
            controller.port,
            stage_id=f"stage-{i:05d}",
            job_id=f"job-{i:05d}",
            codecs=offered,
        )
        for i in range(n_stages)
    ]
    stage_tasks = [asyncio.create_task(s.run()) for s in stages]
    try:
        await controller.wait_for_stages()
        cycles = await controller.run_cycles(n_cycles)
    finally:
        await controller.shutdown()
        await obs.stop()
        for task in stage_tasks:
            task.cancel()
        await asyncio.gather(*stage_tasks, return_exceptions=True)
    return obs.finish(
        LiveRunResult(
            n_stages=n_stages,
            cycles=list(cycles),
            rules_applied_total=sum(s.rules_applied for s in stages),
            rules_stale_total=sum(s.rules_ignored_stale for s in stages),
            evictions=controller.evictions,
            reconnects=sum(s.reconnects for s in stages),
        )
    )


def run_live_flat(
    n_stages: int = 50,
    n_cycles: int = 20,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    use_uvloop: bool = False,
) -> LiveRunResult:
    """Run a flat control plane over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    return _run_loop(
        _run(
            n_stages,
            n_cycles,
            policy,
            collect_timeout_s,
            enforce_timeout_s,
            observe=observe,
            metrics_port=metrics_port,
            sample_interval_s=sample_interval_s,
            codec=codec,
            coalesce=coalesce,
            enforce_changed_only=enforce_changed_only,
            rule_change_tolerance=rule_change_tolerance,
        ),
        use_uvloop,
    )


async def _run_hier(
    n_stages: int,
    n_aggregators: int,
    n_cycles: int,
    policy: Optional[QoSPolicy],
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
) -> LiveRunResult:
    policy = policy or default_policy(n_stages)
    offered = _offered_codecs(codec)
    obs = _Obs(observe, metrics_port, sample_interval_s)
    controller = LiveHierGlobalController(
        policy,
        expected_aggregators=n_aggregators,
        collect_timeout_s=collect_timeout_s,
        enforce_timeout_s=enforce_timeout_s,
        span_tracer=obs.tracer_for("global-ctrl"),
        usage_meter=obs.meter_for("global-ctrl"),
        metrics=obs.registry,
        enforce_changed_only=enforce_changed_only,
        rule_change_tolerance=rule_change_tolerance,
        coalesce=coalesce,
    )
    await controller.start()
    await obs.start()

    stage_ids = [f"stage-{i:05d}" for i in range(n_stages)]
    partitions = partition_stages(stage_ids, n_aggregators)
    aggregators = []
    stage_tasks = []
    agg_tasks = []
    stages = []
    for a, owned in enumerate(partitions):
        agg_id = f"aggregator-{a:02d}"
        agg = LiveAggregator(
            agg_id,
            controller.host,
            controller.port,
            expected_stages=len(owned),
            collect_timeout_s=collect_timeout_s,
            enforce_timeout_s=enforce_timeout_s,
            span_tracer=obs.tracer_for(agg_id),
            usage_meter=obs.meter_for(agg_id),
            metrics=obs.registry,
            coalesce=coalesce,
            codecs=offered,
        )
        await agg.start()
        aggregators.append(agg)
        for stage_id in owned:
            stage = LiveVirtualStage(
                agg.host,
                agg.port,
                stage_id=stage_id,
                job_id=stage_id.replace("stage", "job"),
                codecs=offered,
            )
            stages.append(stage)
            stage_tasks.append(asyncio.create_task(stage.run()))
        agg_tasks.append(asyncio.create_task(agg.run()))
    try:
        await controller.wait_for_aggregators()
        cycles = await controller.run_cycles(n_cycles)
    finally:
        await controller.shutdown()
        await obs.stop()
        for task in (*agg_tasks, *stage_tasks):
            task.cancel()
        await asyncio.gather(*agg_tasks, *stage_tasks, return_exceptions=True)
    return obs.finish(
        LiveRunResult(
            n_stages=n_stages,
            cycles=list(cycles),
            rules_applied_total=sum(s.rules_applied for s in stages),
            rules_stale_total=sum(s.rules_ignored_stale for s in stages),
            evictions=controller.evictions + sum(a.evictions for a in aggregators),
            reconnects=sum(s.reconnects for s in stages),
        )
    )


def run_live_hierarchical(
    n_stages: int = 40,
    n_aggregators: int = 4,
    n_cycles: int = 10,
    policy: Optional[QoSPolicy] = None,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
    observe: bool = False,
    metrics_port: Optional[int] = None,
    sample_interval_s: float = 0.05,
    codec: str = "binary",
    coalesce: bool = True,
    enforce_changed_only: bool = False,
    rule_change_tolerance: float = 0.0,
    use_uvloop: bool = False,
) -> LiveRunResult:
    """Run the hierarchical design over real localhost TCP sockets."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    if not 1 <= n_aggregators <= n_stages:
        raise ValueError("n_aggregators must be in [1, n_stages]")
    return _run_loop(
        _run_hier(
            n_stages,
            n_aggregators,
            n_cycles,
            policy,
            collect_timeout_s,
            enforce_timeout_s,
            observe=observe,
            metrics_port=metrics_port,
            sample_interval_s=sample_interval_s,
            codec=codec,
            coalesce=coalesce,
            enforce_changed_only=enforce_changed_only,
            rule_change_tolerance=rule_change_tolerance,
        ),
        use_uvloop,
    )
