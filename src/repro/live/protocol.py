"""Wire protocol for the live control plane: length-prefixed JSON.

Frames are ``[4-byte big-endian length][body]``. Bodies are dicts with a
mandatory ``kind`` field; the kinds mirror the simulated protocol exactly
(``collect_req``, ``metrics_reply``, ``rule``, ``rule_ack``, plus
``register``/``registered`` for session setup).

JSON keeps the protocol inspectable; the framing keeps reads exact. A
16 MiB frame cap (``MAX_FRAME``) guards against corrupt length headers —
orders of magnitude above any control message, far below the 4 GiB the
4-byte length field could express.

Hot-path frames may instead ride the binary fast-codec
(:mod:`repro.live.codec`): the first body byte discriminates (``0xB1``
binary vs ``{`` JSON), so :func:`decode_body` accepts both regardless of
what a session negotiated. Senders pick a codec per session at
registration (the ``codecs`` hello field / ``codec`` ack field, see
:func:`choose_codec`); kinds without a packed schema always fall back to
JSON even on a binary session. Codec ``binary2`` is revision 2 of the
packed schema — ``rule`` frames carry ``metadata_iops_limit`` — and is
only granted when both sides advertise it, so a mixed-version fleet
degrades per session to plain ``binary`` or JSON (where a missing
metadata limit means unlimited).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.live.codec import (
    BINARY_MAGIC,
    decode_binary,
    encode_binary,
    encode_binary_into,
)

__all__ = [
    "CODEC_PREFERENCE",
    "ProtocolError",
    "choose_codec",
    "encode",
    "encode_into",
    "read_frame",
    "read_message",
    "write_message",
]

_HEADER = struct.Struct(">I")
#: Sanity cap on frame size (16 MiB is orders beyond any control message).
MAX_FRAME = 16 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame or unexpected message."""


#: Codec preference order at negotiation (JSON is the implicit fallback).
CODEC_PREFERENCE = ("binary2", "binary")


def choose_codec(
    offered: Optional[Iterable[str]],
    supported: Optional[Iterable[str]] = None,
) -> str:
    """Pick the session codec from a peer's advertised ``codecs`` list.

    The newest binary revision both sides speak wins (``binary2`` over
    ``binary``); a peer that advertises nothing (an older client) gets
    JSON — the negotiation fallback that keeps mixed-version sessions
    working. ``supported`` restricts the grant to what the *local* side
    speaks (default: every binary revision).
    """
    if offered is None:
        return "json"
    offered_set = set(offered)
    supported_set = (
        set(CODEC_PREFERENCE) if supported is None else set(supported)
    )
    for codec in CODEC_PREFERENCE:
        if codec in offered_set and codec in supported_set:
            return codec
    return "json"


def encode(message: Dict[str, Any], codec: str = "json") -> bytes:
    """Encode a message dict into one wire frame.

    ``codec="binary"`` packs hot kinds via :mod:`repro.live.codec` and
    falls back to JSON for everything else; ``codec="binary2"`` packs the
    revision-2 schema (``rule`` frames carry the metadata limit).
    """
    buf = bytearray()
    encode_into(buf, message, codec)
    return bytes(buf)


def encode_into(
    buf: bytearray, message: Dict[str, Any], codec: str = "json"
) -> int:
    """Append one wire frame (header + body) to ``buf``; returns its size.

    The zero-copy send path: a sender appends every frame of a phase
    into one shared buffer (the session outbox) and writes it once —
    no per-frame ``bytes`` objects, no join. The 4-byte length header
    is reserved up front and back-filled once the body size is known.
    """
    if "kind" not in message:
        raise ProtocolError("message missing 'kind'")
    start = len(buf)
    buf += b"\x00\x00\x00\x00"  # header placeholder, back-filled below
    packed: Optional[int] = None
    if codec == "binary2":
        packed = encode_binary_into(message, buf, rev=2)
    elif codec == "binary":
        packed = encode_binary_into(message, buf)
    if packed is None:
        buf += json.dumps(message, separators=(",", ":")).encode("utf-8")
    length = len(buf) - start - _HEADER.size
    if length > MAX_FRAME:
        del buf[start:]
        raise ProtocolError(f"frame too large: {length}")
    _HEADER.pack_into(buf, start, length)
    return _HEADER.size + length


def decode_body(body: bytes) -> Dict[str, Any]:
    if body and body[0] == BINARY_MAGIC:
        try:
            # memoryview: string fields decode straight from the frame
            # buffer, with no intermediate slice copies.
            return decode_binary(memoryview(body))
        except ValueError as exc:
            raise ProtocolError(f"undecodable binary frame: {exc}") from exc
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError(f"frame is not a message: {message!r}")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[Dict[str, Any], int]:
    """Read one framed message plus its on-wire size in bytes.

    The size includes the 4-byte length header — what NIC accounting
    (:mod:`repro.obs.procfs`) charges per frame. Raises
    ``IncompleteReadError`` on EOF.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    body = await reader.readexactly(length)
    return decode_body(body), _HEADER.size + length


async def read_message(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one framed message (raises ``IncompleteReadError`` on EOF)."""
    message, _ = await read_frame(reader)
    return message


async def write_message(
    writer: asyncio.StreamWriter, message: Dict[str, Any], codec: str = "json"
) -> int:
    """Write one framed message and drain; returns the frame's size."""
    frame = encode(message, codec)
    writer.write(frame)
    await writer.drain()
    return len(frame)
