"""Wire protocol for the live control plane: length-prefixed JSON.

Frames are ``[4-byte big-endian length][UTF-8 JSON body]``. Bodies are
dicts with a mandatory ``kind`` field; the kinds mirror the simulated
protocol exactly (``collect_req``, ``metrics_reply``, ``rule``,
``rule_ack``, plus ``register``/``registered`` for session setup).

JSON keeps the protocol inspectable; the framing keeps reads exact. A
16 MiB frame cap (``MAX_FRAME``) guards against corrupt length headers —
orders of magnitude above any control message, far below the 4 GiB the
4-byte length field could express.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Tuple

__all__ = ["ProtocolError", "read_frame", "read_message", "write_message"]

_HEADER = struct.Struct(">I")
#: Sanity cap on frame size (16 MiB is orders beyond any control message).
MAX_FRAME = 16 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame or unexpected message."""


def encode(message: Dict[str, Any]) -> bytes:
    """Encode a message dict into one wire frame."""
    if "kind" not in message:
        raise ProtocolError("message missing 'kind'")
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(body)}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError(f"frame is not a message: {message!r}")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[Dict[str, Any], int]:
    """Read one framed message plus its on-wire size in bytes.

    The size includes the 4-byte length header — what NIC accounting
    (:mod:`repro.obs.procfs`) charges per frame. Raises
    ``IncompleteReadError`` on EOF.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    body = await reader.readexactly(length)
    return decode_body(body), _HEADER.size + length


async def read_message(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one framed message (raises ``IncompleteReadError`` on EOF)."""
    message, _ = await read_frame(reader)
    return message


async def write_message(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> int:
    """Write one framed message and drain; returns the frame's size."""
    frame = encode(message)
    writer.write(frame)
    await writer.drain()
    return len(frame)
