"""Live aggregator controller: the hierarchical design over real TCP.

A :class:`LiveAggregator` is simultaneously a server (stages connect to it
and register, exactly as they would to a flat controller) and a client (it
registers upstream with the global controller once its partition is
complete). Per control cycle it

1. receives ``agg_collect_req`` from the global controller,
2. fans ``collect_req`` out to its stages and gathers replies,
3. replies upstream with one compact ``agg_metrics_reply`` carrying the
   whole partition's demand vectors,
4. receives a ``rule_batch``, forwards per-stage ``rule`` messages,
   gathers acks, and acknowledges the batch.

This is the same state machine as the simulated
:class:`~repro.core.controller.AggregatorController`, over sockets.

Failure semantics mirror the live global controller: a stage whose
socket dies is evicted (and may re-register); with ``collect_timeout_s``
set, slow stages are left behind at their last-known demand and the
upstream reply reports how many were missing (``n_missing``), so the
global controller's degraded-cycle accounting spans the whole hierarchy.

Re-homing support (paper §VI dependability): the aggregator advertises
its listen address in the upstream hello; the global controller answers
every membership change with a ``topology`` frame listing all live
aggregators, which this aggregator fans out to its stages as ``rehome``
frames (peer addresses rotated per stage, so a dead aggregator's
partition spreads across the survivors instead of dog-piling one). A
stage that registers *after* the upstream link is up is an adoption —
an orphan fleeing a dead peer — and is announced upstream with a
``partition_update`` so the global controller re-homes its bookkeeping.
With ``expected_stages=0`` the aggregator starts as a hot spare: it
registers upstream immediately with an empty partition and exists only
to adopt orphans. On upstream loss without an explicit ``shutdown``
frame the aggregator *releases* its stages (closes their sockets without
telling them to stop) so they re-home through their reconnect loops.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Dict, List, Optional, Tuple

from repro.live.protocol import (
    ProtocolError,
    choose_codec,
    read_message,
    write_message,
)
from repro.live.sessions import Session, SessionClosed, gather_phase
from repro.obs.spans import NullSpanTracer

__all__ = ["LiveAggregator"]


class _StageSession(Session):
    def __init__(self, stage_id: str, job_id: str, reader, writer, meter=None) -> None:
        super().__init__(stage_id, reader, writer, meter=meter)
        self.job_id = job_id
        # Per-axis last-known demand: the upstream fallback for a dead
        # socket must keep the data/metadata split, not a summed scalar.
        self.latest_data_demand = 0.0
        self.latest_metadata_demand = 0.0

    @property
    def latest_demand(self) -> float:
        """Summed last-known demand (back-compat upstream vector)."""
        return self.latest_data_demand + self.latest_metadata_demand

    @property
    def stage_id(self) -> str:
        return self.peer_id


class LiveAggregator:
    """One aggregator: serves a stage partition, reports upstream."""

    def __init__(
        self,
        aggregator_id: str,
        global_host: str,
        global_port: int,
        expected_stages: int,
        host: str = "127.0.0.1",
        port: int = 0,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        coalesce: bool = True,
        codecs: Tuple[str, ...] = ("binary2", "binary", "json"),
        span_tracer=None,
        usage_meter=None,
        metrics=None,
        session_outbox_bytes: Optional[int] = None,
    ) -> None:
        if expected_stages < 0:
            raise ValueError(f"expected_stages must be >= 0: {expected_stages}")
        for name, value in (
            ("collect_timeout_s", collect_timeout_s),
            ("enforce_timeout_s", enforce_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        self.aggregator_id = aggregator_id
        self.global_host = global_host
        self.global_port = global_port
        self.expected_stages = expected_stages
        self.host = host
        self.port = port
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = (
            enforce_timeout_s if enforce_timeout_s is not None else collect_timeout_s
        )
        #: One drain per session per phase instead of one per frame.
        self.coalesce = coalesce
        #: Per-stage-session outbound bound (bytes); None = unbounded.
        #: Same contract as the controllers: enable with phase deadlines.
        self.session_outbox_bytes = session_outbox_bytes
        #: Codecs advertised upstream (and granted to stages that offer
        #: them); ``("json",)`` emulates a pre-binary aggregator.
        self.offered_codecs = tuple(codecs)
        #: Codec negotiated with the global controller for this session.
        self.up_codec = "json"
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.meter = usage_meter
        self.metrics = metrics
        # Resolved once; registry lookups are too slow per cycle.
        if metrics is not None:
            self._m_cycles = metrics.counter(
                "repro_cycles_total", "control cycles completed", role="aggregator"
            )
            self._m_evictions = metrics.counter(
                "repro_evictions_total",
                "sessions dropped after their socket died",
                role="aggregator",
            )
        self.sessions: Dict[str, _StageSession] = {}
        self.cycles_served = 0
        self.evictions = 0
        self._outbox_shed_evicted = 0
        self.registrations_rejected = 0
        #: Live peer aggregators ``(host, port)`` from the last topology
        #: frame, excluding this aggregator — the stages' rehome targets.
        self.peer_addresses: List[Tuple[str, int]] = []
        #: ``rehome`` frames pushed to stages.
        self.rehomes_sent = 0
        #: Stages adopted after upstream registration (orphans re-homed
        #: here), announced upstream via ``partition_update``.
        self.adoptions = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()
        if expected_stages == 0:  # hot spare: nothing to wait for
            self._all_registered.set()
        self._stop = asyncio.Event()
        self._paused = asyncio.Event()
        self._paused.set()
        self._up_writer: Optional[asyncio.StreamWriter] = None
        self._killed = False

    def _cpu(self):
        """CPU-attribution context for synchronous critical sections."""
        return self.meter.cpu() if self.meter is not None else contextlib.nullcontext()

    async def _send_up(self, up_writer, message: dict) -> None:
        """Write an upstream frame, charging its bytes to this aggregator."""
        nbytes = await write_message(up_writer, message, self.up_codec)
        if self.meter is not None:
            self.meter.add_tx(nbytes)

    # -- fault-injection hooks (see repro.live.faults) -----------------------
    def kill(self) -> None:
        """Die abruptly: abort every socket, stop listening (process kill).

        The global controller sees EOF and orphans this partition; the
        stages see EOF (then connection-refused on retry) and rotate to
        the alternate aggregators they learnt from ``rehome`` frames.
        """
        self._killed = True
        up = self._up_writer
        if up is not None and up.transport is not None:
            up.transport.abort()
        for session in list(self.sessions.values()):
            if session.writer.transport is not None:
                session.writer.transport.abort()
        if self._server is not None:
            self._server.close()

    def pause(self) -> None:
        """Stall: stop handling upstream frames; sockets stay open."""
        self._paused.clear()

    def resume(self) -> None:
        """Resume after :meth:`pause`; the backlog is then served."""
        self._paused.set()

    # -- re-homing ------------------------------------------------------------
    def _alternates_for(self, index: int) -> List[List[object]]:
        """Peer addresses rotated by ``index`` (spread re-homed stages)."""
        peers = self.peer_addresses
        if not peers:
            return []
        k = index % len(peers)
        return [[h, p] for h, p in peers[k:] + peers[:k]]

    async def _apply_topology(self, aggregators: List[dict]) -> None:
        """Adopt a topology frame: remember peers, re-arm every stage."""
        self.peer_addresses = [
            (a["host"], int(a["port"]))
            for a in aggregators
            if a.get("aggregator_id") != self.aggregator_id
        ]
        for i, stage_id in enumerate(sorted(self.sessions)):
            session = self.sessions[stage_id]
            try:
                await session.send(
                    {"kind": "rehome", "alternates": self._alternates_for(i)}
                )
                self.rehomes_sent += 1
            except SessionClosed:
                await self._evict(session)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Listen for stage registrations; ``self.port`` gets the bound port."""
        self._server = await asyncio.start_server(
            self._on_stage_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _on_stage_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except (asyncio.IncompleteReadError, ProtocolError, ConnectionError, OSError):
            writer.close()
            return
        if hello.get("kind") != "register":
            writer.close()
            return
        stage_id = hello.get("stage_id")
        job_id = hello.get("job_id")
        error = None
        if not stage_id or not job_id:
            error = "register requires stage_id and job_id"
        elif stage_id in self.sessions:
            error = f"stage_id already registered: {stage_id}"
        if error is not None:
            self.registrations_rejected += 1
            try:
                await write_message(
                    writer, {"kind": "register_error", "reason": error}
                )
            except (ConnectionError, OSError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        session = _StageSession(stage_id, job_id, reader, writer, meter=self.meter)
        session.outbox.max_bytes = self.session_outbox_bytes
        # Grant the newest codec both sides speak (mixed-version safe):
        # the stage's offer intersected with what *we* were built with.
        session.codec = choose_codec(
            hello.get("codecs"), supported=self.offered_codecs
        )
        self.sessions[session.stage_id] = session
        # Late joiners get the current alternate list with the ack, so a
        # re-homed orphan is immediately armed against *this* home dying.
        ack: dict = {"kind": "registered", "codec": session.codec}
        if self.peer_addresses:
            ack["alternates"] = self._alternates_for(len(self.sessions) - 1)
        await write_message(writer, ack)
        session.start()
        if len(self.sessions) >= self.expected_stages:
            self._all_registered.set()
        # A registration after the upstream link is up is an adoption
        # (an orphan re-homing here, or one of our own stages returning);
        # the global controller dedups re-registrations of owned stages.
        if self._up_writer is not None:
            self.adoptions += 1
            try:
                await self._send_up(
                    self._up_writer,
                    {
                        "kind": "partition_update",
                        "aggregator_id": self.aggregator_id,
                        "added": [{"stage_id": stage_id, "job_id": job_id}],
                    },
                )
            except (ConnectionError, OSError):
                pass  # upstream is dying; the next topology pass catches up

    async def _evict(self, session: _StageSession) -> None:
        if self.sessions.get(session.stage_id) is session:
            del self.sessions[session.stage_id]
            self.evictions += 1
            self._outbox_shed_evicted += session.outbox.frames_shed
            if self.metrics is not None:
                self._m_evictions.inc()
        await session.close()

    @property
    def outbox_frames_shed(self) -> int:
        """Frames shed across stage sessions, living and evicted."""
        return self._outbox_shed_evicted + sum(
            s.outbox.frames_shed for s in self.sessions.values()
        )

    async def run(self, stage_timeout_s: float = 30.0) -> None:
        """Register upstream once the partition is complete, then serve."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=stage_timeout_s)
        reader, writer = await asyncio.open_connection(
            self.global_host, self.global_port
        )
        self._up_writer = writer
        try:
            await self._send_up(
                writer,
                {
                    "kind": "register_aggregator",
                    "aggregator_id": self.aggregator_id,
                    "stage_ids": sorted(self.sessions),
                    "job_ids": [
                        self.sessions[s].job_id for s in sorted(self.sessions)
                    ],
                    "host": self.host,
                    "port": self.port,
                    "codecs": list(self.offered_codecs),
                },
            )
            ack = await read_message(reader)
            if ack["kind"] != "registered":
                raise RuntimeError(f"unexpected registration reply: {ack}")
            granted = ack.get("codec", "json")
            self.up_codec = (
                granted if granted in self.offered_codecs else "json"
            )
            from repro.live.protocol import read_frame

            while not self._stop.is_set():
                try:
                    message, nbytes = await read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    ProtocolError,
                    ConnectionError,
                    OSError,
                ):
                    break
                if self.meter is not None:
                    self.meter.add_rx(nbytes)
                await self._paused.wait()
                await self._handle(message, writer)
        finally:
            self._up_writer = None
            if self._stop.is_set():
                # Deliberate shutdown: take the stages down with us.
                await self._shutdown_stages()
            else:
                # Upstream lost (global death, our kill): *release* the
                # stages — close their sockets without a shutdown frame so
                # their reconnect loops re-home them to live aggregators.
                await self._release_stages()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
            if self._server is not None:
                self._server.close()
                # Wait for the listen socket to actually release: without
                # this, a back-to-back restart on the same port races the
                # in-flight close and flakes with EADDRINUSE on slow CI.
                with contextlib.suppress(ConnectionError, OSError):
                    await self._server.wait_closed()

    async def _handle(self, message, up_writer) -> None:
        kind = message["kind"]
        if kind == "agg_collect_req":
            await self._collect(message["epoch"], up_writer)
        elif kind == "rule_batch":
            await self._distribute(message, up_writer)
        elif kind == "topology":
            await self._apply_topology(message.get("aggregators", []))
        elif kind == "shutdown":
            self._stop.set()

    # -- cycle halves ---------------------------------------------------------
    async def _collect(self, epoch: int, up_writer) -> None:
        self.cycles_served += 1
        started = self.tracer.now()
        if self.metrics is not None:
            self._m_cycles.inc()
        sessions = [self.sessions[s] for s in sorted(self.sessions)]
        polled: List[_StageSession] = []
        missing_ids = set()
        with self._cpu():
            for s in sessions:
                try:
                    s.feed({"kind": "collect_req", "epoch": epoch})
                    if not self.coalesce:
                        await s.flush()
                    polled.append(s)
                except SessionClosed:
                    await self._evict(s)
                    missing_ids.add(s.stage_id)
            if self.coalesce:
                alive: List[_StageSession] = []
                for s in polled:
                    try:
                        await s.flush()
                        alive.append(s)
                    except SessionClosed:
                        await self._evict(s)
                        missing_ids.add(s.stage_id)
                polled = alive

        async def read_reply(s: _StageSession) -> None:
            m = await s.expect("metrics_reply", epoch)
            s.latest_data_demand = float(m["data_iops"])
            s.latest_metadata_demand = float(m["metadata_iops"])

        missing, _ = await gather_phase(polled, read_reply, self.collect_timeout_s)
        for s in missing:
            missing_ids.add(s.stage_id)
            if not s.connected:
                await self._evict(s)
        # Report the full partition upstream — absent stages ride at their
        # last-known demand and are flagged so the global controller's
        # degraded-cycle accounting sees through the aggregation.
        with self._cpu():
            await self._send_up(
                up_writer,
                {
                    "kind": "agg_metrics_reply",
                    "epoch": epoch,
                    "aggregator_id": self.aggregator_id,
                    "stage_ids": [s.stage_id for s in sessions],
                    "job_ids": [s.job_id for s in sessions],
                    # ``demands`` stays the summed vector for pre-rev-2
                    # global controllers; new ones read the per-axis pair.
                    "demands": [s.latest_demand for s in sessions],
                    "data_demands": [s.latest_data_demand for s in sessions],
                    "metadata_demands": [
                        s.latest_metadata_demand for s in sessions
                    ],
                    "n_missing": len(missing_ids),
                },
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "collect", started, self.tracer.now() - started,
                parent="cycle", epoch=epoch, n_missing=len(missing_ids),
            )

    async def _distribute(self, message, up_writer) -> None:
        epoch = message["epoch"]
        rules = message["rules"]
        started = self.tracer.now()
        targets: List[_StageSession] = []
        with self._cpu():
            for rule in rules:
                session = self.sessions.get(rule["stage_id"])
                if session is None:
                    continue
                forwarded = {
                    "kind": "rule",
                    "epoch": epoch,
                    "stage_id": rule["stage_id"],
                    "data_iops_limit": rule["data_iops_limit"],
                }
                if "metadata_iops_limit" in rule:
                    forwarded["metadata_iops_limit"] = rule[
                        "metadata_iops_limit"
                    ]
                try:
                    # Sheddable under outbox pressure: superseded by the
                    # next epoch's rule; the missing ack resolves through
                    # the enforce deadline.
                    session.feed(forwarded, sheddable=True)
                    if not self.coalesce:
                        await session.flush()
                    targets.append(session)
                except SessionClosed:
                    await self._evict(session)
            if self.coalesce:
                alive: List[_StageSession] = []
                for session in targets:
                    try:
                        await session.flush()
                        alive.append(session)
                    except SessionClosed:
                        await self._evict(session)
                targets = alive

        missing, _ = await gather_phase(
            targets, lambda s: s.expect("rule_ack", epoch), self.enforce_timeout_s
        )
        for s in missing:
            if not s.connected:
                await self._evict(s)
        with self._cpu():
            await self._send_up(
                up_writer,
                {
                    "kind": "batch_ack",
                    "epoch": epoch,
                    "aggregator_id": self.aggregator_id,
                },
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "enforce", started, self.tracer.now() - started,
                parent="cycle", epoch=epoch, n_rules=len(rules),
            )

    async def _shutdown_stages(self) -> None:
        for session in list(self.sessions.values()):
            try:
                await session.send({"kind": "shutdown"})
            except SessionClosed:
                pass
            await session.close()
        self.sessions.clear()

    async def _release_stages(self) -> None:
        """Drop stage sessions *without* telling the stages to stop."""
        for session in list(self.sessions.values()):
            await session.close()
        self.sessions.clear()
