"""Live aggregator controller: the hierarchical design over real TCP.

A :class:`LiveAggregator` is simultaneously a server (stages connect to it
and register, exactly as they would to a flat controller) and a client (it
registers upstream with the global controller once its partition is
complete). Per control cycle it

1. receives ``agg_collect_req`` from the global controller,
2. fans ``collect_req`` out to its stages and gathers replies,
3. replies upstream with one compact ``agg_metrics_reply`` carrying the
   whole partition's demand vectors,
4. receives a ``rule_batch``, forwards per-stage ``rule`` messages,
   gathers acks, and acknowledges the batch.

This is the same state machine as the simulated
:class:`~repro.core.controller.AggregatorController`, over sockets.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.live.protocol import read_message, write_message

__all__ = ["LiveAggregator"]


class _StageSession:
    def __init__(self, stage_id: str, job_id: str, reader, writer) -> None:
        self.stage_id = stage_id
        self.job_id = job_id
        self.reader = reader
        self.writer = writer


class LiveAggregator:
    """One aggregator: serves a stage partition, reports upstream."""

    def __init__(
        self,
        aggregator_id: str,
        global_host: str,
        global_port: int,
        expected_stages: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if expected_stages < 1:
            raise ValueError(f"expected_stages must be >= 1: {expected_stages}")
        self.aggregator_id = aggregator_id
        self.global_host = global_host
        self.global_port = global_port
        self.expected_stages = expected_stages
        self.host = host
        self.port = port
        self.sessions: Dict[str, _StageSession] = {}
        self.cycles_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._all_registered = asyncio.Event()
        self._stop = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Listen for stage registrations; ``self.port`` gets the bound port."""
        self._server = await asyncio.start_server(
            self._on_stage_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _on_stage_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
        except asyncio.IncompleteReadError:
            writer.close()
            return
        if hello.get("kind") != "register":
            writer.close()
            return
        session = _StageSession(hello["stage_id"], hello["job_id"], reader, writer)
        self.sessions[session.stage_id] = session
        await write_message(writer, {"kind": "registered"})
        if len(self.sessions) >= self.expected_stages:
            self._all_registered.set()

    async def run(self, stage_timeout_s: float = 30.0) -> None:
        """Register upstream once the partition is complete, then serve."""
        await asyncio.wait_for(self._all_registered.wait(), timeout=stage_timeout_s)
        reader, writer = await asyncio.open_connection(
            self.global_host, self.global_port
        )
        try:
            await write_message(
                writer,
                {
                    "kind": "register_aggregator",
                    "aggregator_id": self.aggregator_id,
                    "stage_ids": sorted(self.sessions),
                    "job_ids": [
                        self.sessions[s].job_id for s in sorted(self.sessions)
                    ],
                },
            )
            ack = await read_message(reader)
            if ack["kind"] != "registered":
                raise RuntimeError(f"unexpected registration reply: {ack}")
            while not self._stop.is_set():
                try:
                    message = await read_message(reader)
                except asyncio.IncompleteReadError:
                    break
                await self._handle(message, writer)
        finally:
            await self._shutdown_stages()
            writer.close()
            if self._server is not None:
                self._server.close()

    async def _handle(self, message, up_writer) -> None:
        kind = message["kind"]
        if kind == "agg_collect_req":
            await self._collect(message["epoch"], up_writer)
        elif kind == "rule_batch":
            await self._distribute(message, up_writer)
        elif kind == "shutdown":
            self._stop.set()

    # -- cycle halves ---------------------------------------------------------
    async def _collect(self, epoch: int, up_writer) -> None:
        self.cycles_served += 1
        sessions = [self.sessions[s] for s in sorted(self.sessions)]
        for s in sessions:
            await write_message(s.writer, {"kind": "collect_req", "epoch": epoch})
        demands: Dict[str, float] = {}

        async def read_reply(s: _StageSession) -> None:
            while True:
                m = await read_message(s.reader)
                if m["kind"] == "metrics_reply" and m["epoch"] == epoch:
                    demands[s.stage_id] = m["data_iops"] + m["metadata_iops"]
                    return

        await asyncio.gather(*(read_reply(s) for s in sessions))
        await write_message(
            up_writer,
            {
                "kind": "agg_metrics_reply",
                "epoch": epoch,
                "aggregator_id": self.aggregator_id,
                "stage_ids": [s.stage_id for s in sessions],
                "job_ids": [s.job_id for s in sessions],
                "demands": [demands[s.stage_id] for s in sessions],
            },
        )

    async def _distribute(self, message, up_writer) -> None:
        epoch = message["epoch"]
        rules = message["rules"]
        targets = []
        for rule in rules:
            session = self.sessions.get(rule["stage_id"])
            if session is None:
                continue
            await write_message(
                session.writer,
                {
                    "kind": "rule",
                    "epoch": epoch,
                    "stage_id": rule["stage_id"],
                    "data_iops_limit": rule["data_iops_limit"],
                },
            )
            targets.append(session)

        async def read_ack(s: _StageSession) -> None:
            while True:
                m = await read_message(s.reader)
                if m["kind"] == "rule_ack" and m["epoch"] == epoch:
                    return

        await asyncio.gather(*(read_ack(s) for s in targets))
        await write_message(
            up_writer,
            {
                "kind": "batch_ack",
                "epoch": epoch,
                "aggregator_id": self.aggregator_id,
            },
        )

    async def _shutdown_stages(self) -> None:
        for session in self.sessions.values():
            try:
                await write_message(session.writer, {"kind": "shutdown"})
                session.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
