"""Binary fast-codec for the live control plane's hot frame kinds.

The live wire protocol is length-prefixed JSON (:mod:`repro.live.protocol`);
JSON keeps frames inspectable but costs a ``dumps``/``loads`` round-trip per
frame on the per-stage hot path. This module packs the four per-cycle frame
kinds — ``collect_req``, ``metrics_reply``, ``rule``, ``rule_ack`` — with
:mod:`struct` instead.

Wire form (the frame *body*; the 4-byte length header is unchanged)::

    [0xB1][kind tag, 1 byte][packed fields...]

Strings ride as ``>H``-length-prefixed UTF-8. The magic byte ``0xB1`` can
never begin a JSON body (JSON text starts with ``{`` = 0x7B here), so a
receiver distinguishes the codecs from the first body byte alone — no
per-session mode switch is needed on the read side, which is what makes
mixed-version sessions (binary controller, JSON stage) safe.

Kinds outside :data:`BINARY_KINDS` (registration, topology, rehome,
shutdown, ...) always fall back to JSON: they are rare, structurally
varied, and not worth a schema. :func:`encode_binary` returns ``None`` for
them and the caller keeps the JSON path.

**Codec revision 2** ("binary2" on the negotiation wire) adds the
metadata QoS axis to ``rule`` frames as a new tag (``_TAG_RULE_V2``)
carrying both ``data_iops_limit`` and ``metadata_iops_limit``. Decoding
understands the new tag *unconditionally* — any rev-2-capable reader
accepts it regardless of what the session negotiated — but encoding only
emits it when the session granted ``binary2``: a rev-1 peer would reject
tag 5 as unknown, so senders on plain ``binary`` sessions keep packing
the legacy tag (the metadata limit is simply dropped and the old peer
defaults it to unlimited, same as the JSON path's missing key).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional, Union

__all__ = [
    "BINARY_KINDS",
    "BINARY_MAGIC",
    "decode_binary",
    "encode_binary",
    "encode_binary_into",
    "is_binary",
]

Buffer = Union[bytes, bytearray, memoryview]

#: First body byte of every binary frame (never valid leading JSON).
BINARY_MAGIC = 0xB1

#: Frame kinds with a packed representation (the per-cycle hot path).
BINARY_KINDS = frozenset({"collect_req", "metrics_reply", "rule", "rule_ack"})

_TAG_COLLECT_REQ = 1
_TAG_METRICS_REPLY = 2
_TAG_RULE = 3
_TAG_RULE_ACK = 4
_TAG_RULE_V2 = 5  # rule + metadata_iops_limit (codec rev 2 / "binary2")

_HEAD = struct.Struct(">BB")  # magic, kind tag
_Q = struct.Struct(">q")  # epoch
_D = struct.Struct(">d")  # one float field
_DD = struct.Struct(">dd")  # two float fields
_H = struct.Struct(">H")  # string length prefix


# Reusable pack buffer: every packable frame fits (two maximal strings
# plus the fixed fields). Encoders pack fields into this scratch with
# ``pack_into`` and append one contiguous span to the caller's buffer —
# no per-field ``bytes`` concatenation chain. Safe because the live
# plane encodes frames from a single event loop (and shard workers are
# separate processes with their own module state).
_SCRATCH = bytearray(2 * (0xFFFF + _H.size) + _HEAD.size + _Q.size + _DD.size)


def _put_str(out: bytearray, offset: int, value: str) -> int:
    raw = value.encode("utf-8")
    length = len(raw)
    if length > 0xFFFF:
        raise ValueError(f"string field too long for binary codec: {length}")
    _H.pack_into(out, offset, length)
    offset += _H.size
    out[offset : offset + length] = raw
    return offset + length


def _unpack_str(body: Buffer, offset: int) -> tuple:
    (length,) = _H.unpack_from(body, offset)
    offset += _H.size
    end = offset + length
    if end > len(body):
        raise ValueError("truncated string field")
    # str(buffer, encoding) decodes any bytes-like directly: a
    # memoryview slice is zero-copy, so no intermediate bytes object is
    # materialized for the string field.
    return str(body[offset:end], "utf-8"), end


def is_binary(body: Buffer) -> bool:
    """Whether a frame body is binary-coded (first-byte discriminator)."""
    return bool(body) and body[0] == BINARY_MAGIC


def encode_binary(message: Dict[str, Any], rev: int = 1) -> Optional[bytes]:
    """Packed body for ``message``, or ``None`` if it has no packed form.

    ``rev=2`` (a "binary2" session) packs ``rule`` frames with the
    metadata limit (``_TAG_RULE_V2``); ``rev=1`` keeps the legacy tag so
    old readers stay compatible. ``None`` means "use JSON": the kind has
    no schema, or a string field exceeds the codec's 64 KiB ``>H`` length
    prefix (an oversized ``stage_id`` must degrade to the JSON path, not
    crash the sender's whole phase). Raises ``KeyError`` on a hot-kind
    message missing a mandatory field — the same contract violation JSON
    encoding would ship and the peer would reject.
    """
    out = bytearray()
    if encode_binary_into(message, out, rev) is None:
        return None
    return bytes(out)


def encode_binary_into(
    message: Dict[str, Any], out: bytearray, rev: int = 1
) -> Optional[int]:
    """Append the packed body for ``message`` to ``out``.

    Returns the number of bytes appended, or ``None`` (with ``out``
    untouched) when the message has no packed form — same fallback
    contract as :func:`encode_binary`. Fields are packed into the module
    scratch buffer via ``pack_into`` and copied out in one extend, so a
    frame costs zero intermediate ``bytes`` objects beyond the UTF-8
    encoding of its string fields.
    """
    kind = message["kind"]
    s = _SCRATCH
    try:
        if kind == "collect_req":
            _HEAD.pack_into(s, 0, BINARY_MAGIC, _TAG_COLLECT_REQ)
            _Q.pack_into(s, _HEAD.size, message["epoch"])
            n = _HEAD.size + _Q.size
        elif kind == "metrics_reply":
            _HEAD.pack_into(s, 0, BINARY_MAGIC, _TAG_METRICS_REPLY)
            _Q.pack_into(s, _HEAD.size, message["epoch"])
            _DD.pack_into(
                s,
                _HEAD.size + _Q.size,
                message["data_iops"],
                message["metadata_iops"],
            )
            n = _put_str(
                s, _HEAD.size + _Q.size + _DD.size, message["stage_id"]
            )
            n = _put_str(s, n, message["job_id"])
        elif kind == "rule":
            if rev >= 2:
                _HEAD.pack_into(s, 0, BINARY_MAGIC, _TAG_RULE_V2)
                _Q.pack_into(s, _HEAD.size, message["epoch"])
                _DD.pack_into(
                    s,
                    _HEAD.size + _Q.size,
                    message["data_iops_limit"],
                    message.get("metadata_iops_limit", float("inf")),
                )
                n = _put_str(
                    s, _HEAD.size + _Q.size + _DD.size, message["stage_id"]
                )
            else:
                _HEAD.pack_into(s, 0, BINARY_MAGIC, _TAG_RULE)
                _Q.pack_into(s, _HEAD.size, message["epoch"])
                _D.pack_into(
                    s, _HEAD.size + _Q.size, message["data_iops_limit"]
                )
                n = _put_str(
                    s, _HEAD.size + _Q.size + _D.size, message["stage_id"]
                )
        elif kind == "rule_ack":
            _HEAD.pack_into(s, 0, BINARY_MAGIC, _TAG_RULE_ACK)
            _Q.pack_into(s, _HEAD.size, message["epoch"])
            n = _put_str(s, _HEAD.size + _Q.size, message["stage_id"])
        else:
            return None
    except ValueError:
        return None  # unpackable string field: JSON fallback
    out += memoryview(s)[:n]
    return n


def decode_binary(body: Buffer) -> Dict[str, Any]:
    """Decode a packed body back into the canonical message dict.

    Accepts any bytes-like input; pass a ``memoryview`` to decode
    without copying (string fields are decoded straight from the
    underlying buffer — see :func:`_unpack_str`).

    Raises ``ValueError`` on malformed input (wrong magic, unknown tag,
    truncation) — the caller maps it to its protocol error type.
    """
    try:
        magic, tag = _HEAD.unpack_from(body, 0)
    except struct.error as exc:
        raise ValueError(f"truncated binary frame: {exc}") from exc
    if magic != BINARY_MAGIC:
        raise ValueError(f"bad binary magic: {magic:#x}")
    offset = _HEAD.size
    try:
        if tag == _TAG_COLLECT_REQ:
            (epoch,) = _Q.unpack_from(body, offset)
            return {"kind": "collect_req", "epoch": epoch}
        if tag == _TAG_METRICS_REPLY:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            data_iops, metadata_iops = _DD.unpack_from(body, offset)
            offset += _DD.size
            stage_id, offset = _unpack_str(body, offset)
            job_id, offset = _unpack_str(body, offset)
            return {
                "kind": "metrics_reply",
                "epoch": epoch,
                "stage_id": stage_id,
                "job_id": job_id,
                "data_iops": data_iops,
                "metadata_iops": metadata_iops,
            }
        if tag == _TAG_RULE:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            (limit,) = _D.unpack_from(body, offset)
            offset += _D.size
            stage_id, offset = _unpack_str(body, offset)
            return {
                "kind": "rule",
                "epoch": epoch,
                "stage_id": stage_id,
                "data_iops_limit": limit,
            }
        if tag == _TAG_RULE_V2:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            limit, metadata_limit = _DD.unpack_from(body, offset)
            offset += _DD.size
            stage_id, offset = _unpack_str(body, offset)
            return {
                "kind": "rule",
                "epoch": epoch,
                "stage_id": stage_id,
                "data_iops_limit": limit,
                "metadata_iops_limit": metadata_limit,
            }
        if tag == _TAG_RULE_ACK:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            stage_id, offset = _unpack_str(body, offset)
            return {"kind": "rule_ack", "epoch": epoch, "stage_id": stage_id}
    except struct.error as exc:
        raise ValueError(f"truncated binary frame: {exc}") from exc
    raise ValueError(f"unknown binary frame tag: {tag}")
