"""Binary fast-codec for the live control plane's hot frame kinds.

The live wire protocol is length-prefixed JSON (:mod:`repro.live.protocol`);
JSON keeps frames inspectable but costs a ``dumps``/``loads`` round-trip per
frame on the per-stage hot path. This module packs the four per-cycle frame
kinds — ``collect_req``, ``metrics_reply``, ``rule``, ``rule_ack`` — with
:mod:`struct` instead.

Wire form (the frame *body*; the 4-byte length header is unchanged)::

    [0xB1][kind tag, 1 byte][packed fields...]

Strings ride as ``>H``-length-prefixed UTF-8. The magic byte ``0xB1`` can
never begin a JSON body (JSON text starts with ``{`` = 0x7B here), so a
receiver distinguishes the codecs from the first body byte alone — no
per-session mode switch is needed on the read side, which is what makes
mixed-version sessions (binary controller, JSON stage) safe.

Kinds outside :data:`BINARY_KINDS` (registration, topology, rehome,
shutdown, ...) always fall back to JSON: they are rare, structurally
varied, and not worth a schema. :func:`encode_binary` returns ``None`` for
them and the caller keeps the JSON path.

**Codec revision 2** ("binary2" on the negotiation wire) adds the
metadata QoS axis to ``rule`` frames as a new tag (``_TAG_RULE_V2``)
carrying both ``data_iops_limit`` and ``metadata_iops_limit``. Decoding
understands the new tag *unconditionally* — any rev-2-capable reader
accepts it regardless of what the session negotiated — but encoding only
emits it when the session granted ``binary2``: a rev-1 peer would reject
tag 5 as unknown, so senders on plain ``binary`` sessions keep packing
the legacy tag (the metadata limit is simply dropped and the old peer
defaults it to unlimited, same as the JSON path's missing key).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional

__all__ = [
    "BINARY_KINDS",
    "BINARY_MAGIC",
    "decode_binary",
    "encode_binary",
    "is_binary",
]

#: First body byte of every binary frame (never valid leading JSON).
BINARY_MAGIC = 0xB1

#: Frame kinds with a packed representation (the per-cycle hot path).
BINARY_KINDS = frozenset({"collect_req", "metrics_reply", "rule", "rule_ack"})

_TAG_COLLECT_REQ = 1
_TAG_METRICS_REPLY = 2
_TAG_RULE = 3
_TAG_RULE_ACK = 4
_TAG_RULE_V2 = 5  # rule + metadata_iops_limit (codec rev 2 / "binary2")

_HEAD = struct.Struct(">BB")  # magic, kind tag
_Q = struct.Struct(">q")  # epoch
_D = struct.Struct(">d")  # one float field
_DD = struct.Struct(">dd")  # two float fields
_H = struct.Struct(">H")  # string length prefix


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError(f"string field too long for binary codec: {len(raw)}")
    return _H.pack(len(raw)) + raw


def _unpack_str(body: bytes, offset: int) -> tuple:
    (length,) = _H.unpack_from(body, offset)
    offset += _H.size
    end = offset + length
    if end > len(body):
        raise ValueError("truncated string field")
    return body[offset:end].decode("utf-8"), end


def is_binary(body: bytes) -> bool:
    """Whether a frame body is binary-coded (first-byte discriminator)."""
    return bool(body) and body[0] == BINARY_MAGIC


def encode_binary(message: Dict[str, Any], rev: int = 1) -> Optional[bytes]:
    """Packed body for ``message``, or ``None`` if it has no packed form.

    ``rev=2`` (a "binary2" session) packs ``rule`` frames with the
    metadata limit (``_TAG_RULE_V2``); ``rev=1`` keeps the legacy tag so
    old readers stay compatible. ``None`` means "use JSON": the kind has
    no schema, or a string field exceeds the codec's 64 KiB ``>H`` length
    prefix (an oversized ``stage_id`` must degrade to the JSON path, not
    crash the sender's whole phase). Raises ``KeyError`` on a hot-kind
    message missing a mandatory field — the same contract violation JSON
    encoding would ship and the peer would reject.
    """
    try:
        return _encode_binary(message, rev)
    except ValueError:
        return None  # unpackable string field: JSON fallback


def _encode_binary(message: Dict[str, Any], rev: int = 1) -> Optional[bytes]:
    kind = message["kind"]
    if kind == "collect_req":
        return _HEAD.pack(BINARY_MAGIC, _TAG_COLLECT_REQ) + _Q.pack(
            message["epoch"]
        )
    if kind == "metrics_reply":
        return (
            _HEAD.pack(BINARY_MAGIC, _TAG_METRICS_REPLY)
            + _Q.pack(message["epoch"])
            + _DD.pack(message["data_iops"], message["metadata_iops"])
            + _pack_str(message["stage_id"])
            + _pack_str(message["job_id"])
        )
    if kind == "rule":
        if rev >= 2:
            return (
                _HEAD.pack(BINARY_MAGIC, _TAG_RULE_V2)
                + _Q.pack(message["epoch"])
                + _DD.pack(
                    message["data_iops_limit"],
                    message.get("metadata_iops_limit", float("inf")),
                )
                + _pack_str(message["stage_id"])
            )
        return (
            _HEAD.pack(BINARY_MAGIC, _TAG_RULE)
            + _Q.pack(message["epoch"])
            + _D.pack(message["data_iops_limit"])
            + _pack_str(message["stage_id"])
        )
    if kind == "rule_ack":
        return (
            _HEAD.pack(BINARY_MAGIC, _TAG_RULE_ACK)
            + _Q.pack(message["epoch"])
            + _pack_str(message["stage_id"])
        )
    return None


def decode_binary(body: bytes) -> Dict[str, Any]:
    """Decode a packed body back into the canonical message dict.

    Raises ``ValueError`` on malformed input (wrong magic, unknown tag,
    truncation) — the caller maps it to its protocol error type.
    """
    try:
        magic, tag = _HEAD.unpack_from(body, 0)
    except struct.error as exc:
        raise ValueError(f"truncated binary frame: {exc}") from exc
    if magic != BINARY_MAGIC:
        raise ValueError(f"bad binary magic: {magic:#x}")
    offset = _HEAD.size
    try:
        if tag == _TAG_COLLECT_REQ:
            (epoch,) = _Q.unpack_from(body, offset)
            return {"kind": "collect_req", "epoch": epoch}
        if tag == _TAG_METRICS_REPLY:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            data_iops, metadata_iops = _DD.unpack_from(body, offset)
            offset += _DD.size
            stage_id, offset = _unpack_str(body, offset)
            job_id, offset = _unpack_str(body, offset)
            return {
                "kind": "metrics_reply",
                "epoch": epoch,
                "stage_id": stage_id,
                "job_id": job_id,
                "data_iops": data_iops,
                "metadata_iops": metadata_iops,
            }
        if tag == _TAG_RULE:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            (limit,) = _D.unpack_from(body, offset)
            offset += _D.size
            stage_id, offset = _unpack_str(body, offset)
            return {
                "kind": "rule",
                "epoch": epoch,
                "stage_id": stage_id,
                "data_iops_limit": limit,
            }
        if tag == _TAG_RULE_V2:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            limit, metadata_limit = _DD.unpack_from(body, offset)
            offset += _DD.size
            stage_id, offset = _unpack_str(body, offset)
            return {
                "kind": "rule",
                "epoch": epoch,
                "stage_id": stage_id,
                "data_iops_limit": limit,
                "metadata_iops_limit": metadata_limit,
            }
        if tag == _TAG_RULE_ACK:
            (epoch,) = _Q.unpack_from(body, offset)
            offset += _Q.size
            stage_id, offset = _unpack_str(body, offset)
            return {"kind": "rule_ack", "epoch": epoch, "stage_id": stage_id}
    except struct.error as exc:
        raise ValueError(f"truncated binary frame: {exc}") from exc
    raise ValueError(f"unknown binary frame tag: {tag}")
