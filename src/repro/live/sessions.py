"""Server-side session plumbing shared by the live controllers.

A :class:`Session` owns one connected peer's streams and runs a *frame
pump*: a background task that is the socket's only reader, feeding
complete frames into an inbox queue. Phase waits consume from the inbox
(:meth:`Session.expect`), so a deadline can cancel them at any instant
without tearing a half-read frame — cancellation always lands on
``Queue.get``, never mid-``readexactly``.

:func:`gather_phase` runs one reply-reader per session under a single
optional deadline and reports which sessions produced nothing (dead
socket or deadline), which is how the controllers implement partial
collect/enforce (paper §VI dependability, live counterpart of the
simulated ``collect_timeout_s``).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from repro.guard.shed import BoundedOutbox
from repro.live.protocol import ProtocolError, encode_into, read_frame

__all__ = ["Session", "SessionClosed", "gather_phase"]


class SessionClosed(ConnectionError):
    """The peer's socket reached EOF or errored; the session is dead."""


class Session:
    """One connected peer: its streams plus the frame pump and inbox.

    ``meter`` is an optional :class:`repro.obs.procfs.ComponentUsageMeter`;
    when set, every framed byte written to or pumped from this peer is
    charged to the owning controller's NIC columns.

    ``oob_kinds`` names frame kinds that are *out-of-band*: not replies to
    any phase request (e.g. a ``partition_update`` announcing an adopted
    stage). The pump diverts them into :attr:`oob` instead of the inbox,
    so :meth:`expect` never drains them as stale; the session owner reads
    and clears :attr:`oob` at a convenient boundary (e.g. cycle start).

    ``max_outbox_bytes`` bounds the coalescing buffer: frames fed as
    *sheddable* (rule/rule_batch — superseded by the next epoch) are
    dropped oldest-first once the buffer exceeds the bound, so a peer
    that stops reading cannot grow controller memory without limit.
    Non-sheddable frames (collect requests, acks) are never dropped.
    A shed rule simply surfaces as that stage's missing ack, which the
    degraded-cycle machinery already handles — but only when the enforce
    phase has a deadline (``enforce_timeout_s``), so bounded outboxes
    should be enabled together with phase deadlines.
    """

    def __init__(
        self,
        peer_id: str,
        reader,
        writer,
        meter=None,
        max_outbox_bytes: Optional[int] = None,
    ) -> None:
        self.peer_id = peer_id
        self.reader = reader
        self.writer = writer
        self.meter = meter
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.connected = True
        #: Wire codec for frames sent to this peer ("json" | "binary"),
        #: fixed at registration (see ``protocol.choose_codec``). Reads
        #: always auto-detect, so this only governs what *we* emit.
        self.codec = "json"
        #: Frames buffered by :meth:`feed` since the last :meth:`flush`.
        self.pending_frames = 0
        #: Bounded (or not) coalescing buffer; owns the shed counters.
        self.outbox = BoundedOutbox(max_outbox_bytes)
        #: Frame kinds routed to :attr:`oob` instead of the inbox.
        self.oob_kinds: frozenset = frozenset()
        #: Out-of-band frames, in arrival order (owner drains).
        self.oob: List[dict] = []
        #: Frames drained because they were for a finished epoch or an
        #: unexpected kind (late replies after a deadline, duplicates).
        self.stale_messages = 0
        #: On-wire bytes exchanged with this peer (frames incl. headers).
        self.tx_bytes = 0
        self.rx_bytes = 0
        self._pump_task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Begin pumping frames; call once after registration."""
        self._pump_task = asyncio.create_task(self._pump())

    async def _pump(self) -> None:
        try:
            while True:
                message, nbytes = await read_frame(self.reader)
                self.rx_bytes += nbytes
                if self.meter is not None:
                    self.meter.add_rx(nbytes)
                if message.get("kind") in self.oob_kinds:
                    self.oob.append(message)
                else:
                    self.inbox.put_nowait(message)
        except (
            asyncio.IncompleteReadError,
            ProtocolError,
            ConnectionError,
            OSError,
        ):
            pass
        finally:
            self.connected = False
            self.inbox.put_nowait(None)  # EOF sentinel for waiting readers

    def feed(self, message: dict, sheddable: bool = False) -> int:
        """Buffer one frame for the socket without writing; returns its size.

        The write side of frame coalescing: a phase feeds every frame for
        this peer into an in-memory buffer, then awaits one :meth:`flush`
        — a *single* ``writer.write`` (asyncio issues an eager ``send``
        syscall per write call, so per-frame writes defeat batching) and
        one ``drain`` per session per phase. Raises
        :class:`SessionClosed` on a dead socket; write errors surface at
        flush time. ``sheddable`` marks the frame droppable under outbox
        pressure (rule frames only — see the class docstring).

        Encodes straight into the outbox buffer (``encode_into`` via
        ``BoundedOutbox.push_with``): the frame never exists as its own
        ``bytes`` object, and :meth:`flush` later materializes the whole
        phase as one contiguous write burst.
        """
        if not self.connected:
            raise SessionClosed(f"{self.peer_id}: session closed")
        size = self.outbox.push_with(
            lambda buf: encode_into(buf, message, self.codec), sheddable
        )
        self.pending_frames = self.outbox.pending_frames
        return size

    def feed_frame(self, frame: bytes, sheddable: bool = False) -> int:
        """Buffer an already-encoded frame (e.g. from a rule cache).

        tx accounting (:attr:`tx_bytes`, the NIC meter) is deferred to
        :meth:`flush` success — bytes that never reach the socket must
        not show up in REMORA traffic rows.
        """
        if not self.connected:
            raise SessionClosed(f"{self.peer_id}: session closed")
        self.outbox.push(frame, sheddable=sheddable)
        self.pending_frames = self.outbox.pending_frames
        return len(frame)

    async def flush(self) -> None:
        """Write frames buffered by :meth:`feed` in one burst and drain.

        On success the flushed bytes are charged to :attr:`tx_bytes` and
        the NIC meter and :attr:`pending_frames` resets. On failure the
        session is dead: nothing is charged and :attr:`pending_frames`
        keeps the count of frames that were dropped with it.
        """
        burst = self.outbox.drain()
        nbytes = len(burst)
        try:
            if burst:
                self.writer.write(burst)
            await self.writer.drain()
        except (ConnectionError, OSError) as exc:
            self.connected = False
            raise SessionClosed(f"{self.peer_id}: {exc}") from exc
        self.pending_frames = 0
        if nbytes:
            self.tx_bytes += nbytes
            if self.meter is not None:
                self.meter.add_tx(nbytes)

    async def send(self, message: dict) -> None:
        """Write one frame and drain; raises :class:`SessionClosed` on a dead socket."""
        self.feed(message)
        await self.flush()

    async def expect(self, kind: str, epoch: int) -> dict:
        """Next ``kind`` frame for ``epoch``; drains stale frames silently.

        Raises :class:`SessionClosed` when the socket dies first.
        """
        while True:
            message = await self.inbox.get()
            if message is None:
                raise SessionClosed(f"{self.peer_id}: connection lost")
            if message.get("kind") == kind and message.get("epoch") == epoch:
                return message
            self.stale_messages += 1

    async def close(self) -> None:
        """Stop the pump and close the socket, flushing pending writes."""
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self.connected = False
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def gather_phase(
    sessions: Sequence[Session],
    reply_fn: Callable[[Session], Awaitable],
    timeout_s: Optional[float],
) -> Tuple[List[Session], bool]:
    """Run ``reply_fn(session)`` for every session under one deadline.

    Returns ``(missing, timed_out)``: the sessions that produced no reply
    — their socket died (:class:`SessionClosed`) or the deadline fired
    before they answered — and whether the deadline fired at all. With
    ``timeout_s=None`` a dead socket still resolves its reader (the pump
    delivers the EOF sentinel), so a killed peer cannot hang the phase;
    only a silent-but-connected peer blocks, as in the seed. Exceptions
    other than :class:`SessionClosed` propagate.
    """
    if not sessions:
        return [], False
    tasks = {asyncio.ensure_future(reply_fn(s)): s for s in sessions}
    done, pending = await asyncio.wait(tasks, timeout=timeout_s)
    timed_out = bool(pending)
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.wait(pending)
        for task in pending:
            if task.cancelled():
                continue
            # The task beat its own cancellation: it completed with a
            # result or a real error just before the deadline landed.
            # A real error must propagate exactly as it would from the
            # done set — swallowing it here turned ProtocolErrors into
            # silent "missing" entries.
            exc = task.exception()
            if exc is not None and not isinstance(exc, SessionClosed):
                raise exc
    missing = [tasks[t] for t in pending]
    for task in done:
        exc = task.exception()
        if exc is None:
            continue
        if isinstance(exc, SessionClosed):
            missing.append(tasks[task])
        else:
            raise exc
    return missing, timed_out
