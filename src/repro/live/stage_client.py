"""Live virtual stage: an asyncio TCP client serving metric requests.

Mirrors :class:`repro.dataplane.virtual_stage.VirtualStage` over real
sockets: register with the controller, then answer ``collect_req`` with
metrics and ``rule`` with an ack, applying the epoch staleness check.

Dependability: when ``reconnect`` is enabled (the default) a stage whose
connection drops — killed socket, controller eviction, restart — retries
with exponential backoff plus jitter and *re-registers*, so it is picked
up again by the controller's next cycle. A rejected registration (e.g.
its old session has not been evicted yet) is retried the same way.

Re-homing (paper §VI dependability): a stage may know *alternate*
controller addresses — passed at construction (``alternates``) or learnt
mid-session from a ``rehome`` frame sent by its aggregator once the
global controller has broadcast the tree topology. A failed connection
attempt (or a controller that goes silent past ``controller_timeout_s``
while the socket stays open) rotates to the next address instead of
spinning on a dead endpoint, so the stages of a dead aggregator migrate
to its surviving peers within a couple of backoff steps. The epoch
staleness check (:attr:`applied_epoch` survives reconnects) fences any
late rules from the previous home.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.token_bucket import TokenBucket
from repro.guard.backoff import full_jitter
from repro.guard.breaker import CircuitBreaker
from repro.live.protocol import ProtocolError, read_message, write_message

__all__ = ["LiveVirtualStage"]


class _RegistrationRejected(RuntimeError):
    """The controller answered the register frame with an error."""


class _ControllerSilent(RuntimeError):
    """No frame arrived within ``controller_timeout_s`` (stalled home)."""


class LiveVirtualStage:
    """One stage endpoint; run with ``await stage.run()`` as a task.

    Parameters
    ----------
    reconnect:
        Retry dropped connections (with re-registration) instead of
        exiting on the first EOF.
    backoff_base_s / backoff_factor / backoff_max_s / backoff_jitter:
        Backoff between reconnect attempts, with *full jitter*: the
        ``k``-th consecutive failure computes the exponential ceiling
        ``min(max, base * factor**(k-1))`` and sleeps a uniform draw
        from ``[ceiling * (1 - jitter), ceiling]``. The default
        ``jitter=1.0`` decorrelates a mass-evicted fleet completely
        (the earlier multiplicative-jitter schedule kept every stage's
        retries within the same few-percent window — a thundering herd
        at each rung); ``jitter=0`` recovers the deterministic schedule.
    backoff_seed:
        Seed for this client's private backoff RNG (salted with the
        stage id, so a fleet built from one seed still decorrelates).
        ``None`` uses the process-global RNG.
    breaker_failures / breaker_reset_s:
        When ``breaker_failures`` is set, each controller address gets a
        circuit breaker: after that many consecutive failed attempts
        *on one address* the breaker opens and the stage skips that
        address (rotating past it without a connect attempt) until
        ``breaker_reset_s`` has elapsed, at which point one half-open
        probe connect is allowed. Off (``None``) by default.
    max_retries:
        Give up after this many consecutive failed attempts
        (``None`` = retry forever until :meth:`stop`).
    alternates:
        Extra ``(host, port)`` controller addresses to rotate through
        when the current home fails (dead aggregator, dead primary). A
        ``rehome`` frame from the controller replaces this list.
    codecs:
        Wire codecs to advertise at registration, in preference order.
        The controller's ``registered`` ack names the one to use; absent
        an ack field (an older controller) the stage stays on JSON. Pass
        ``("json",)`` to emulate a pre-binary client.
    controller_timeout_s:
        Declare the current home silent (and rotate) when no frame
        arrives for this long while the socket stays open — the stalled
        aggregator / stalled-primary case, which EOF never surfaces.
        ``None`` waits forever (the seed behaviour).
    """

    def __init__(
        self,
        host: str,
        port: int,
        stage_id: str,
        job_id: str,
        demand: Tuple[float, float] = (1000.0, 200.0),
        reconnect: bool = True,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        backoff_jitter: float = 1.0,
        backoff_seed: Optional[int] = None,
        breaker_failures: Optional[int] = None,
        breaker_reset_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        alternates: Optional[Sequence[Tuple[str, int]]] = None,
        controller_timeout_s: Optional[float] = None,
        codecs: Sequence[str] = ("binary2", "binary", "json"),
    ) -> None:
        if backoff_base_s <= 0 or backoff_max_s <= 0:
            raise ValueError("backoff delays must be positive")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {backoff_factor}")
        if backoff_jitter < 0:
            raise ValueError(f"negative backoff_jitter: {backoff_jitter}")
        if controller_timeout_s is not None and controller_timeout_s <= 0:
            raise ValueError(
                f"controller_timeout_s must be positive: {controller_timeout_s}"
            )
        self.addresses: List[Tuple[str, int]] = [(host, int(port))] + [
            (h, int(p)) for h, p in (alternates or [])
        ]
        self._addr_index = 0
        self.controller_timeout_s = controller_timeout_s
        self.stage_id = stage_id
        self.job_id = job_id
        self.demand = demand
        self.reconnect = reconnect
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.backoff_jitter = backoff_jitter
        # Private RNG so two stages with the same *policy* (seed) still
        # draw distinct retry instants — the salt is the stage id.
        self._rng: random.Random = (
            random.Random(f"{backoff_seed}:{stage_id}")
            if backoff_seed is not None
            else random.Random()
        )
        if breaker_failures is not None and breaker_failures < 1:
            raise ValueError(f"breaker_failures must be >= 1: {breaker_failures}")
        self.breaker_failures = breaker_failures
        self.breaker_reset_s = (
            float(breaker_reset_s) if breaker_reset_s is not None else backoff_max_s
        )
        #: Per-address circuit breakers (populated lazily; empty when off).
        self.breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
        #: Connect attempts skipped because an address's breaker was open.
        self.breaker_skips = 0
        self.max_retries = max_retries
        self.applied_epoch = -1
        self.applied_limit: Optional[float] = None
        #: Metadata-axis limit from the newest applied rule; ``inf``
        #: (unlimited) until a rule carries one — which is also what a
        #: rule from a pre-rev-2 controller, with no metadata field,
        #: resets it to.
        self.applied_metadata_limit: float = float("inf")
        #: Local enforcement: one token bucket per axis, retuned on every
        #: applied rule. ``inf`` rate = unthrottled (the bucket no-ops).
        self.data_bucket = TokenBucket(float("inf"), time.monotonic)
        self.metadata_bucket = TokenBucket(float("inf"), time.monotonic)
        self.requests_served = 0
        self.rules_applied = 0
        self.rules_ignored_stale = 0
        #: Successful registrations (1 on a fault-free run).
        self.connects = 0
        #: Successful registrations after the first (i.e. recoveries).
        self.reconnects = 0
        self.registrations_rejected = 0
        #: Failed attempts since the last successful registration — the
        #: backoff schedule's input, reset to 0 the moment a
        #: ``registered`` ack lands (observable for regression tests).
        self.consecutive_failures = 0
        #: Successful registrations at a *different* address than the
        #: previous home (i.e. completed re-homes / failovers).
        self.failovers = 0
        #: ``rehome`` frames accepted (alternate-address updates).
        self.rehomes_received = 0
        #: Homes declared silent via ``controller_timeout_s``.
        self.silence_timeouts = 0
        self.gave_up = False
        self._stop = asyncio.Event()
        self._paused = asyncio.Event()
        self._paused.set()
        self._writer: Optional[asyncio.StreamWriter] = None
        self._registered_addr: Optional[Tuple[str, int]] = None
        self._last_silent = False
        self.offered_codecs: Tuple[str, ...] = tuple(codecs)
        #: Codec in force for the current session (reset per registration).
        self.codec = "json"

    @property
    def host(self) -> str:
        """Host of the controller currently targeted."""
        return self.addresses[self._addr_index][0]

    @property
    def port(self) -> int:
        """Port of the controller currently targeted."""
        return self.addresses[self._addr_index][1]

    @property
    def connected(self) -> bool:
        """Whether a connection is currently open."""
        return self._writer is not None

    def stop(self) -> None:
        """Ask the serve/reconnect loop to exit."""
        self._stop.set()

    def _rotate_address(self) -> None:
        """Advance to the next known controller address (wraps around)."""
        if len(self.addresses) > 1:
            self._addr_index = (self._addr_index + 1) % len(self.addresses)

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter delay before retry ``attempt`` (testable, no I/O)."""
        return full_jitter(
            attempt,
            self.backoff_base_s,
            self.backoff_factor,
            self.backoff_max_s,
            jitter=self.backoff_jitter,
            rng=self._rng,
        )

    def _breaker_for(self, addr: Tuple[str, int]) -> Optional[CircuitBreaker]:
        """This address's breaker, created lazily (None when breakers off)."""
        if self.breaker_failures is None:
            return None
        breaker = self.breakers.get(addr)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_failures, self.breaker_reset_s)
            self.breakers[addr] = breaker
        return breaker

    # -- fault-injection hooks (see repro.live.faults) -----------------------
    def kill(self) -> None:
        """Abort the current connection without flushing (process kill).

        With ``reconnect`` enabled the stage later comes back through the
        backoff loop, modelling a crashed-and-restarted stage process.
        """
        writer = self._writer
        if writer is not None and writer.transport is not None:
            writer.transport.abort()

    def pause(self) -> None:
        """Freeze request handling (stall): socket open, no replies."""
        self._paused.clear()

    def resume(self) -> None:
        """Resume handling after :meth:`pause`; backlog is served."""
        self._paused.set()

    # -- serve loop -----------------------------------------------------------
    async def run(self) -> None:
        """Connect, register, and serve; reconnects with backoff if enabled."""
        while not self._stop.is_set():
            self._last_silent = False
            breaker = self._breaker_for(self.addresses[self._addr_index])
            if breaker is not None and not breaker.allow():
                # Open breaker: skip the connect entirely and take the
                # failure path (rotate + backoff) — a dead peer gets one
                # half-open probe per reset window, not a hot loop.
                self.breaker_skips += 1
                registered = False
            else:
                try:
                    registered = await self._serve_once()
                except _RegistrationRejected:
                    registered = False
                except (
                    ConnectionError,
                    OSError,
                    asyncio.IncompleteReadError,
                    ProtocolError,
                ):
                    registered = False
                if breaker is not None:
                    if registered:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
            if not self.reconnect or self._stop.is_set():
                return
            if registered:
                # Backoff was reset the moment registration succeeded
                # (consecutive_failures == 0); one base delay before
                # reconnecting. A home that went *silent* (socket open,
                # no frames for controller_timeout_s) is as dead as a
                # refused one — rotate away instead of re-joining it.
                attempt = 1
                if self._last_silent:
                    self._rotate_address()
            else:
                self.consecutive_failures += 1
                attempt = self.consecutive_failures
                self._rotate_address()
            if self.max_retries is not None and attempt > self.max_retries:
                self.gave_up = True
                return
            delay = self._backoff_delay(attempt)
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=delay)
                return
            except asyncio.TimeoutError:
                pass

    async def _read(self, reader) -> dict:
        """One framed read, bounded by the silence watchdog if armed."""
        if self.controller_timeout_s is None:
            return await read_message(reader)
        try:
            return await asyncio.wait_for(
                read_message(reader), timeout=self.controller_timeout_s
            )
        except asyncio.TimeoutError:
            self.silence_timeouts += 1
            self._last_silent = True
            raise _ControllerSilent(
                f"{self.host}:{self.port} silent for {self.controller_timeout_s}s"
            ) from None

    async def _serve_once(self) -> bool:
        """One connect → register → serve pass.

        Returns True once registration succeeded, even if the connection
        later dropped (so a spell of healthy service resets the backoff);
        raises on pre-registration connection errors and rejections.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        try:
            await write_message(
                writer,
                {
                    "kind": "register",
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                    "codecs": list(self.offered_codecs),
                },
            )
            try:
                ack = await self._read(reader)
            except _ControllerSilent:
                return False  # never registered; rotate via the failure path
            if ack["kind"] != "registered":
                self.registrations_rejected += 1
                raise _RegistrationRejected(f"registration refused: {ack}")
            granted = ack.get("codec", "json")
            self.codec = granted if granted in self.offered_codecs else "json"
            self.connects += 1
            if self.connects > 1:
                self.reconnects += 1
            self.consecutive_failures = 0
            addr = self.addresses[self._addr_index]
            if self._registered_addr is not None and addr != self._registered_addr:
                self.failovers += 1
            self._registered_addr = addr
            self._accept_rehome(ack)
            try:
                while not self._stop.is_set():
                    message = await self._read(reader)
                    await self._paused.wait()
                    await self._handle(message)
            except _ControllerSilent:
                pass  # home stalled; run() rotates to an alternate
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ProtocolError,
            ):
                pass  # connection lost after a healthy registration
            return True
        finally:
            self._writer = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _accept_rehome(self, message: dict) -> None:
        """Adopt an alternate-address list (rehome frame or registered ack).

        The current home stays first so rotation only leaves it on
        failure; duplicates of the current address are dropped.
        """
        alternates = message.get("alternates")
        if alternates is None:
            return
        current = self.addresses[self._addr_index]
        self.addresses = [current] + [
            (h, int(p)) for h, p in alternates if (h, int(p)) != current
        ]
        self._addr_index = 0
        self._registered_addr = current
        self.rehomes_received += 1

    async def _handle(self, message) -> None:
        writer = self._writer
        kind = message["kind"]
        if kind == "collect_req":
            self.requests_served += 1
            await write_message(
                writer,
                {
                    "kind": "metrics_reply",
                    "epoch": message["epoch"],
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                    "data_iops": self.demand[0],
                    "metadata_iops": self.demand[1],
                },
                self.codec,
            )
        elif kind == "rule":
            epoch = message["epoch"]
            if epoch > self.applied_epoch:
                self.applied_epoch = epoch
                self.applied_limit = message["data_iops_limit"]
                self.applied_metadata_limit = float(
                    message.get("metadata_iops_limit", float("inf"))
                )
                self.data_bucket.set_rate(float(self.applied_limit))
                self.metadata_bucket.set_rate(self.applied_metadata_limit)
                self.rules_applied += 1
            else:
                self.rules_ignored_stale += 1
            await write_message(
                writer,
                {"kind": "rule_ack", "epoch": epoch, "stage_id": self.stage_id},
                self.codec,
            )
        elif kind == "rehome":
            self._accept_rehome(message)
        elif kind == "shutdown":
            self._stop.set()
        # Unknown kinds ignored (passive endpoint, like the simulated stage).
