"""Live virtual stage: an asyncio TCP client serving metric requests.

Mirrors :class:`repro.dataplane.virtual_stage.VirtualStage` over real
sockets: register with the controller, then answer ``collect_req`` with
metrics and ``rule`` with an ack, applying the epoch staleness check.

Dependability: when ``reconnect`` is enabled (the default) a stage whose
connection drops — killed socket, controller eviction, restart — retries
with exponential backoff plus jitter and *re-registers*, so it is picked
up again by the controller's next cycle. A rejected registration (e.g.
its old session has not been evicted yet) is retried the same way.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional, Tuple

from repro.live.protocol import ProtocolError, read_message, write_message

__all__ = ["LiveVirtualStage"]


class _RegistrationRejected(RuntimeError):
    """The controller answered the register frame with an error."""


class LiveVirtualStage:
    """One stage endpoint; run with ``await stage.run()`` as a task.

    Parameters
    ----------
    reconnect:
        Retry dropped connections (with re-registration) instead of
        exiting on the first EOF.
    backoff_base_s / backoff_factor / backoff_max_s / backoff_jitter:
        Exponential backoff between reconnect attempts: the ``k``-th
        consecutive failure waits ``base * factor**(k-1)`` seconds,
        capped at ``backoff_max_s``, stretched by a random factor in
        ``[1, 1 + jitter]`` to avoid thundering-herd re-registration.
    max_retries:
        Give up after this many consecutive failed attempts
        (``None`` = retry forever until :meth:`stop`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        stage_id: str,
        job_id: str,
        demand: Tuple[float, float] = (1000.0, 200.0),
        reconnect: bool = True,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        backoff_jitter: float = 0.25,
        max_retries: Optional[int] = None,
    ) -> None:
        if backoff_base_s <= 0 or backoff_max_s <= 0:
            raise ValueError("backoff delays must be positive")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {backoff_factor}")
        if backoff_jitter < 0:
            raise ValueError(f"negative backoff_jitter: {backoff_jitter}")
        self.host = host
        self.port = port
        self.stage_id = stage_id
        self.job_id = job_id
        self.demand = demand
        self.reconnect = reconnect
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.backoff_jitter = backoff_jitter
        self.max_retries = max_retries
        self.applied_epoch = -1
        self.applied_limit: Optional[float] = None
        self.requests_served = 0
        self.rules_applied = 0
        self.rules_ignored_stale = 0
        #: Successful registrations (1 on a fault-free run).
        self.connects = 0
        #: Successful registrations after the first (i.e. recoveries).
        self.reconnects = 0
        self.registrations_rejected = 0
        self.gave_up = False
        self._stop = asyncio.Event()
        self._paused = asyncio.Event()
        self._paused.set()
        self._writer: Optional[asyncio.StreamWriter] = None

    def stop(self) -> None:
        """Ask the serve/reconnect loop to exit."""
        self._stop.set()

    # -- fault-injection hooks (see repro.live.faults) -----------------------
    def kill(self) -> None:
        """Abort the current connection without flushing (process kill).

        With ``reconnect`` enabled the stage later comes back through the
        backoff loop, modelling a crashed-and-restarted stage process.
        """
        writer = self._writer
        if writer is not None and writer.transport is not None:
            writer.transport.abort()

    def pause(self) -> None:
        """Freeze request handling (stall): socket open, no replies."""
        self._paused.clear()

    def resume(self) -> None:
        """Resume handling after :meth:`pause`; backlog is served."""
        self._paused.set()

    # -- serve loop -----------------------------------------------------------
    async def run(self) -> None:
        """Connect, register, and serve; reconnects with backoff if enabled."""
        failures = 0
        while not self._stop.is_set():
            try:
                registered = await self._serve_once()
            except _RegistrationRejected:
                registered = False
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ProtocolError,
            ):
                registered = False
            if not self.reconnect or self._stop.is_set():
                return
            # A spell of healthy service resets the backoff schedule.
            failures = 1 if registered else failures + 1
            if self.max_retries is not None and failures > self.max_retries:
                self.gave_up = True
                return
            delay = min(
                self.backoff_max_s,
                self.backoff_base_s * self.backoff_factor ** (failures - 1),
            )
            delay *= 1.0 + random.uniform(0.0, self.backoff_jitter)
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=delay)
                return
            except asyncio.TimeoutError:
                pass

    async def _serve_once(self) -> bool:
        """One connect → register → serve pass.

        Returns True once registration succeeded, even if the connection
        later dropped (so a spell of healthy service resets the backoff);
        raises on pre-registration connection errors and rejections.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        try:
            await write_message(
                writer,
                {
                    "kind": "register",
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                },
            )
            ack = await read_message(reader)
            if ack["kind"] != "registered":
                self.registrations_rejected += 1
                raise _RegistrationRejected(f"registration refused: {ack}")
            self.connects += 1
            if self.connects > 1:
                self.reconnects += 1
            try:
                while not self._stop.is_set():
                    message = await read_message(reader)
                    await self._paused.wait()
                    await self._handle(message)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ProtocolError,
            ):
                pass  # connection lost after a healthy registration
            return True
        finally:
            self._writer = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _handle(self, message) -> None:
        writer = self._writer
        kind = message["kind"]
        if kind == "collect_req":
            self.requests_served += 1
            await write_message(
                writer,
                {
                    "kind": "metrics_reply",
                    "epoch": message["epoch"],
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                    "data_iops": self.demand[0],
                    "metadata_iops": self.demand[1],
                },
            )
        elif kind == "rule":
            epoch = message["epoch"]
            if epoch > self.applied_epoch:
                self.applied_epoch = epoch
                self.applied_limit = message["data_iops_limit"]
                self.rules_applied += 1
            else:
                self.rules_ignored_stale += 1
            await write_message(
                writer, {"kind": "rule_ack", "epoch": epoch, "stage_id": self.stage_id}
            )
        elif kind == "shutdown":
            self._stop.set()
        # Unknown kinds ignored (passive endpoint, like the simulated stage).
