"""Live virtual stage: an asyncio TCP client serving metric requests.

Mirrors :class:`repro.dataplane.virtual_stage.VirtualStage` over real
sockets: register with the controller, then answer ``collect_req`` with
metrics and ``rule`` with an ack, applying the epoch staleness check.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.live.protocol import read_message, write_message

__all__ = ["LiveVirtualStage"]


class LiveVirtualStage:
    """One stage endpoint; run with ``await stage.run()`` as a task."""

    def __init__(
        self,
        host: str,
        port: int,
        stage_id: str,
        job_id: str,
        demand: Tuple[float, float] = (1000.0, 200.0),
    ) -> None:
        self.host = host
        self.port = port
        self.stage_id = stage_id
        self.job_id = job_id
        self.demand = demand
        self.applied_epoch = -1
        self.applied_limit: Optional[float] = None
        self.requests_served = 0
        self.rules_applied = 0
        self.rules_ignored_stale = 0
        self._stop = asyncio.Event()

    def stop(self) -> None:
        self._stop.set()

    async def run(self) -> None:
        """Connect, register, and serve until EOF or :meth:`stop`."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            await write_message(
                writer,
                {
                    "kind": "register",
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                },
            )
            ack = await read_message(reader)
            if ack["kind"] != "registered":
                raise RuntimeError(f"unexpected registration reply: {ack}")
            while not self._stop.is_set():
                try:
                    message = await read_message(reader)
                except asyncio.IncompleteReadError:
                    break
                await self._handle(message, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _handle(self, message, writer) -> None:
        kind = message["kind"]
        if kind == "collect_req":
            self.requests_served += 1
            await write_message(
                writer,
                {
                    "kind": "metrics_reply",
                    "epoch": message["epoch"],
                    "stage_id": self.stage_id,
                    "job_id": self.job_id,
                    "data_iops": self.demand[0],
                    "metadata_iops": self.demand[1],
                },
            )
        elif kind == "rule":
            epoch = message["epoch"]
            if epoch > self.applied_epoch:
                self.applied_epoch = epoch
                self.applied_limit = message["data_iops_limit"]
                self.rules_applied += 1
            else:
                self.rules_ignored_stale += 1
            await write_message(
                writer, {"kind": "rule_ack", "epoch": epoch, "stage_id": self.stage_id}
            )
        elif kind == "shutdown":
            self._stop.set()
        # Unknown kinds ignored (passive endpoint, like the simulated stage).
