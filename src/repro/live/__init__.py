"""A real (non-simulated) deployment of the control plane.

Everything in :mod:`repro.core` above the transport is reused — PSFA, the
policy model, rule/metric semantics — but here the controller and the
virtual stages are genuine asyncio TCP services exchanging length-prefixed
messages over localhost. This validates that the control plane is real
software, and lets a laptop reproduce the *small-N* end of Fig. 4 with
wall-clock latencies (the paper's 50-node point runs in a few ms of real
time per cycle; absolute values differ from Frontera's, shapes hold).

The live plane carries the same failure semantics as the simulated one
(paper §VI): phase deadlines with partial collect, dead-session
eviction, stage reconnect with backoff, and a fault injector
(:mod:`repro.live.faults`) for kill/stall/flaky-socket scenarios — for
stages and aggregators alike. On top of that ride the control-tree
fault-tolerance mechanisms: aggregator failover with stage re-homing
(topology/``rehome``/``partition_update`` frames, alternate-address
rotation in the stage client) and a hot standby for the global
controller (:mod:`repro.live.failover`) with the same heartbeat /
epoch-slack semantics as the simulated :mod:`repro.core.failover`.

Entry point: :func:`~repro.live.harness.run_live_flat` (or the
``examples/live_cluster.py`` script).
"""

from repro.live.failover import LiveFailoverEvent, LiveHotStandby
from repro.live.faults import (
    LiveFaultLog,
    flaky_socket,
    kill_aggregator,
    kill_stage,
    stall_aggregator,
    stall_stage,
)
from repro.live.harness import (
    LiveRunResult,
    run_live_flat,
    run_live_hierarchical,
)

__all__ = [
    "LiveFailoverEvent",
    "LiveFaultLog",
    "LiveHotStandby",
    "LiveRunResult",
    "flaky_socket",
    "kill_aggregator",
    "kill_stage",
    "run_live_flat",
    "run_live_hierarchical",
    "stall_aggregator",
    "stall_stage",
]
