"""Bounded per-session outbound queues with shed-oldest policy.

A live session coalesces frames into one write per phase
(:class:`repro.live.sessions.Session`). Under backpressure — a stage
stops reading, a socket stalls inside its send window — that buffer
previously grew without bound. :class:`BoundedOutbox` is the fix: a
byte-budgeted frame queue that sheds the *oldest sheddable* frames when
the budget is exceeded.

Which frames are sheddable is the caller's contract: rule / rule_batch
frames are (a newer rule epoch supersedes an older one, and the missing
ack is already handled by the degraded-cycle machinery), collect
requests and registration acks are not — those pace phases, and dropping
one would stall the protocol rather than merely delay an enforcement.
Non-sheddable frames are therefore *never* dropped, even over budget:
the bound is a shed trigger, not a hard write barrier, so
``pending_bytes`` can transiently exceed ``max_bytes`` by the
non-sheddable residue (observable via ``high_water_bytes``).

Storage is one shared ``bytearray`` per outbox plus a deque of
``(start, end, sheddable)`` spans — the zero-copy send path. Senders
append frames in place (:meth:`push_with` hands the buffer to an
encoder, so a frame never exists as its own ``bytes`` object) and
:meth:`drain` materializes exactly one write burst per phase. Shedding
compacts the buffer so the *real* memory footprint honours the budget,
not just the accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

__all__ = ["BoundedOutbox"]


class BoundedOutbox:
    """Byte-bounded frame queue; sheds oldest sheddable frames first."""

    __slots__ = (
        "max_bytes", "_buf", "_spans", "pending_bytes",
        "frames_shed", "bytes_shed", "high_water_bytes",
    )

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {max_bytes}")
        self.max_bytes = max_bytes
        self._buf = bytearray()
        self._spans: Deque[Tuple[int, int, bool]] = deque()
        self.pending_bytes = 0
        #: Monotone shed counters.
        self.frames_shed = 0
        self.bytes_shed = 0
        #: Peak pending_bytes *after* shedding — bounded-memory evidence.
        self.high_water_bytes = 0

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def pending_frames(self) -> int:
        return len(self._spans)

    def push(self, frame: bytes, sheddable: bool = False) -> int:
        """Queue ``frame``; returns how many frames were shed to fit it."""
        start = len(self._buf)
        self._buf += frame
        return self._commit(start, sheddable)

    def push_with(
        self, write: Callable[[bytearray], object], sheddable: bool = False
    ) -> int:
        """Append one frame in place: ``write(buf)`` encodes directly into
        the outbox buffer (e.g. ``protocol.encode_into``), so the frame is
        never materialized as a standalone ``bytes``. Returns the frame's
        size in bytes; a failed encode leaves the outbox unchanged."""
        buf = self._buf
        start = len(buf)
        try:
            write(buf)
        except BaseException:
            del buf[start:]
            raise
        size = len(buf) - start
        self._commit(start, sheddable)
        return size

    def _commit(self, start: int, sheddable: bool) -> int:
        end = len(self._buf)
        self._spans.append((start, end, sheddable))
        self.pending_bytes += end - start
        shed = 0
        if self.max_bytes is not None and self.pending_bytes > self.max_bytes:
            shed = self._shed_until_fits()
        if self.pending_bytes > self.high_water_bytes:
            self.high_water_bytes = self.pending_bytes
        return shed

    def _shed_until_fits(self) -> int:
        # Walk oldest-first, dropping sheddable spans until under
        # budget; non-sheddable spans are kept in order.
        shed = 0
        keep: Deque[Tuple[int, int, bool]] = deque()
        while self._spans and self.pending_bytes > self.max_bytes:
            span = self._spans.popleft()
            start, end, sheddable = span
            if sheddable:
                size = end - start
                self.pending_bytes -= size
                self.frames_shed += 1
                self.bytes_shed += size
                shed += 1
            else:
                keep.append(span)
        keep.extend(self._spans)
        # Compact: rebuild the buffer from surviving spans so shed bytes
        # are freed immediately (the budget bounds real memory, not just
        # span accounting). Shedding is the rare path; the copy is the
        # price of a truly bounded buffer.
        old = memoryview(self._buf)
        fresh = bytearray()
        spans: Deque[Tuple[int, int, bool]] = deque()
        for start, end, sheddable in keep:
            new_start = len(fresh)
            fresh += old[start:end]
            spans.append((new_start, len(fresh), sheddable))
        old.release()
        self._buf = fresh
        self._spans = spans
        return shed

    def drain(self) -> bytes:
        """Return and clear everything queued; one coalesced write burst.

        Frames were already gathered contiguously at push time, so this
        is a single buffer materialization — not an N-frame join.
        """
        if not self._spans:
            return b""
        burst = bytes(self._buf)
        self.clear()
        return burst

    def clear(self) -> None:
        """Drop everything (socket died; frames are unsendable)."""
        self._buf = bytearray()
        self._spans.clear()
        self.pending_bytes = 0
