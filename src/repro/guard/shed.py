"""Bounded per-session outbound queues with shed-oldest policy.

A live session coalesces frames into one write per phase
(:class:`repro.live.sessions.Session`). Under backpressure — a stage
stops reading, a socket stalls inside its send window — that buffer
previously grew without bound. :class:`BoundedOutbox` is the fix: a
byte-budgeted frame queue that sheds the *oldest sheddable* frames when
the budget is exceeded.

Which frames are sheddable is the caller's contract: rule / rule_batch
frames are (a newer rule epoch supersedes an older one, and the missing
ack is already handled by the degraded-cycle machinery), collect
requests and registration acks are not — those pace phases, and dropping
one would stall the protocol rather than merely delay an enforcement.
Non-sheddable frames are therefore *never* dropped, even over budget:
the bound is a shed trigger, not a hard write barrier, so
``pending_bytes`` can transiently exceed ``max_bytes`` by the
non-sheddable residue (observable via ``high_water_bytes``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = ["BoundedOutbox"]


class BoundedOutbox:
    """Byte-bounded frame queue; sheds oldest sheddable frames first."""

    __slots__ = (
        "max_bytes", "_frames", "pending_bytes",
        "frames_shed", "bytes_shed", "high_water_bytes",
    )

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {max_bytes}")
        self.max_bytes = max_bytes
        self._frames: Deque[Tuple[bytes, bool]] = deque()
        self.pending_bytes = 0
        #: Monotone shed counters.
        self.frames_shed = 0
        self.bytes_shed = 0
        #: Peak pending_bytes *after* shedding — bounded-memory evidence.
        self.high_water_bytes = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def pending_frames(self) -> int:
        return len(self._frames)

    def push(self, frame: bytes, sheddable: bool = False) -> int:
        """Queue ``frame``; returns how many frames were shed to fit it."""
        self._frames.append((frame, sheddable))
        self.pending_bytes += len(frame)
        shed = 0
        if self.max_bytes is not None and self.pending_bytes > self.max_bytes:
            shed = self._shed_until_fits()
        if self.pending_bytes > self.high_water_bytes:
            self.high_water_bytes = self.pending_bytes
        return shed

    def _shed_until_fits(self) -> int:
        # Walk oldest-first, dropping sheddable frames until under
        # budget; non-sheddable frames are re-queued in order.
        shed = 0
        keep: Deque[Tuple[bytes, bool]] = deque()
        while self._frames and self.pending_bytes > self.max_bytes:
            frame, sheddable = self._frames.popleft()
            if sheddable:
                self.pending_bytes -= len(frame)
                self.frames_shed += 1
                self.bytes_shed += len(frame)
                shed += 1
            else:
                keep.append((frame, sheddable))
        keep.extend(self._frames)
        self._frames = keep
        return shed

    def drain(self) -> bytes:
        """Join and clear everything queued; one coalesced write burst."""
        if not self._frames:
            return b""
        burst = b"".join(frame for frame, _ in self._frames)
        self._frames.clear()
        self.pending_bytes = 0
        return burst

    def clear(self) -> None:
        """Drop everything (socket died; frames are unsendable)."""
        self._frames.clear()
        self.pending_bytes = 0
