"""Reconnect backoff with *full jitter*.

The live plane's original retry schedule was deterministic-exponential
with a small multiplicative jitter: ``base * factor**attempt`` scaled by
``uniform(1.0, 1.25)``. After a mass eviction (controller restart, shard
respawn) every stage computes the same schedule from the same attempt
counter, so the whole fleet knocks on the new controller within the same
few-millisecond windows — a thundering herd that repeats at every rung
of the exponential.

Full jitter (the AWS Architecture Blog recipe) decorrelates the fleet:
the attempt only sets the *ceiling*, and each client draws uniformly
below it. Two clients at the same attempt share a cap but almost never a
retry instant. A floor keeps a full-jitter draw from landing at ~0 s and
hot-spinning the connect loop.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["full_jitter"]

#: Fraction of the exponential cap kept as the minimum sleep; guards the
#: reconnect loop against near-zero full-jitter draws.
_FLOOR_FRACTION = 0.05


def full_jitter(
    attempt: int,
    base_s: float,
    factor: float,
    max_s: float,
    jitter: float = 1.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before retry ``attempt`` (1-based), fully jittered.

    The exponential cap is ``min(max_s, base_s * factor**(attempt-1))``;
    the returned delay is uniform in ``[cap*(1-jitter), cap]`` (clamped
    to the floor), so ``jitter=1.0`` is full jitter and ``jitter=0.0``
    degrades to the deterministic schedule. Pass a per-client ``rng``
    (e.g. seeded from the stage id) for reproducible, *distinct* fleets.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1: {attempt}")
    if base_s <= 0 or max_s <= 0:
        raise ValueError(f"base_s/max_s must be positive: {base_s}, {max_s}")
    spread = min(max(jitter, 0.0), 1.0)
    try:
        cap = min(max_s, base_s * factor ** (attempt - 1))
    except OverflowError:
        cap = max_s
    draw = (rng or random).uniform(cap * (1.0 - spread), cap)
    return max(draw, cap * _FLOOR_FRACTION)
