"""Graceful-degradation ladder for the control brain.

When collect deadlines start missing (network partition, slow stages, a
metadata storm starving the event loop), the controller should *shed its
own work* before it sheds correctness. The ladder encodes that as four
rungs, climbed one at a time after ``trip_after`` consecutive degraded
cycles and descended after ``recover_after`` consecutive clean ones
(hysteresis — a single good cycle mid-storm doesn't reset the defense):

=====  =============  =====================================================
Level  Name           Effect on the cycle
=====  =============  =====================================================
0      NORMAL         Full collect → compute → enforce.
1      CACHED_DEMAND  Compute from last-known demand; collect deadline is
                      tightened (``collect_timeout_multiplier``) so slow
                      stages can't drag the cycle.
2      STRETCH        Additionally stretch the cycle interval
                      (``interval_multiplier``) — fewer cycles, each
                      cheaper to miss.
3      CHANGED_ONLY   Additionally force changed-only enforcement: only
                      rules whose limits moved are shipped.
=====  =============  =====================================================

Each rung *adds* to the ones below it, so the properties are monotone in
the level. The controller calls :meth:`DegradationLadder.observe` once
per cycle with that cycle's degraded flag and reads the four effect
properties when building the next one.
"""

from __future__ import annotations

__all__ = ["DegradationLadder"]


class DegradationLadder:
    """Hysteresis ladder: escalate on sustained misses, recover slowly."""

    NORMAL = 0
    CACHED_DEMAND = 1
    STRETCH = 2
    CHANGED_ONLY = 3

    NAMES = {
        NORMAL: "normal",
        CACHED_DEMAND: "cached-demand",
        STRETCH: "stretch",
        CHANGED_ONLY: "changed-only",
    }
    MAX_LEVEL = CHANGED_ONLY

    __slots__ = (
        "trip_after", "recover_after", "collect_timeout_factor",
        "interval_factor", "level", "_bad_streak", "_good_streak",
        "escalations", "recoveries",
    )

    def __init__(
        self,
        trip_after: int = 3,
        recover_after: int = 5,
        collect_timeout_factor: float = 0.5,
        interval_factor: float = 2.0,
    ) -> None:
        if trip_after < 1:
            raise ValueError(f"trip_after must be >= 1: {trip_after}")
        if recover_after < 1:
            raise ValueError(f"recover_after must be >= 1: {recover_after}")
        if not 0.0 < collect_timeout_factor <= 1.0:
            raise ValueError(
                f"collect_timeout_factor must be in (0, 1]: {collect_timeout_factor}"
            )
        if interval_factor < 1.0:
            raise ValueError(
                f"interval_factor must be >= 1: {interval_factor}"
            )
        self.trip_after = int(trip_after)
        self.recover_after = int(recover_after)
        self.collect_timeout_factor = float(collect_timeout_factor)
        self.interval_factor = float(interval_factor)
        self.level = self.NORMAL
        self._bad_streak = 0
        self._good_streak = 0
        #: Monotone rung-change counters.
        self.escalations = 0
        self.recoveries = 0

    def observe(self, degraded: bool) -> int:
        """Record one cycle's outcome; returns the (possibly new) level.

        Escalation and recovery both move ONE rung at a time and reset
        both streaks, so a flapping signal oscillates between adjacent
        rungs instead of slamming between NORMAL and CHANGED_ONLY.
        """
        if degraded:
            self._good_streak = 0
            self._bad_streak += 1
            if self._bad_streak >= self.trip_after and self.level < self.MAX_LEVEL:
                self.level += 1
                self.escalations += 1
                self._bad_streak = 0
        else:
            self._bad_streak = 0
            self._good_streak += 1
            if self._good_streak >= self.recover_after and self.level > self.NORMAL:
                self.level -= 1
                self.recoveries += 1
                self._good_streak = 0
        return self.level

    @property
    def name(self) -> str:
        return self.NAMES[self.level]

    @property
    def use_cached_demand(self) -> bool:
        return self.level >= self.CACHED_DEMAND

    @property
    def collect_timeout_multiplier(self) -> float:
        """Scale the collect deadline (≤ 1 once degraded)."""
        return self.collect_timeout_factor if self.level >= self.CACHED_DEMAND else 1.0

    @property
    def interval_multiplier(self) -> float:
        """Scale the cycle interval (≥ 1 once stretched)."""
        return self.interval_factor if self.level >= self.STRETCH else 1.0

    @property
    def force_changed_only(self) -> bool:
        return self.level >= self.CHANGED_ONLY
