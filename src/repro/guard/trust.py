"""Demand clamping: PSFA's "no false allocation" against lying stages.

PSFA's waterfill already caps what an *active* liar can win in a single
allocation round (nobody gets more than the water level times their
weight), but two paths let an absurd demand report steal capacity
anyway:

* **orphan-demand reservation** — the hierarchical controller reserves
  last-known demand for orphaned stages verbatim; an orphaned stage that
  reported 1e9 IOPS before its aggregator died would eat the whole
  budget, and
* **leftover redistribution** — inflated demand shifts the
  demand-limited bookkeeping that decides who absorbs slack.

:class:`DemandClamp` closes both: every reported demand is capped at
``factor ×`` the stage's *trust score*, an asymmetric EWMA
(:class:`repro.core.metrics.UsageWindow`) of what the stage was actually
granted and used. Honest stages never notice (their reports track their
usage, so ``factor=8`` leaves generous ramp headroom above the
``floor_iops`` cold-start credit); a stage whose reports wildly exceed
its usage converges to ``factor × usage`` within a cycle or two.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.metrics import UsageWindow

__all__ = ["DemandClamp"]


class DemandClamp:
    """Cap reported demand at a multiple of observed usage per stage."""

    __slots__ = ("factor", "floor_iops", "usage", "clamps", "clamped_iops_total")

    def __init__(
        self,
        factor: float = 8.0,
        floor_iops: float = 200.0,
        usage: Optional[UsageWindow] = None,
    ) -> None:
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1: {factor}")
        if floor_iops <= 0:
            raise ValueError(f"floor_iops must be positive: {floor_iops}")
        self.factor = float(factor)
        self.floor_iops = float(floor_iops)
        self.usage = usage if usage is not None else UsageWindow()
        #: Monotone counters: how often / how much lying was trimmed.
        self.clamps = 0
        self.clamped_iops_total = 0.0

    def cap(self, key: str) -> float:
        """Maximum believable demand for ``key`` right now."""
        return self.factor * max(self.usage.value(key), self.floor_iops)

    def clamp(self, key: str, reported: float) -> float:
        """Trim one demand report to its trust cap."""
        cap = self.cap(key)
        if reported <= cap:
            return reported
        self.clamps += 1
        self.clamped_iops_total += reported - cap
        return cap

    def observe(self, key: str, reported: float, granted: float) -> None:
        """Fold one cycle's outcome into the trust score.

        Usage evidence is ``min(reported, granted)``: a stage can't earn
        trust beyond what it was actually allocated, and an allocation it
        didn't ask for doesn't count either. Call once per cycle per
        stage, after allocation.
        """
        self.usage.observe(key, min(max(reported, 0.0), max(granted, 0.0)))

    def forget(self, key: str) -> None:
        """Drop trust state for a departed stage."""
        self.usage.forget(key)

    def snapshot(self) -> Dict[str, float]:
        return self.usage.snapshot()
