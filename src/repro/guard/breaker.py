"""Circuit breaker: closed → open → half-open, one probe at a time.

Wraps an unreliable peer (a stage's controller address, an aggregator
listener) so that repeated failures stop producing connect attempts:
after ``failure_threshold`` *consecutive* failures the breaker opens and
:meth:`CircuitBreaker.allow` answers ``False`` until ``reset_timeout_s``
has elapsed, at which point exactly ONE caller is granted a half-open
probe. The probe's outcome decides everything:

* probe succeeds → ``closed`` (and only a half-open probe success can
  close an open breaker — there is no open → closed edge),
* probe fails → back to ``open`` with a fresh reset timer.

While a probe is outstanding every other :meth:`allow` is rejected, so
a fleet sharing a breaker sends one scout at a dead peer, not a herd.
All counters are monotone; the hypothesis state-machine suite in
``tests/guard/test_breaker.py`` pins the transition graph.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = (
        "failure_threshold", "reset_timeout_s", "_clock", "state",
        "_consecutive_failures", "_opened_at", "_probe_outstanding",
        "failures", "successes", "opens", "closes", "probes", "rejections",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0: {reset_timeout_s}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        #: Monotone event counters.
        self.failures = 0
        self.successes = 0
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self.rejections = 0

    def allow(self) -> bool:
        """May the caller attempt the protected operation right now?

        In ``open``, flips to ``half_open`` and grants one probe once the
        reset timeout has elapsed; everyone else is rejected until the
        probe reports back via :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self.state = self.HALF_OPEN
                self._probe_outstanding = True
                self.probes += 1
                return True
            self.rejections += 1
            return False
        # half_open: one probe in flight, everyone else waits.
        if self._probe_outstanding:
            self.rejections += 1
            return False
        self._probe_outstanding = True
        self.probes += 1
        return True

    def record_success(self) -> None:
        """The protected operation succeeded."""
        self.successes += 1
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._probe_outstanding = False
            self.state = self.CLOSED
            self.closes += 1
        # A success reported while OPEN (e.g. an attempt that started
        # before the breaker tripped) does NOT close it: only a
        # half-open probe success may.

    def record_failure(self) -> None:
        """The protected operation failed."""
        self.failures += 1
        if self.state == self.HALF_OPEN:
            self._probe_outstanding = False
            self.state = self.OPEN
            self._opened_at = self._clock()
            self.opens += 1
            return
        if self.state == self.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self.state = self.OPEN
                self._opened_at = self._clock()
                self.opens += 1
        # Failures while already OPEN only bump the counter; the reset
        # timer keeps its original deadline so stragglers can't extend
        # the outage window.
