"""Admission control: token buckets, concurrency caps, prioritized shed.

:class:`RateLimiter` is a lazy token bucket (tokens accrue on demand
from a monotonic clock — no refill task), :class:`ConcurrencyLimiter`
a plain in-flight counter with a ceiling, and :class:`AdmissionGate`
the composition the service tier actually mounts: per-tenant and global
buckets plus a concurrency cap, with *prioritized* shedding —

==========  ==============================================================
Priority    Shed policy
==========  ==============================================================
CRITICAL    Never shed (``/healthz`` must answer during the flood).
READ        Shed only when the plane is truly full (concurrency ceiling)
            or the global bucket is dry.
MUTATION    Shed first: rejected above ``mutation_headroom`` of the
            concurrency ceiling and metered by the per-tenant bucket, so
            one noisy tenant's registration storm cannot starve reads.
==========  ==============================================================

A rejected request gets a :class:`Admission` verdict carrying the HTTP
status to return (``429`` when a bucket is dry — with a ``retry_after_s``
hint for the ``Retry-After`` header — or ``503`` when concurrency is
exhausted). Shed decisions are counted per ``(priority, reason)`` both
on the gate and, when a registry is wired, as
``repro_admission_requests_total`` / ``repro_admission_shed_total``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "Admission",
    "AdmissionGate",
    "ConcurrencyLimiter",
    "Priority",
    "RateLimiter",
]

#: Tolerance for float token arithmetic (a bucket refilled at exactly
#: one request per period must admit that request, not starve on 1e-17).
_TOKEN_EPS = 1e-9


class RateLimiter:
    """Token bucket with lazy refill off an injectable monotonic clock.

    ``rate`` tokens accrue per second up to ``burst`` (default: one
    second's worth, floored at 1 so a sub-1/s limiter can still admit a
    whole request). :meth:`try_acquire` never blocks — callers shed or
    retry after :meth:`retry_after` seconds.

    Unlike :class:`repro.dataplane.token_bucket.TokenBucket` (which paces
    a simulated workload on the sim clock), this bucket is an *admission*
    primitive: wall-clock by default, never sleeps, and keeps
    grant/reject counters for the metrics registry.
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_stamp",
                 "_lock", "granted", "rejected")

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive: {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        # The service tier is single-threaded asyncio, but acquire is a
        # read-modify-write — the lock keeps the bucket sound for
        # threaded callers (shard workers, the property suite) too.
        self._lock = threading.Lock()
        #: Monotone grant/reject counters (metrics + property tests).
        self.granted = 0
        self.rejected = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (refills as a side effect)."""
        with self._lock:
            self._refill()
            return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if n <= 0:
            raise ValueError(f"n must be positive: {n}")
        with self._lock:
            self._refill()
            if self._tokens + _TOKEN_EPS >= n:
                self._tokens -= n
                self.granted += 1
                return True
            self.rejected += 1
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have accrued (0 = now).

        A pure query: no tokens are taken, so it is safe to call after a
        failed :meth:`try_acquire` to fill a ``Retry-After`` header.
        """
        with self._lock:
            self._refill()
            deficit = n - self._tokens
            if deficit <= _TOKEN_EPS:
                return 0.0
            return deficit / self.rate


class ConcurrencyLimiter:
    """In-flight request ceiling; acquire/release, never blocks."""

    __slots__ = ("limit", "in_flight", "admitted", "rejected", "high_water")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit}")
        self.limit = int(limit)
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0
        #: Peak concurrent admissions observed (saturation evidence).
        self.high_water = 0

    def try_acquire(self) -> bool:
        if self.in_flight >= self.limit:
            self.rejected += 1
            return False
        self.in_flight += 1
        self.admitted += 1
        if self.in_flight > self.high_water:
            self.high_water = self.in_flight
        return True

    def release(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("release() without a matching acquire")
        self.in_flight -= 1


class Priority:
    """Request priority classes, in shed order (higher sheds first)."""

    CRITICAL = 0  # health/liveness: never shed
    READ = 1      # state queries: shed late
    MUTATION = 2  # writes: shed first

    NAMES = {CRITICAL: "critical", READ: "read", MUTATION: "mutation"}


@dataclass(frozen=True)
class Admission:
    """One admission verdict (and, when shed, how to say no)."""

    admitted: bool
    status: int = 200
    retry_after_s: float = 0.0
    reason: str = ""


_ADMITTED = Admission(True)


class AdmissionGate:
    """The service tier's front-door gate: rate + concurrency + priority.

    One gate guards one server. Callers classify each request into a
    :class:`Priority`, call :meth:`admit` (passing the tenant id when
    one is known), and — for every *admitted* request — call
    :meth:`release` when handling finishes, typically via ``try/finally``.

    Per-tenant buckets are created lazily and capped at ``max_tenants``
    tracked ids; tenants beyond the cap share one overflow bucket, so an
    adversary minting tenant ids cannot grow gate memory without bound.
    """

    def __init__(
        self,
        rate: float = 200.0,
        burst: Optional[float] = None,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        max_concurrency: int = 64,
        mutation_headroom: float = 0.5,
        max_tenants: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        if not 0.0 < mutation_headroom <= 1.0:
            raise ValueError(
                f"mutation_headroom must be in (0, 1]: {mutation_headroom}"
            )
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1: {max_tenants}")
        self._clock = clock
        self.global_bucket = RateLimiter(rate, burst, clock=clock)
        #: Per-tenant mutation budget; defaults to a quarter of the
        #: global rate so no single tenant can drain the shared bucket.
        self.tenant_rate = (
            float(tenant_rate) if tenant_rate is not None else max(rate / 4.0, 1.0)
        )
        self.tenant_burst = tenant_burst
        self.concurrency = ConcurrencyLimiter(max_concurrency)
        #: Mutations shed once in-flight exceeds this many slots, keeping
        #: headroom for reads and health checks under saturation.
        self.mutation_slots = max(1, int(max_concurrency * mutation_headroom))
        self.max_tenants = int(max_tenants)
        self._tenant_buckets: Dict[str, RateLimiter] = {}
        self._overflow_bucket: Optional[RateLimiter] = None
        #: Monotone counters: admissions and sheds by (priority, reason).
        self.admitted_total = 0
        self.shed: Dict[str, int] = {}
        self._metrics = metrics
        self._m_admitted = None
        if metrics is not None:
            self._m_admitted = metrics.counter(
                "repro_admission_requests_total", "requests admitted by the gate"
            )

    # -- internals -----------------------------------------------------------
    def _tenant_bucket(self, tenant: str) -> RateLimiter:
        bucket = self._tenant_buckets.get(tenant)
        if bucket is not None:
            return bucket
        if len(self._tenant_buckets) >= self.max_tenants:
            if self._overflow_bucket is None:
                self._overflow_bucket = RateLimiter(
                    self.tenant_rate, self.tenant_burst, clock=self._clock
                )
            return self._overflow_bucket
        bucket = RateLimiter(self.tenant_rate, self.tenant_burst, clock=self._clock)
        self._tenant_buckets[tenant] = bucket
        return bucket

    def _shed(
        self, priority: int, reason: str, status: int, retry_after_s: float
    ) -> Admission:
        key = f"{Priority.NAMES.get(priority, str(priority))}:{reason}"
        self.shed[key] = self.shed.get(key, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_admission_shed_total",
                "requests shed by the admission gate",
                priority=Priority.NAMES.get(priority, str(priority)),
                reason=reason,
            ).inc()
        return Admission(False, status, retry_after_s, reason)

    # -- the gate ------------------------------------------------------------
    def admit(self, priority: int, tenant: Optional[str] = None) -> Admission:
        """Admit or shed one request; admitted requests must release()."""
        if priority == Priority.CRITICAL:
            # Liveness never sheds — but it still occupies a slot so the
            # in-flight gauge reflects reality.
            self.concurrency.in_flight += 1
            self.concurrency.admitted += 1
            self.concurrency.high_water = max(
                self.concurrency.high_water, self.concurrency.in_flight
            )
            self._count_admit()
            return _ADMITTED
        if priority == Priority.MUTATION:
            if self.concurrency.in_flight >= self.mutation_slots:
                return self._shed(priority, "concurrency", 503, 1.0)
            if tenant is not None:
                bucket = self._tenant_bucket(tenant)
                if not bucket.try_acquire():
                    return self._shed(
                        priority, "tenant-rate", 429, bucket.retry_after()
                    )
            if not self.global_bucket.try_acquire():
                return self._shed(
                    priority, "rate", 429, self.global_bucket.retry_after()
                )
            if not self.concurrency.try_acquire():
                return self._shed(priority, "concurrency", 503, 1.0)
            self._count_admit()
            return _ADMITTED
        # READ: global bucket + full concurrency ceiling only.
        if not self.global_bucket.try_acquire():
            return self._shed(
                priority, "rate", 429, self.global_bucket.retry_after()
            )
        if not self.concurrency.try_acquire():
            return self._shed(priority, "concurrency", 503, 1.0)
        self._count_admit()
        return _ADMITTED

    def _count_admit(self) -> None:
        self.admitted_total += 1
        if self._m_admitted is not None:
            self._m_admitted.inc()

    def release(self) -> None:
        """Return the concurrency slot of one *admitted* request."""
        self.concurrency.release()

    @property
    def shed_total(self) -> int:
        """Requests shed for any reason (monotone)."""
        return sum(self.shed.values())
