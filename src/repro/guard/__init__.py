"""Overload protection: admission, breakers, shedding, degradation.

The defense layer between the control plane and a hostile load profile
(noisy neighbors, metadata storms, demand liars — the PADLL motivation
workloads). Four primitive families, each wired through a different
layer of the plane:

* :mod:`repro.guard.admission` — token-bucket rate limiting plus a
  concurrency cap, composed into the service tier's
  :class:`~repro.guard.admission.AdmissionGate` (prioritized shedding:
  health checks never shed, reads shed late, mutations shed first).
* :mod:`repro.guard.breaker` — the circuit-breaker state machine
  (closed → open → half-open with a single probe) that keeps reconnect
  loops from hammering dead peers.
* :mod:`repro.guard.shed` — :class:`~repro.guard.shed.BoundedOutbox`,
  the per-session outbound queue with a byte high-water mark and a
  shed-oldest-sheddable policy (rule frames are safe to shed because
  rule epochs supersede; phase-pacing frames are not).
* :mod:`repro.guard.degradation` / :mod:`repro.guard.trust` — the
  control brain's graceful-degradation ladder (cached demand → stretched
  cycle interval → changed-only enforcement, with hysteresis) and the
  demand clamp that enforces PSFA's "no false allocation" against
  stages that lie about their demand.

Everything here is stdlib-only, clock-injectable, and allocation-lean —
these objects sit on admission and cycle hot paths.
"""

from repro.guard.admission import (
    Admission,
    AdmissionGate,
    ConcurrencyLimiter,
    Priority,
    RateLimiter,
)
from repro.guard.backoff import full_jitter
from repro.guard.breaker import CircuitBreaker
from repro.guard.degradation import DegradationLadder
from repro.guard.shed import BoundedOutbox
from repro.guard.trust import DemandClamp

__all__ = [
    "Admission",
    "AdmissionGate",
    "BoundedOutbox",
    "CircuitBreaker",
    "ConcurrencyLimiter",
    "DegradationLadder",
    "DemandClamp",
    "Priority",
    "RateLimiter",
    "full_jitter",
]
