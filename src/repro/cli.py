"""Command-line interface: run experiments and reproduce paper artefacts.

Usage (installed as ``python -m repro``):

.. code-block:: console

    python -m repro flat --nodes 2500
    python -m repro hier --nodes 10000 --aggregators 4
    python -m repro hier --nodes 10000 --aggregators 4 --workers 2
    python -m repro coordinated --nodes 1000 --controllers 4
    python -m repro reproduce fig4            # paper-vs-measured tables
    python -m repro plan --nodes 9408 --target-ms 100
    python -m repro live --stages 50 --cycles 20
    python -m repro shard --stages 48 --workers 4
    python -m repro chaos --plane shard --seed 7
    python -m repro chaos --plane live --schedule full-restart --seed 7
    python -m repro serve --store-dir ./state --port 8080
    python -m repro store inspect --dir ./state
    python -m repro bench --out BENCH_PR6.json
    python -m repro calibrate

Every command supports ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.harness.report import (
    compare_row,
    degraded_note,
    format_table,
    format_usage_table,
)

__all__ = ["build_parser", "main"]


def _write_trace(path: str, spans, clock_domain: str) -> None:
    """Export spans as a Chrome trace and note where it went."""
    from repro.obs.chrome_trace import write_chrome_trace

    write_chrome_trace(path, spans, clock_domain=clock_domain)
    print(f"wrote {len(spans)} spans ({clock_domain} clock) -> {path}", file=sys.stderr)


def _emit(payload: Dict, text: str, as_json: bool) -> None:
    print(json.dumps(payload, indent=2, default=str) if as_json else text)


def _result_payload(result) -> Dict:
    return result.summary()


def _result_text(result) -> str:
    phases = result.phase_means_ms()
    rows = [
        ["design", result.design],
        ["stages", result.n_stages],
        ["aggregators", result.n_aggregators],
        ["mean cycle (ms)", f"{result.mean_ms:.2f}"],
        ["collect (ms)", f"{phases['collect']:.2f}"],
        ["compute (ms)", f"{phases['compute']:.2f}"],
        ["enforce (ms)", f"{phases['enforce']:.2f}"],
        ["relative std", f"{result.latency.relative_std:.2%}"],
        ["global CPU %", f"{result.global_usage.cpu_percent:.2f}"],
        ["global memory GB", f"{result.global_usage.memory_gb:.2f}"],
        ["global TX MB/s", f"{result.global_usage.transmitted_mb_s:.2f}"],
        ["global RX MB/s", f"{result.global_usage.received_mb_s:.2f}"],
    ]
    if result.aggregator_usage is not None:
        agg = result.aggregator_usage
        rows += [
            ["per-agg CPU %", f"{agg.cpu_percent:.2f}"],
            ["per-agg memory GB", f"{agg.memory_gb:.3f}"],
        ]
    note = degraded_note(result.latency)
    if note:
        rows.append(["degraded cycles", f"{result.latency.degraded_cycles}"])
        rows.append(["missing replies", f"{result.latency.missing_total}"])
    table = format_table(["metric", "value"], rows)
    return table + ("\n" + note if note else "")


# -- subcommand implementations -------------------------------------------------


def _cmd_flat(args) -> int:
    from repro.harness.experiment import run_flat_experiment

    result = run_flat_experiment(
        args.nodes,
        cycles=args.cycles,
        repeats=args.repeats,
        trace_spans=bool(args.trace_out),
    )
    if args.trace_out:
        _write_trace(args.trace_out, result.spans, "sim")
    _emit(_result_payload(result), _result_text(result), args.json)
    return 0


def _cmd_hier(args) -> int:
    from repro.harness.experiment import run_hierarchical_experiment

    if args.workers > 1:
        return _cmd_hier_partitioned(args)
    result = run_hierarchical_experiment(
        args.nodes,
        args.aggregators,
        cycles=args.cycles,
        repeats=args.repeats,
        decision_offload=args.offload,
        levels=args.levels,
        trace_spans=bool(args.trace_out),
    )
    if args.trace_out:
        _write_trace(args.trace_out, result.spans, "sim")
    _emit(_result_payload(result), _result_text(result), args.json)
    return 0


def _cmd_coordinated(args) -> int:
    from repro.harness.experiment import run_coordinated_experiment

    result = run_coordinated_experiment(
        args.nodes,
        args.controllers,
        cycles=args.cycles,
        repeats=args.repeats,
        trace_spans=bool(args.trace_out),
    )
    if args.trace_out:
        _write_trace(args.trace_out, result.spans, "sim")
    _emit(_result_payload(result), _result_text(result), args.json)
    return 0


def _cmd_hier_partitioned(args) -> int:
    """``hier --workers N>1``: the partition-parallel DES path."""
    from repro.shard import run_partitioned_hier

    result = run_partitioned_hier(
        args.nodes, args.aggregators, args.cycles, workers=args.workers
    )
    stats = result.stats()
    payload = {
        "design": "hier-partitioned",
        "stages": result.n_stages,
        "aggregators": result.n_aggregators,
        "workers": result.workers,
        "cycles": stats.n_cycles,
        "mean_ms": stats.mean_ms,
        **{f"{k}_ms": v for k, v in stats.breakdown().as_dict().items()},
    }
    rows = [
        [k, f"{v:.3f}" if isinstance(v, float) else v]
        for k, v in payload.items()
    ]
    text = format_table(
        ["metric", "value"],
        rows,
        title=(
            f"Partition-parallel hierarchical sim, "
            f"{result.workers} worker processes"
        ),
    )
    _emit(payload, text, args.json)
    return 0


def _cmd_shard(args) -> int:
    """``repro shard``: the live multi-process sharded control plane."""
    from repro.shard import run_live_sharded

    result = run_live_sharded(
        n_stages=args.stages,
        n_workers=args.workers,
        n_cycles=args.cycles,
        codec=args.codec,
        collect_timeout_s=args.collect_timeout,
        enforce_timeout_s=args.enforce_timeout,
    )
    stats = result.stats()
    payload = {
        "stages": result.n_stages,
        "workers": result.n_workers,
        "cycles": stats.n_cycles,
        "cpu_count": result.cpu_count,
        "mean_ms": stats.mean_ms,
        "degraded_cycles": result.degraded_cycles,
        "rules_applied": result.rules_applied_total,
        "evictions": result.evictions,
        "shards": result.shard_rows,
    }
    rows = [
        ["stages", result.n_stages],
        ["worker processes", result.n_workers],
        ["host cores", result.cpu_count],
        ["mean cycle (ms)", f"{stats.mean_ms:.2f}"],
        ["degraded cycles", result.degraded_cycles],
        ["rules applied", result.rules_applied_total],
        ["evictions", result.evictions],
    ]
    text = format_table(
        ["metric", "value"],
        rows,
        title=f"Sharded live control plane, {result.n_workers} workers",
    )
    shard_rows = [
        [
            r["aggregator_id"],
            r["n_stages"],
            r["cycles_served"],
            r["up_codec"],
            f"{r['cpu_seconds']:.2f}",
            r["tx_bytes"],
            r["rx_bytes"],
            f"{r['rss_bytes'] / 2**20:.1f}",
        ]
        for r in result.shard_rows
    ]
    if shard_rows:
        text += "\n\n" + format_table(
            ["shard", "stages", "cycles", "codec", "cpu s", "tx B", "rx B",
             "rss MiB"],
            shard_rows,
            title="Per-shard worker usage (harvested over control pipes)",
        )
    _emit(payload, text, args.json)
    return 0


_REPRODUCIBLES = ("fig4", "fig5", "fig6", "table1", "table2", "table3", "table4")


def _cmd_reproduce(args) -> int:
    from repro.harness.experiment import (
        run_flat_experiment,
        run_hierarchical_experiment,
    )
    from repro.harness.paper import PAPER

    targets = _REPRODUCIBLES if args.artifact == "all" else (args.artifact,)
    payload: Dict[str, object] = {}
    chunks: List[str] = []

    flat_cache: Dict[int, object] = {}
    hier_cache: Dict[int, object] = {}

    def flat(n):
        if n not in flat_cache:
            flat_cache[n] = run_flat_experiment(n, cycles=args.cycles)
        return flat_cache[n]

    def hier(a, n=10_000):
        key = (n, a)
        if key not in hier_cache:
            hier_cache[key] = run_hierarchical_experiment(n, a, cycles=args.cycles)
        return hier_cache[key]

    for target in targets:
        if target == "table1":
            from repro.top500 import table_rows

            rows = table_rows()
            payload["table1"] = rows
            chunks.append(
                format_table(
                    list(rows[0].keys()),
                    [list(r.values()) for r in rows],
                    title="Table I — Top500 systems",
                )
            )
        elif target == "fig4":
            rows = [
                compare_row(f"flat @ {n}", flat(n).mean_ms, PAPER.flat_latency_ms[n])
                for n in (50, 500, 1250, 2500)
            ]
            payload["fig4"] = rows
            chunks.append(
                format_table(
                    ["config", "paper (ms)", "measured (ms)", "error"],
                    rows,
                    title="Fig. 4 — flat design scaling",
                )
            )
        elif target == "table2":
            rows = []
            for n in (50, 500, 1250, 2500):
                u = flat(n).global_usage
                ref = PAPER.flat_resources[n]
                rows.append(
                    [n, ref.cpu_percent, u.cpu_percent, ref.memory_gb, u.memory_gb,
                     ref.transmitted_mb_s, u.transmitted_mb_s, ref.received_mb_s, u.received_mb_s]
                )
            payload["table2"] = rows
            chunks.append(
                format_table(
                    ["nodes", "cpu%(p)", "cpu%", "memGB(p)", "memGB",
                     "tx(p)", "tx", "rx(p)", "rx"],
                    rows,
                    title="Table II — flat controller resources",
                )
            )
        elif target == "fig5":
            rows = [
                compare_row(
                    f"10k nodes / {a} aggs", hier(a).mean_ms, PAPER.hier_latency_ms[a]
                )
                for a in (4, 5, 10, 20)
            ]
            payload["fig5"] = rows
            chunks.append(
                format_table(
                    ["config", "paper (ms)", "measured (ms)", "error"],
                    rows,
                    title="Fig. 5 — hierarchical design at 10,000 nodes",
                )
            )
        elif target == "table3":
            rows = []
            for a in (4, 5, 10, 20):
                r = hier(a)
                g_ref = PAPER.hier_global_resources[a]
                a_ref = PAPER.hier_aggregator_resources[a]
                rows.append([f"A={a} global", g_ref.cpu_percent, r.global_usage.cpu_percent,
                             g_ref.memory_gb, r.global_usage.memory_gb])
                rows.append([f"A={a} aggregator", a_ref.cpu_percent,
                             r.aggregator_usage.cpu_percent, a_ref.memory_gb,
                             r.aggregator_usage.memory_gb])
            payload["table3"] = rows
            chunks.append(
                format_table(
                    ["controller", "cpu%(p)", "cpu%", "memGB(p)", "memGB"],
                    rows,
                    title="Table III — hierarchical resources at 10,000 nodes",
                )
            )
        elif target == "fig6":
            f, h = flat(2500), hier(1, n=2500)
            rows = [
                ["flat", PAPER.fig6_flat_ms, f.mean_ms],
                ["hierarchical (1 agg)", PAPER.fig6_hier_ms, h.mean_ms],
            ]
            payload["fig6"] = rows
            chunks.append(
                format_table(
                    ["design", "paper (ms)", "measured (ms)"],
                    rows,
                    title="Fig. 6 — flat vs hierarchical at 2,500 nodes",
                )
            )
        elif target == "table4":
            f, h = flat(2500), hier(1, n=2500)
            rows = [
                ["flat global", PAPER.table4_flat_global.cpu_percent,
                 f.global_usage.cpu_percent],
                ["hier global", PAPER.table4_hier_global.cpu_percent,
                 h.global_usage.cpu_percent],
                ["hier aggregator", PAPER.table4_hier_aggregator.cpu_percent,
                 h.aggregator_usage.cpu_percent],
            ]
            payload["table4"] = rows
            chunks.append(
                format_table(
                    ["controller", "cpu% (paper)", "cpu% (measured)"],
                    rows,
                    title="Table IV — CPU usage, flat vs hierarchical at 2,500",
                )
            )
    _emit(payload, "\n\n".join(chunks), args.json)
    return 0


def _cmd_plan(args) -> int:
    from repro.harness.analysis import CapacityPlanner

    planner = CapacityPlanner(connection_limit=args.connection_limit)
    rec = planner.recommend(args.nodes, args.target_ms)
    payload = {
        "design": rec.design,
        "n_aggregators": rec.n_aggregators,
        "predicted_latency_ms": rec.predicted_latency_ms,
        "controller_nodes": rec.controller_nodes,
        "meets_target": rec.meets_target,
        "reason": rec.reason,
    }
    _emit(payload, rec.summary(), args.json)
    return 0 if rec.meets_target else 2


def _cmd_live(args) -> int:
    from repro.live import run_live_flat, run_live_hierarchical

    observe = bool(args.obs_out) or args.metrics_port is not None
    if args.aggregators:
        result = run_live_hierarchical(
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            n_cycles=args.cycles,
            collect_timeout_s=args.collect_timeout,
            enforce_timeout_s=args.enforce_timeout,
            observe=observe,
            metrics_port=args.metrics_port,
        )
    else:
        result = run_live_flat(
            n_stages=args.stages,
            n_cycles=args.cycles,
            collect_timeout_s=args.collect_timeout,
            enforce_timeout_s=args.enforce_timeout,
            observe=observe,
            metrics_port=args.metrics_port,
        )
    if args.obs_out:
        _write_trace(args.obs_out, result.spans, "wall")
    stats = result.stats()
    bd = stats.breakdown()
    payload = {
        "stages": args.stages,
        "cycles": stats.n_cycles,
        "mean_ms": stats.mean_ms,
        **{f"{k}_ms": v for k, v in bd.as_dict().items()},
        "rules_applied": result.rules_applied_total,
        "degraded_cycles": result.degraded_cycles,
        "missing_total": result.missing_total,
        "evictions": result.evictions,
        "reconnects": result.reconnects,
    }
    text = format_table(
        ["metric", "value"],
        [[k, f"{v:.3f}" if isinstance(v, float) else v] for k, v in payload.items()],
        title=f"Live TCP control plane, {args.stages} stages",
    )
    if result.usage_report is not None:
        payload["usage"] = {
            name: usage.as_dict()
            for name, usage in result.usage_report.per_host.items()
        }
        text += "\n\n" + format_usage_table(
            result.usage_report,
            title="Per-controller usage (live /proc + frame accounting)",
        )
    if result.metrics_port is not None:
        payload["metrics_port"] = result.metrics_port
    note = degraded_note(stats)
    if note:
        text += "\n" + note
    _emit(payload, text, args.json)
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import (
        run_chaos_live,
        run_chaos_overload,
        run_chaos_restart,
        run_chaos_shard,
        run_chaos_sim,
    )

    if args.schedule == "overload":
        if args.plane != "live":
            print("--schedule overload requires --plane live", file=sys.stderr)
            return 2
        report = run_chaos_overload(
            args.seed,
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            n_cycles=args.cycles,
            cycle_period_s=args.cycle_period,
            store_dir=args.store_dir,
        )
        return _finish_chaos(report, args)
    if args.schedule == "full-restart":
        if args.plane != "live":
            print("--schedule full-restart requires --plane live", file=sys.stderr)
            return 2
        report = run_chaos_restart(
            args.seed,
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            n_cycles=args.cycles,
            cycle_period_s=args.cycle_period,
            store_dir=args.store_dir,
        )
        return _finish_chaos(report, args)
    if args.plane == "sim":
        report = run_chaos_sim(
            args.seed,
            design=args.design,
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            n_cycles=args.cycles,
        )
    elif args.plane == "shard":
        report = run_chaos_shard(
            args.seed,
            n_stages=args.stages,
            n_workers=args.aggregators,
            n_cycles=args.cycles,
            cycle_period_s=args.cycle_period,
        )
    else:
        report = run_chaos_live(
            args.seed,
            design=args.design,
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            n_cycles=args.cycles,
            cycle_period_s=args.cycle_period,
        )
    return _finish_chaos(report, args)


def _finish_chaos(report, args) -> int:
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote chaos report -> {args.report_out}", file=sys.stderr)
    text = report.summary()
    if report.violations:
        text += "\n" + "\n".join(
            f"  cycle {v.cycle} [{v.invariant}] {v.detail}"
            for v in report.violations
        )
    _emit(report.to_dict(), text, args.json)
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import run_serve

    summary = asyncio.run(
        run_serve(
            args.store_dir,
            port=args.port,
            n_stages=args.stages,
            n_aggregators=args.aggregators,
            cycle_period_s=args.cycle_period,
            max_cycles=args.max_cycles,
            ready_file=args.ready_file,
            admission_rate=args.admission_rate,
            max_connections=args.max_connections,
        )
    )
    rows = [
        ["port", summary["port"]],
        ["resumed from store", summary["resumed"]],
        ["initial epoch", summary["initial_epoch"]],
        ["final epoch", summary["epoch"]],
        ["cycles run", summary["cycles_run"]],
        ["tenants", summary["tenants"]],
        ["http requests served", summary["requests_served"]],
        ["http requests shed", summary["requests_shed"]],
        ["connections shed", summary["connections_shed"]],
        ["degradation level at exit", summary["degradation_level"]],
        ["demand clamps", summary["demand_clamps"]],
        ["durable epoch", summary["store"]["durable_epoch"]],
        ["wal bytes", summary["store"]["wal_bytes"]],
    ]
    text = format_table(["serve", "value"], rows, title="Service-tier run")
    _emit(summary, text, args.json)
    return 0


def _cmd_store(args) -> int:
    from repro.store import DurableStore

    if args.action != "inspect":
        print(f"unknown store action: {args.action}", file=sys.stderr)
        return 2
    store = DurableStore(args.dir)
    try:
        info = store.inspect()
    finally:
        store.close()
    rows = [[key, info[key]] for key in sorted(info)]
    text = format_table(
        ["field", "value"], rows, title=f"Durable store @ {args.dir}"
    )
    _emit(info, text, args.json)
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.bench import SCHEMA, check_regression, load_artifact, run_bench

    if args.out and os.path.exists(args.out) and not args.force:
        # Refuse to silently rewrite a committed baseline under a
        # different schema generation — that is how artifact drift
        # starts (a /1 baseline half-overwritten with /2 keys).
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                existing_schema = json.load(fh).get("schema")
        except (OSError, ValueError):
            existing_schema = None
        if existing_schema is not None and existing_schema != SCHEMA:
            print(
                f"refusing to overwrite {args.out} (schema "
                f"{existing_schema!r}) with a {SCHEMA!r} artifact; "
                f"pass --force or pick a new --out name",
                file=sys.stderr,
            )
            return 2
    result = run_bench(quick=args.quick)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote bench artifact -> {args.out}", file=sys.stderr)
    rows = [
        ["engine events/s", f"{result['engine']['events_per_s']:,.0f}"],
        ["engine speedup vs pre-PR kernel", f"{result['engine']['speedup']:.2f}x"],
        *[
            [f"sim {key} (ms/cycle)", f"{v['wall_s_per_cycle'] * 1e3:.1f}"]
            for key, v in result["sim_cycles"]["legs"].items()
        ],
        ["live enforce frames/s", f"{result['live']['frames_per_s']:,.0f}"],
        ["live speedup vs seed wire path", f"{result['live']['speedup']:.2f}x"],
        *[
            [
                f"shard {k}w cycle (ms)",
                f"{leg['sharded_cycle_s'] * 1e3:.1f} "
                f"({leg['speedup']:.2f}x vs single-process)",
            ]
            for k, leg in result["shard"]["legs"].items()
        ],
        ["shard host cores", f"{result['shard']['cpu_count']:.0f}"],
        ["wal appends/s (batched fsync)", f"{result['store']['appends_per_s']:,.0f}"],
        ["wal speedup vs fsync-per-record", f"{result['store']['speedup']:.2f}x"],
        ["store cold restore (ms)", f"{result['store']['restore_s'] * 1e3:.1f}"],
        *[
            [
                f"overload {load} honest attainment",
                f"{leg['guarded']['honest_attainment']:.0%} guarded / "
                f"{leg['unguarded']['honest_attainment']:.0%} unguarded",
            ]
            for load, leg in result["overload"]["legs"].items()
        ],
        [
            "overload guard advantage (10x leg)",
            f"{result['overload']['speedup']:.2f}x honest goodput",
        ],
        *[
            [
                f"shootout {name}",
                f"conv={row['convergence_cycles']} cycles, "
                f"jain={row['jain_index']:.3f}, "
                f"storm={row['storm_share']:.0%} of MDS",
            ]
            for name, row in result["shootout"]["contenders"].items()
        ],
        [
            "shootout storm containment (padll vs psfa)",
            f"{result['shootout']['speedup']:.2f}x less MDS held by storm",
        ],
    ]
    text = format_table(
        ["benchmark", "value"], rows, title="Hot-path micro-benchmarks"
    )
    _emit(result, text, args.json)
    if args.check:
        message = check_regression(
            result, load_artifact(args.check), max_cycle_ratio=args.max_ratio
        )
        if message is not None:
            print(message, file=sys.stderr)
            return 1
        print(f"no regression vs {args.check}", file=sys.stderr)
    return 0


def _cmd_archive(args) -> int:
    from repro.harness.store import RunArchive, result_to_dict

    archive = RunArchive(args.dir)
    if args.action == "list":
        names = archive.names()
        _emit({"runs": names}, "\n".join(names) if names else "(empty)", args.json)
        return 0
    if args.action == "run":
        if not args.name or args.nodes is None:
            print("archive run requires --name and --nodes")
            return 1
        from repro.harness.experiment import (
            run_flat_experiment,
            run_hierarchical_experiment,
        )

        if args.aggregators:
            result = run_hierarchical_experiment(
                args.nodes, args.aggregators, cycles=args.cycles
            )
        else:
            result = run_flat_experiment(args.nodes, cycles=args.cycles)
        path = archive.save(args.name, result, overwrite=args.overwrite)
        _emit(
            {"saved": str(path), **result.summary()},
            f"saved {result.design} run as {args.name!r} -> {path}",
            args.json,
        )
        return 0
    if args.action == "show":
        if not args.name:
            print("archive show requires --name")
            return 1
        result = archive.load(args.name)
        _emit(_result_payload(result), _result_text(result), args.json)
        return 0
    print(f"unknown archive action: {args.action}")
    return 1


def _cmd_report(args) -> int:
    from repro.harness.writeup import generate_report

    text = generate_report(scale=args.scale, cycles=args.cycles)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_calibrate(args) -> int:
    from repro.harness.calibration import fit_cost_model, prediction_errors
    from repro.core.costs import FRONTERA_COST_MODEL

    shipped = prediction_errors(FRONTERA_COST_MODEL)
    fit = fit_cost_model()
    payload = {
        "shipped_errors": shipped,
        "fitted_errors": fit.errors,
        "scale_factors": fit.scale_factors,
    }
    rows = [
        [k, f"{shipped[k]:+.1%}", f"{fit.errors[k]:+.1%}"] for k in shipped
    ]
    text = format_table(
        ["target", "shipped model error", "refit error"],
        rows,
        title="Calibration against the paper's Frontera measurements",
    )
    _emit(payload, text, args.json)
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Can Current SDS Controllers Scale To Modern "
            "HPC Infrastructures?' (SC 2024)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, cycles_default=10, trace=False):
        p.add_argument("--cycles", type=int, default=cycles_default,
                       help="control cycles per run")
        p.add_argument("--repeats", type=int, default=1,
                       help="independent repetitions to pool")
        p.add_argument("--json", action="store_true", help="JSON output")
        if trace:
            p.add_argument("--trace-out", type=str, default=None,
                           help="write cycle spans as a Chrome trace "
                                "(sim clock; open in Perfetto)")

    p = sub.add_parser("flat", help="run a flat control-plane experiment")
    p.add_argument("--nodes", type=int, required=True)
    common(p, cycles_default=12, trace=True)
    p.set_defaults(func=_cmd_flat)

    p = sub.add_parser("hier", help="run a hierarchical experiment")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--aggregators", type=int, required=True)
    p.add_argument("--offload", action="store_true",
                   help="run PSFA at the aggregators (decision offloading)")
    p.add_argument("--levels", type=int, choices=(2, 3), default=2)
    p.add_argument("--workers", type=int, default=1,
                   help="simulate with N worker processes (partition-"
                        "parallel DES; 1 = today's single-process engine)")
    common(p, trace=True)
    p.set_defaults(func=_cmd_hier)

    p = sub.add_parser("coordinated", help="run a coordinated-flat experiment")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--controllers", type=int, required=True)
    common(p, trace=True)
    p.set_defaults(func=_cmd_coordinated)

    p = sub.add_parser(
        "reproduce", help="regenerate a paper figure/table (or 'all')"
    )
    p.add_argument("artifact", choices=(*_REPRODUCIBLES, "all"))
    common(p)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("plan", help="recommend a design for a deployment")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--target-ms", type=float, required=True,
                   help="control-cycle latency target")
    p.add_argument("--connection-limit", type=int, default=2500)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("live", help="run the real asyncio/TCP control plane")
    p.add_argument("--stages", type=int, default=50)
    p.add_argument("--cycles", type=int, default=20)
    p.add_argument("--aggregators", type=int, default=0,
                   help="run the hierarchical live design with N aggregators")
    p.add_argument("--collect-timeout", type=float, default=None,
                   help="collect-phase deadline in seconds (partial collect)")
    p.add_argument("--enforce-timeout", type=float, default=None,
                   help="enforce-phase deadline (defaults to collect timeout)")
    p.add_argument("--obs-out", type=str, default=None,
                   help="record wall-clock spans and /proc usage; write the "
                        "Chrome trace here")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve GET /metrics on this port during the run "
                        "(0 picks an ephemeral port)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_live)

    p = sub.add_parser(
        "shard",
        help="run the live control plane sharded across worker processes",
    )
    p.add_argument("--stages", type=int, default=40)
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker processes (one aggregator subtree each)")
    p.add_argument("--cycles", type=int, default=10)
    p.add_argument("--codec", choices=("binary", "json"), default="binary")
    p.add_argument("--collect-timeout", type=float, default=None,
                   help="collect-phase deadline in seconds (partial collect)")
    p.add_argument("--enforce-timeout", type=float, default=None,
                   help="enforce-phase deadline (defaults to collect timeout)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "chaos",
        help="run a seeded fault schedule and check invariants "
             "(exit 1 on violation)",
    )
    p.add_argument("--plane", choices=("sim", "live", "shard"), default="live")
    p.add_argument("--design", choices=("hier", "flat"), default="hier",
                   help="hier = aggregator tree (kill/stall aggregators); "
                        "flat = primary + hot standby (kill the primary); "
                        "shard plane always runs hier (--aggregators = "
                        "worker count)")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule seed; the same seed reproduces the "
                        "same fault sequence")
    p.add_argument("--stages", type=int, default=9)
    p.add_argument("--aggregators", type=int, default=3)
    p.add_argument("--cycles", type=int, default=12)
    p.add_argument("--cycle-period", type=float, default=0.1,
                   help="live-plane cycle pacing in seconds")
    p.add_argument("--schedule", choices=("faults", "full-restart", "overload"),
                   default="faults",
                   help="faults = per-component kill/stall schedule; "
                        "full-restart = kill -9 the whole plane and "
                        "restart from the durable store (live plane only); "
                        "overload = adversarial tenants + a 10x request "
                        "flood against the guarded service tier "
                        "(live plane only)")
    p.add_argument("--store-dir", type=str, default=None,
                   help="durable-store directory for --schedule "
                        "full-restart/overload (default: a run-scoped tempdir)")
    p.add_argument("--report-out", type=str, default=None,
                   help="write the JSON chaos report here (CI artifact)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="serve the multi-tenant REST API over a live plane backed "
             "by the durable store",
    )
    p.add_argument("--store-dir", type=str, required=True,
                   help="durable-store directory (WAL + snapshot); "
                        "created on first boot, recovered on restart")
    p.add_argument("--port", type=int, default=0,
                   help="HTTP port (0 picks an ephemeral port)")
    p.add_argument("--stages", type=int, default=12)
    p.add_argument("--aggregators", type=int, default=3)
    p.add_argument("--cycle-period", type=float, default=0.05,
                   help="control-cycle pacing in seconds")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="exit after N control cycles (default: run until "
                        "SIGTERM/SIGINT)")
    p.add_argument("--ready-file", type=str, default=None,
                   help="write {port, pid, resumed, initial_epoch} JSON "
                        "here once the API is accepting requests")
    p.add_argument("--admission-rate", type=float, default=200.0,
                   help="admission-gate global token rate in requests/s; "
                        "excess load is shed with 429 + Retry-After")
    p.add_argument("--max-connections", type=int, default=256,
                   help="concurrent HTTP connection cap; connections over "
                        "the cap get an immediate 503")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "store", help="inspect a durable-store directory (WAL + snapshot)"
    )
    p.add_argument("action", choices=("inspect",))
    p.add_argument("--dir", type=str, required=True,
                   help="durable-store directory")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "bench",
        help="run the hot-path micro-benchmarks (exit 1 on regression "
             "with --check)",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads for CI smoke runs")
    p.add_argument("--out", type=str, default=None,
                   help="write the JSON artifact here (e.g. BENCH_PR7.json)")
    p.add_argument("--force", action="store_true",
                   help="allow --out to overwrite an existing artifact "
                        "written under a different schema version")
    p.add_argument("--check", type=str, default=None,
                   help="compare sim cycle latency against this committed "
                        "artifact; exit 1 when a cycle regressed")
    p.add_argument("--max-ratio", type=float, default=2.0,
                   help="allowed wall-clock-per-cycle ratio vs the --check "
                        "baseline")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "archive", help="save, list, and inspect stored experiment runs"
    )
    p.add_argument("action", choices=("run", "list", "show"))
    p.add_argument("--dir", type=str, default="runs",
                   help="archive directory (default: ./runs)")
    p.add_argument("--name", type=str, default=None)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--aggregators", type=int, default=0)
    p.add_argument("--cycles", type=int, default=10)
    p.add_argument("--overwrite", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_archive)

    p = sub.add_parser(
        "report", help="run the grid and write a markdown reproduction report"
    )
    p.add_argument("--scale", type=int, default=1,
                   help="divide the paper's node counts by this factor")
    p.add_argument("--cycles", type=int, default=10)
    p.add_argument("--output", type=str, default=None,
                   help="file to write (default: stdout)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("calibrate", help="refit the cost model to the paper")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_calibrate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
