"""Trace-driven workloads: record, generate, and replay demand series.

The paper's future work calls for studying the control planes "with real
workloads and applications". Real facility traces are not redistributable,
so this module provides the standard substitute:

* :class:`TraceSource` — a metric source replaying an explicit
  ``(time, data_iops, metadata_iops)`` step series (which can be exported
  from any I/O monitoring system, e.g. Darshan or LMT summaries);
* :func:`generate_facility_trace` — a synthetic facility-scale trace
  built from a mix of the workload archetypes in
  :mod:`repro.jobs.workloads` plus a diurnal load envelope, matching the
  qualitative statistics published for production PFS traffic (bursty,
  heavy-tailed, metadata-spiky — e.g. Patel et al., SC'19);
* CSV import/export helpers for interchange.
"""

from __future__ import annotations

import csv
import io
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.simnet.rng import RandomStreams

__all__ = [
    "TracePoint",
    "TraceSource",
    "generate_facility_trace",
    "read_trace_csv",
    "write_trace_csv",
]


@dataclass(frozen=True)
class TracePoint:
    """One step of a demand trace (rates hold until the next point)."""

    time_s: float
    data_iops: float
    metadata_iops: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"negative trace time: {self.time_s}")
        if self.data_iops < 0 or self.metadata_iops < 0:
            raise ValueError("negative trace rate")


class TraceSource:
    """Replays a step-wise demand trace as a stage metric source.

    Sampling before the first point returns zeros; after the last point
    the trace either holds its final value (``hold_last=True``) or wraps
    around periodically (default), which suits steady-state stress runs.
    """

    def __init__(
        self,
        points: Sequence[TracePoint],
        hold_last: bool = False,
    ) -> None:
        if not points:
            raise ValueError("trace needs at least one point")
        times = [p.time_s for p in points]
        if times != sorted(times):
            raise ValueError("trace points must be time-ordered")
        if len(set(times)) != len(times):
            raise ValueError("duplicate trace times")
        self.points: Tuple[TracePoint, ...] = tuple(points)
        self.hold_last = bool(hold_last)
        self._times = times
        self._span = times[-1]

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        t = now
        if not self.hold_last and self._span > 0:
            t = now % self._span if now > self._span else now
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return (0.0, 0.0)
        point = self.points[idx]
        return (point.data_iops, point.metadata_iops)

    @property
    def duration_s(self) -> float:
        return self._span


def generate_facility_trace(
    duration_s: float = 120.0,
    step_s: float = 1.0,
    seed: int = 0,
    base_data_iops: float = 800.0,
    base_metadata_iops: float = 120.0,
    burst_probability: float = 0.05,
    burst_multiplier: float = 8.0,
    diurnal_amplitude: float = 0.3,
) -> List[TracePoint]:
    """A synthetic facility demand trace with production-like features.

    Composition per step: a diurnal-style sinusoidal envelope, log-normal
    multiplicative noise (heavy tail), and Bernoulli bursts that multiply
    the rate for one step — metadata bursting harder than data, as DL/LLM
    characterisations report.
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    if not 0 <= burst_probability <= 1:
        raise ValueError(f"burst probability out of range: {burst_probability}")
    rng = RandomStreams(seed).stream("facility-trace")
    n_steps = int(duration_s / step_s)
    points: List[TracePoint] = []
    for i in range(n_steps):
        t = i * step_s
        envelope = 1.0 + diurnal_amplitude * np.sin(2 * np.pi * t / duration_s)
        noise = float(rng.lognormal(mean=0.0, sigma=0.3))
        data = base_data_iops * envelope * noise
        metadata = base_metadata_iops * envelope * float(
            rng.lognormal(mean=0.0, sigma=0.5)
        )
        if rng.random() < burst_probability:
            data *= burst_multiplier
            metadata *= burst_multiplier * 1.5
        points.append(TracePoint(t, float(data), float(metadata)))
    return points


_CSV_HEADER = ("time_s", "data_iops", "metadata_iops")


def write_trace_csv(points: Sequence[TracePoint]) -> str:
    """Render a trace as CSV text (header + one row per point)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(_CSV_HEADER)
    for p in points:
        writer.writerow([p.time_s, p.data_iops, p.metadata_iops])
    return out.getvalue()


def read_trace_csv(text: str) -> List[TracePoint]:
    """Parse CSV text produced by :func:`write_trace_csv` (or compatible)."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(h.strip() for h in header) != _CSV_HEADER:
        raise ValueError(f"expected header {_CSV_HEADER}, got {header}")
    points = []
    for row in reader:
        if not row:
            continue
        if len(row) != 3:
            raise ValueError(f"malformed trace row: {row}")
        points.append(
            TracePoint(float(row[0]), float(row[1]), float(row[2]))
        )
    return points
