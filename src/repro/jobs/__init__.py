"""HPC job and workload models.

Supplies both sides of the study's workload story:

* **Metric sources** (:mod:`repro.jobs.workloads`) — what virtual stages
  report each cycle: the paper's constant *stress* source plus the
  dynamic patterns its Discussion reasons about (bursty on/off, DL
  training epochs, checkpoint storms);
* **Job processes** (:mod:`repro.jobs.job`) — generator-based jobs that
  issue real (simulated) I/O through a data-plane stage and the PFS, used
  by the QoS enforcement examples;
* **Churn** (:mod:`repro.jobs.scheduler`) — Poisson job arrivals and
  departures that register/deregister stages on a running control plane.
"""

from repro.jobs.job import Job, JobPhase, run_job
from repro.jobs.scheduler import ChurnEvent, JobScheduler
from repro.jobs.workloads import (
    BurstySource,
    CheckpointSource,
    DLTrainingSource,
    PoissonSource,
    StressSource,
    source_factory,
)

__all__ = [
    "BurstySource",
    "CheckpointSource",
    "ChurnEvent",
    "DLTrainingSource",
    "Job",
    "JobPhase",
    "JobScheduler",
    "PoissonSource",
    "StressSource",
    "run_job",
    "source_factory",
]
