"""Synthetic workload generators (metric sources for virtual stages).

The paper stress-tests the control plane with virtual stages whose
reported values do not matter ("regardless of the value of each collected
metric, it must run its computation"). :class:`StressSource` reproduces
that. The other sources model the workload classes the paper's motivation
and discussion describe, and drive the beyond-the-paper examples:

* :class:`BurstySource` — on/off traffic; the Discussion's argument for
  low-latency control cycles;
* :class:`DLTrainingSource` — epoch-structured deep-learning I/O: steady
  read demand, metadata storms at epoch boundaries (many small file
  opens), matching the DL/LLM characterisations the paper cites [10–13];
* :class:`CheckpointSource` — long quiet compute phases punctuated by
  massive write bursts (classic HPC checkpoint/restart);
* :class:`PoissonSource` — memoryless fluctuation around a mean.

All sources are deterministic functions of (seed, stage_id, simulated
time), so experiments are reproducible and flat/hierarchical comparisons
see identical demand.
"""

from __future__ import annotations

import zlib
from typing import Callable, Tuple

import numpy as np

from repro.simnet.rng import RandomStreams

__all__ = [
    "BurstySource",
    "CheckpointSource",
    "DLTrainingSource",
    "PoissonSource",
    "StressSource",
    "source_factory",
]


def _stage_phase(stage_id: str) -> float:
    """A stable per-stage phase offset in [0, 1) so stages don't sync up."""
    return (zlib.crc32(stage_id.encode("utf-8")) % 10_000) / 10_000.0


class StressSource:
    """The paper's stress workload: constant demand plus small noise."""

    def __init__(
        self,
        streams: RandomStreams,
        data_iops: float = 1000.0,
        metadata_iops: float = 200.0,
        noise_fraction: float = 0.05,
    ) -> None:
        if data_iops < 0 or metadata_iops < 0:
            raise ValueError("negative IOPS")
        if not 0 <= noise_fraction < 1:
            raise ValueError(f"noise fraction must be in [0, 1): {noise_fraction}")
        self._rng = streams.stream("stress")
        self.data_iops = data_iops
        self.metadata_iops = metadata_iops
        self.noise_fraction = noise_fraction

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        if self.noise_fraction == 0:
            return (self.data_iops, self.metadata_iops)
        jitter = 1.0 + self.noise_fraction * float(self._rng.uniform(-1, 1))
        return (self.data_iops * jitter, self.metadata_iops * jitter)


class BurstySource:
    """On/off demand: ``burst_iops`` for ``on_s``, near zero for ``off_s``."""

    def __init__(
        self,
        burst_iops: float = 5000.0,
        idle_iops: float = 10.0,
        on_s: float = 2.0,
        off_s: float = 8.0,
        metadata_fraction: float = 0.1,
    ) -> None:
        if burst_iops < idle_iops:
            raise ValueError("burst must be >= idle demand")
        if on_s <= 0 or off_s < 0:
            raise ValueError("invalid on/off durations")
        if not 0 <= metadata_fraction <= 1:
            raise ValueError(f"metadata fraction out of range: {metadata_fraction}")
        self.burst_iops = burst_iops
        self.idle_iops = idle_iops
        self.on_s = on_s
        self.off_s = off_s
        self.metadata_fraction = metadata_fraction

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        period = self.on_s + self.off_s
        position = (now + _stage_phase(stage_id) * period) % period
        total = self.burst_iops if position < self.on_s else self.idle_iops
        meta = total * self.metadata_fraction
        return (total - meta, meta)


class DLTrainingSource:
    """Deep-learning training I/O: steady reads + epoch-boundary metadata storms.

    Within each ``epoch_s``-long epoch the job streams training samples
    (high data IOPS, low metadata); during the first ``storm_fraction`` of
    the epoch it re-opens shards/listings (metadata-heavy), the pattern
    [11–13] report for TensorFlow/PyTorch input pipelines on PFSes.
    """

    def __init__(
        self,
        read_iops: float = 3000.0,
        storm_metadata_iops: float = 4000.0,
        steady_metadata_iops: float = 50.0,
        epoch_s: float = 30.0,
        storm_fraction: float = 0.1,
    ) -> None:
        if min(read_iops, storm_metadata_iops, steady_metadata_iops) < 0:
            raise ValueError("negative IOPS")
        if epoch_s <= 0 or not 0 < storm_fraction < 1:
            raise ValueError("invalid epoch shape")
        self.read_iops = read_iops
        self.storm_metadata_iops = storm_metadata_iops
        self.steady_metadata_iops = steady_metadata_iops
        self.epoch_s = epoch_s
        self.storm_fraction = storm_fraction

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        position = ((now + _stage_phase(stage_id) * self.epoch_s) % self.epoch_s) / self.epoch_s
        if position < self.storm_fraction:
            return (self.read_iops * 0.3, self.storm_metadata_iops)
        return (self.read_iops, self.steady_metadata_iops)


class CheckpointSource:
    """Compute-dominated job with periodic checkpoint write bursts."""

    def __init__(
        self,
        checkpoint_iops: float = 8000.0,
        quiet_iops: float = 20.0,
        period_s: float = 60.0,
        checkpoint_s: float = 5.0,
    ) -> None:
        if checkpoint_iops < 0 or quiet_iops < 0:
            raise ValueError("negative IOPS")
        if period_s <= 0 or not 0 < checkpoint_s < period_s:
            raise ValueError("invalid checkpoint timing")
        self.checkpoint_iops = checkpoint_iops
        self.quiet_iops = quiet_iops
        self.period_s = period_s
        self.checkpoint_s = checkpoint_s

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        position = (now + _stage_phase(stage_id) * self.period_s) % self.period_s
        if position < self.checkpoint_s:
            return (self.checkpoint_iops, self.checkpoint_iops * 0.02)
        return (self.quiet_iops, self.quiet_iops * 0.5)


class PoissonSource:
    """Memoryless fluctuation: demand ~ Poisson(mean) each observation."""

    def __init__(
        self,
        streams: RandomStreams,
        mean_data_iops: float = 1000.0,
        mean_metadata_iops: float = 100.0,
    ) -> None:
        if mean_data_iops < 0 or mean_metadata_iops < 0:
            raise ValueError("negative IOPS")
        self._rng = streams.stream("poisson")
        self.mean_data_iops = mean_data_iops
        self.mean_metadata_iops = mean_metadata_iops

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        return (
            float(self._rng.poisson(self.mean_data_iops)),
            float(self._rng.poisson(self.mean_metadata_iops)),
        )


_KINDS = {
    "stress": lambda streams: StressSource(streams),
    "bursty": lambda streams: BurstySource(),
    "dl-training": lambda streams: DLTrainingSource(),
    "checkpoint": lambda streams: CheckpointSource(),
    "poisson": lambda streams: PoissonSource(streams),
}


def source_factory(kind: str, seed: int = 0) -> Callable[[str], object]:
    """A ``ControlPlaneConfig.source_factory`` for the named workload.

    Each stage gets its own source instance (so stateful RNG sources do
    not share streams) with a per-stage seed derived from ``seed``.
    """
    builder = _KINDS.get(kind)
    if builder is None:
        raise ValueError(f"unknown workload kind {kind!r}; choose from {sorted(_KINDS)}")

    def factory(stage_id: str):
        streams = RandomStreams(seed).spawn(stage_id)
        return builder(streams)

    return factory
