"""Job arrival/departure churn over a running control plane.

HPC systems are dynamic — "jobs frequently entering and leaving the
system" (paper §I). :class:`JobScheduler` generates Poisson arrivals of
jobs with exponential lifetimes and applies the membership changes to a
flat control plane's global controller while it is running its stress
loop, exercising registration, deregistration, and connection-slot
recycling under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.core.controller import ChildChannel, GlobalController
from repro.dataplane.virtual_stage import VirtualStage
from repro.simnet.engine import Environment, Process
from repro.simnet.rng import RandomStreams
from repro.simnet.topology import Cluster

__all__ = ["ChurnEvent", "JobScheduler"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change applied to the control plane."""

    time: float
    action: str  # "arrive" | "depart"
    stage_id: str
    job_id: str


class JobScheduler:
    """Drives stage churn against a flat global controller.

    Parameters
    ----------
    arrival_rate_per_s:
        Mean job arrivals per second (Poisson).
    mean_lifetime_s:
        Mean job lifetime (exponential).
    source_factory:
        Metric source for newly arrived stages.
    max_stages:
        Hard cap on concurrently registered stages (connection budget).
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        controller: GlobalController,
        controller_endpoint,
        stage_host,
        streams: RandomStreams,
        source_factory: Callable[[str], object],
        arrival_rate_per_s: float = 2.0,
        mean_lifetime_s: float = 5.0,
        max_stages: int = 1000,
    ) -> None:
        if arrival_rate_per_s <= 0 or mean_lifetime_s <= 0:
            raise ValueError("rates must be positive")
        if max_stages < 1:
            raise ValueError(f"max_stages must be >= 1: {max_stages}")
        self.env = env
        self.cluster = cluster
        self.controller = controller
        self.controller_endpoint = controller_endpoint
        self.stage_host = stage_host
        self.rng = streams.stream("scheduler")
        self.source_factory = source_factory
        self.arrival_rate = float(arrival_rate_per_s)
        self.mean_lifetime = float(mean_lifetime_s)
        self.max_stages = int(max_stages)
        self.events: List[ChurnEvent] = []
        self.active: Dict[str, VirtualStage] = {}
        self._next_id = 0
        self.rejected_arrivals = 0

    def start(self, duration_s: float) -> Process:
        """Run churn for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        return self.env.process(self._run(duration_s), name="job-scheduler")

    # -- internals ---------------------------------------------------------
    def _run(self, duration_s: float) -> Generator:
        end = self.env.now + duration_s
        while self.env.now < end:
            gap = float(self.rng.exponential(1.0 / self.arrival_rate))
            yield self.env.timeout(gap)
            if self.env.now >= end:
                break
            self._arrive()
        # Drain: departures continue via their own scheduled callbacks.

    def _arrive(self) -> None:
        if len(self.active) >= self.max_stages:
            self.rejected_arrivals += 1
            return
        self._next_id += 1
        stage_id = f"churn-stage-{self._next_id:05d}"
        job_id = f"churn-job-{self._next_id:05d}"
        stage = VirtualStage(
            self.env,
            stage_id,
            job_id,
            source=self.source_factory(stage_id),
            costs=self.controller.costs,
        )
        endpoint = self.cluster.network.attach(self.stage_host, stage_id)
        stage.bind(endpoint)
        conn = self.cluster.network.connect(self.controller_endpoint, endpoint)
        self.controller.add_stage(
            stage_id,
            job_id,
            ChildChannel(stage_id, "stage", conn, self.controller_endpoint),
        )
        self.active[stage_id] = stage
        self.events.append(ChurnEvent(self.env.now, "arrive", stage_id, job_id))
        lifetime = float(self.rng.exponential(self.mean_lifetime))
        self.env.call_at(self.env.now + lifetime, lambda: self._depart(stage_id, job_id))

    def _depart(self, stage_id: str, job_id: str) -> None:
        if stage_id not in self.active:
            return
        del self.active[stage_id]
        self.controller.remove_stage(stage_id)
        self.events.append(ChurnEvent(self.env.now, "depart", stage_id, job_id))
