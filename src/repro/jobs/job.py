"""Job processes that issue real (simulated) I/O.

A :class:`Job` describes an HPC application's I/O behaviour as a sequence
of :class:`JobPhase` records; :func:`run_job` drives it as a simulation
process through a data-plane interceptor, so the controller's rate limits
and the PFS's contention both shape what the job achieves. Used by the
QoS enforcement examples (the paper's motivation made concrete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.dataplane.interceptor import IOInterceptor
from repro.simnet.engine import Environment

__all__ = ["Job", "JobPhase", "JobResult", "run_job"]


@dataclass(frozen=True)
class JobPhase:
    """One homogeneous stretch of job behaviour.

    ``duration_s`` of issuing ``data_iops``/``metadata_iops`` *offered*
    load; data ops carry ``io_size_bytes`` each. A compute-only phase has
    zero rates.
    """

    duration_s: float
    data_iops: float = 0.0
    metadata_iops: float = 0.0
    io_size_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"phase duration must be positive: {self.duration_s}")
        if self.data_iops < 0 or self.metadata_iops < 0:
            raise ValueError("negative phase rate")
        if self.io_size_bytes < 0:
            raise ValueError(f"negative I/O size: {self.io_size_bytes}")


@dataclass(frozen=True)
class Job:
    """A job: identity, QoS class, and an I/O script."""

    job_id: str
    qos_class: str
    phases: tuple

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("job needs at least one phase")

    @property
    def duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)


@dataclass
class JobResult:
    """What a job achieved end-to-end."""

    job_id: str
    ops_completed: int = 0
    data_ops: int = 0
    metadata_ops: int = 0
    total_throttle_wait_s: float = 0.0
    total_pfs_wait_s: float = 0.0
    finished_at: float = 0.0

    @property
    def achieved_iops(self) -> float:
        if self.finished_at <= 0:
            return 0.0
        return self.ops_completed / self.finished_at


def run_job(
    env: Environment,
    job: Job,
    interceptor: IOInterceptor,
    result: Optional[JobResult] = None,
) -> Generator:
    """Drive ``job`` through ``interceptor`` as a simulation process.

    Each phase issues operations at its offered rate (fixed inter-arrival
    times; the data/metadata mix interleaves proportionally). Throttling
    by the stage or PFS queueing pushes completions later — offered load
    stays the job's intent, which is exactly the demand signal PSFA uses.
    """
    result = result if result is not None else JobResult(job.job_id)
    for phase in job.phases:
        phase_end = env.now + phase.duration_s
        rate = phase.data_iops + phase.metadata_iops
        if rate <= 0:
            yield env.timeout(phase.duration_s)
            continue
        interval = 1.0 / rate
        metadata_share = phase.metadata_iops / rate
        issued = 0
        # Deterministic proportional interleaving of op classes.
        meta_credit = 0.0
        while env.now < phase_end:
            meta_credit += metadata_share
            if meta_credit >= 1.0:
                meta_credit -= 1.0
                op = yield from interceptor.stat()
                result.metadata_ops += 1
            else:
                op = yield from interceptor.read(phase.io_size_bytes)
                result.data_ops += 1
            result.ops_completed += 1
            result.total_throttle_wait_s += op.throttle_wait_s
            result.total_pfs_wait_s += op.pfs_wait_s
            issued += 1
            # Pace to the offered rate; if throttled behind schedule, issue
            # the next op immediately (closed-loop backlog draining).
            next_issue = op.issued_at + interval
            if next_issue > env.now:
                yield env.timeout(next_issue - env.now)
    result.finished_at = env.now
    return result
