"""Log-bucketed latency histograms for I/O observability.

QoS work lives and dies by tail latency, and means hide tails. This is a
fixed-memory, log-spaced histogram (HdrHistogram-style, much simplified)
used by the data-plane interceptor to record per-operation latencies so
examples and tests can assert on p99s, not just averages.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Log-spaced histogram over ``[min_value_s, max_value_s]``.

    ``buckets_per_decade`` controls resolution (10 gives ~26 % bucket
    width, plenty for latency work). Out-of-range observations clamp to
    the end buckets and are counted separately.
    """

    def __init__(
        self,
        min_value_s: float = 1e-6,
        max_value_s: float = 100.0,
        buckets_per_decade: int = 10,
    ) -> None:
        if min_value_s <= 0 or max_value_s <= min_value_s:
            raise ValueError(
                f"invalid range [{min_value_s}, {max_value_s}]"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1: {buckets_per_decade}"
            )
        self.min_value_s = float(min_value_s)
        self.max_value_s = float(max_value_s)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(max_value_s / min_value_s)
        self._n_buckets = max(1, math.ceil(decades * buckets_per_decade))
        self._counts = [0] * self._n_buckets
        self.total = 0
        self.underflow = 0
        self.overflow = 0
        self._sum = 0.0
        self._max_seen = 0.0

    # -- recording ----------------------------------------------------------
    def _bucket_of(self, value_s: float) -> int:
        ratio = math.log10(value_s / self.min_value_s)
        idx = int(ratio * self.buckets_per_decade)
        return min(max(idx, 0), self._n_buckets - 1)

    def record(self, value_s: float) -> None:
        """Record one latency observation (seconds)."""
        if value_s < 0:
            raise ValueError(f"negative latency: {value_s}")
        self.total += 1
        self._sum += value_s
        self._max_seen = max(self._max_seen, value_s)
        if value_s < self.min_value_s:
            self.underflow += 1
            self._counts[0] += 1
            return
        if value_s > self.max_value_s:
            self.overflow += 1
            self._counts[-1] += 1
            return
        self._counts[self._bucket_of(value_s)] += 1

    # -- queries --------------------------------------------------------------
    def _bucket_upper(self, idx: int) -> float:
        return self.min_value_s * 10 ** ((idx + 1) / self.buckets_per_decade)

    def percentile(self, q: float) -> float:
        """Approximate latency at percentile ``q`` (0–100).

        Returns the upper edge of the bucket containing the rank, so the
        estimate is conservative (never under-reports the tail). Exact
        max is returned for q=100.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self.total == 0:
            return 0.0
        if q == 100:
            return self._max_seen
        rank = q / 100.0 * self.total
        seen = 0
        for idx, count in enumerate(self._counts):
            seen += count
            if seen >= rank and count:
                return min(self._bucket_upper(idx), self._max_seen)
        return self._max_seen

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(bucket upper edge, count) for every populated bucket."""
        return [
            (self._bucket_upper(i), c)
            for i, c in enumerate(self._counts)
            if c
        ]

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same configuration) into this one."""
        if (
            other.min_value_s != self.min_value_s
            or other.max_value_s != self.max_value_s
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("cannot merge differently configured histograms")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.total += other.total
        self.underflow += other.underflow
        self.overflow += other.overflow
        self._sum += other._sum
        self._max_seen = max(self._max_seen, other._max_seen)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.total),
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self._max_seen,
        }
