"""REMORA-like resource usage collection for controller nodes.

The paper collects CPU, memory, and network usage on every node running a
controller, using TACC's REMORA tool [37]. This module reproduces that
reporting convention on simulated hosts:

* **CPU (%)** — whole-node utilisation averaged over the run (busy
  core-seconds / elapsed / cores x 100);
* **Memory (GB)** — resident set of the controller process (steady-state,
  which for our controllers equals the registration-time allocation);
* **Transmitted / Received (MB/s)** — NIC byte rates averaged over the
  measurement window.

Tables II–IV are produced by :meth:`RemoraReport.table_row` per
controller role, with aggregator columns averaged across aggregator
instances exactly as Table III does ("average resource consumption per
aggregator controller").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.simnet.engine import Environment
from repro.simnet.monitor import HostSampler, ResourceSeries
from repro.simnet.node import SimHost

__all__ = ["ControllerUsage", "RemoraReport", "RemoraSession"]

_GB = 1024.0**3
_MB = 1e6  # REMORA reports decimal MB/s


@dataclass(frozen=True)
class ControllerUsage:
    """Steady-state usage of one controller node (one table cell group)."""

    name: str
    cpu_percent: float
    memory_gb: float
    transmitted_mb_s: float
    received_mb_s: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_percent": self.cpu_percent,
            "memory_gb": self.memory_gb,
            "transmitted_mb_s": self.transmitted_mb_s,
            "received_mb_s": self.received_mb_s,
        }


@dataclass
class RemoraReport:
    """Usage for every monitored controller, plus role-level averages."""

    per_host: Dict[str, ControllerUsage]

    def usage(self, host_name: str) -> ControllerUsage:
        return self.per_host[host_name]

    def average(self, host_names: List[str], label: str) -> ControllerUsage:
        """Mean usage across a set of hosts (Table III's per-aggregator
        averages)."""
        if not host_names:
            raise ValueError("no hosts to average")
        rows = [self.per_host[h] for h in host_names]
        return ControllerUsage(
            name=label,
            cpu_percent=float(np.mean([r.cpu_percent for r in rows])),
            memory_gb=float(np.mean([r.memory_gb for r in rows])),
            transmitted_mb_s=float(np.mean([r.transmitted_mb_s for r in rows])),
            received_mb_s=float(np.mean([r.received_mb_s for r in rows])),
        )

    def global_usage(self) -> ControllerUsage:
        """The global controller's row (host named ``global-ctrl``).

        For coordinated-flat planes (no single global), returns the mean
        across the peer controllers.
        """
        for name, usage in self.per_host.items():
            if name.startswith("global"):
                return usage
        peers = [n for n in self.per_host if n.startswith("peer")]
        if peers:
            return self.average(peers, "peer (mean)")
        raise KeyError("no global controller host monitored")

    def aggregator_usage(self) -> Optional[ControllerUsage]:
        """Average across aggregator hosts, or None for flat planes."""
        agg_hosts = [n for n in self.per_host if n.startswith("aggregator")]
        if not agg_hosts:
            return None
        return self.average(agg_hosts, "aggregator (mean)")

    def table_row(self, role: str = "global") -> List[str]:
        """One formatted row of Tables II–IV.

        ``role`` is ``"global"`` (peer-mean fallback for coordinated
        planes), ``"aggregator"`` (mean across aggregator hosts, as in
        Table III), or an exact monitored host name. Columns: name,
        CPU %, memory GB, transmitted MB/s, received MB/s — the same
        order the paper's tables use, so simulated and live
        (:mod:`repro.obs.procfs`) sources render identically.
        """
        if role == "global":
            usage = self.global_usage()
        elif role == "aggregator":
            usage = self.aggregator_usage()
            if usage is None:
                raise KeyError("no aggregator hosts monitored")
        else:
            usage = self.usage(role)
        return [
            usage.name,
            f"{usage.cpu_percent:.1f}",
            f"{usage.memory_gb:.3f}",
            f"{usage.transmitted_mb_s:.3f}",
            f"{usage.received_mb_s:.3f}",
        ]


class RemoraSession:
    """Monitors a set of controller hosts for the duration of a run."""

    def __init__(
        self,
        env: Environment,
        hosts: Mapping[str, SimHost],
        interval_s: float = 1.0,
    ) -> None:
        self.env = env
        self.hosts = dict(hosts)
        self.sampler = HostSampler(env, list(self.hosts.values()), interval=interval_s)
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._baseline: Dict[str, tuple] = {}

    def start(self) -> None:
        """Record counter baselines and begin periodic sampling."""
        self._started_at = self.env.now
        for name, host in self.hosts.items():
            self._baseline[name] = (
                host.busy_seconds,
                host.nic.tx_bytes,
                host.nic.rx_bytes,
            )
        self.sampler.start()

    def stop(self) -> None:
        self._stopped_at = self.env.now
        self.sampler.stop()

    def report(self) -> RemoraReport:
        """Whole-run average usage per monitored host.

        Averages are computed from counter deltas over the full measured
        window (REMORA's ≥5-minute runs amount to the same thing); the
        periodic samples remain available via ``self.sampler.series`` for
        time-series inspection.
        """
        if self._started_at is None:
            raise RuntimeError("session never started")
        end = self._stopped_at if self._stopped_at is not None else self.env.now
        elapsed = end - self._started_at
        if elapsed <= 0:
            raise RuntimeError("empty measurement window")
        per_host: Dict[str, ControllerUsage] = {}
        for name, host in self.hosts.items():
            busy0, tx0, rx0 = self._baseline[name]
            per_host[name] = ControllerUsage(
                name=name,
                cpu_percent=100.0
                * (host.busy_seconds - busy0)
                / (elapsed * host.cores),
                memory_gb=host.resident_bytes / _GB,
                transmitted_mb_s=(host.nic.tx_bytes - tx0) / elapsed / _MB,
                received_mb_s=(host.nic.rx_bytes - rx0) / elapsed / _MB,
            )
        return RemoraReport(per_host)
