"""Resource-usage monitoring (REMORA substitute)."""

from repro.monitoring.histogram import LatencyHistogram
from repro.monitoring.remora import ControllerUsage, RemoraReport, RemoraSession

__all__ = [
    "ControllerUsage",
    "LatencyHistogram",
    "RemoraReport",
    "RemoraSession",
]
