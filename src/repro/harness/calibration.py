"""Analytic latency predictors and cost-model calibration.

The DES executes the full protocol; this module holds the *closed-form*
composition of the same per-operation costs. It serves three purposes:

1. **Calibration** — :func:`fit_cost_model` least-squares-fits a handful
   of scale factors (one per cost group) so the predicted latencies match
   the paper's reported Frontera numbers. The shipped defaults in
   :data:`repro.core.costs.FRONTERA_COST_MODEL` were derived this way.
2. **Validation** — tests assert the simulator's *measured* latencies
   agree with the analytic predictions (the sim adds only round trips and
   service-time tails), catching protocol/cost drift.
3. **Portability** — to model a different machine, fit against its
   observed latencies and pass the resulting :class:`CostModel` into
   :class:`~repro.core.control_plane.ControlPlaneConfig`.

Model correspondence (matching the controllers' phase structure):

* flat collect   = fixed + N·(tx_request + rx_reply)
* flat compute   = compute_fixed + N·psfa
* flat enforce   = fixed + N·(rule_build + tx_rule + rx_ack)
* hier collect   = fixed + A·(tx_request + rx_agg_fixed) +
                   n·(tx_request + rx_reply + merge) + N·rx_agg_entry
* hier compute   = compute_fixed + N·psfa_hier
* hier enforce   = fixed + N·rule_build_hier + A·(tx_batch + rx_agg_ack) +
                   n·(unpack + tx_rule + rx_ack)

with n = ceil(N/A) the per-aggregator partition size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.harness.paper import PAPER, PaperReference

__all__ = [
    "FitResult",
    "fit_cost_model",
    "predict_flat_ms",
    "predict_hier_ms",
    "prediction_errors",
]

#: Round-trip wire/service fixed time per request-reply exchange (s):
#: two 4-hop one-way latencies plus the stage service delay.
def _rtt_fixed(cm: CostModel) -> float:
    hop = 1.0e-6
    return 2 * 4 * hop + cm.stage_service_s


def predict_flat_ms(cm: CostModel, n_stages: int) -> Dict[str, float]:
    """Per-phase analytic latency (ms) of the flat design."""
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1: {n_stages}")
    n = n_stages
    collect = _rtt_fixed(cm) + n * (cm.tx_request_s + cm.rx_reply_s)
    compute = cm.compute_fixed_s + n * cm.psfa_per_stage_s
    enforce = _rtt_fixed(cm) + n * (cm.rule_build_s + cm.tx_rule_s + cm.rx_ack_s)
    return {
        "collect": collect * 1e3,
        "compute": compute * 1e3,
        "enforce": enforce * 1e3,
        "total": (collect + compute + enforce) * 1e3,
    }


def predict_hier_ms(
    cm: CostModel, n_stages: int, n_aggregators: int
) -> Dict[str, float]:
    """Per-phase analytic latency (ms) of the hierarchical design."""
    if n_stages < 1 or n_aggregators < 1:
        raise ValueError("n_stages and n_aggregators must be >= 1")
    n_total = n_stages
    a = n_aggregators
    n = math.ceil(n_total / a)
    collect = (
        2 * _rtt_fixed(cm)
        + a * (cm.tx_request_s + cm.rx_agg_reply_fixed_s)
        + n * (cm.tx_request_s + cm.rx_reply_s + cm.agg_merge_s)
        + cm.agg_summarize_fixed_s
        + n_total * cm.rx_agg_entry_s
    )
    compute = cm.compute_fixed_s + n_total * cm.psfa_per_stage_hier_s
    enforce = (
        2 * _rtt_fixed(cm)
        + n_total * cm.rule_build_hier_s
        + a * (cm.tx_batch_s + cm.rx_agg_ack_s)
        + n * (cm.batch_unpack_s + cm.tx_rule_s + cm.rx_ack_s)
    )
    return {
        "collect": collect * 1e3,
        "compute": compute * 1e3,
        "enforce": enforce * 1e3,
        "total": (collect + compute + enforce) * 1e3,
    }


def prediction_errors(
    cm: CostModel, paper: PaperReference = PAPER
) -> Dict[str, float]:
    """Relative error of every predicted headline latency vs the paper."""
    errors: Dict[str, float] = {}
    for n, target in paper.flat_latency_ms.items():
        pred = predict_flat_ms(cm, n)["total"]
        errors[f"flat@{n}"] = (pred - target) / target
    for a, target in paper.hier_latency_ms.items():
        pred = predict_hier_ms(cm, paper.hier_n_stages, a)["total"]
        errors[f"hier@10000/A={a}"] = (pred - target) / target
    pred = predict_hier_ms(cm, 2500, 1)["total"]
    errors["hier@2500/A=1"] = (pred - paper.fig6_hier_ms) / paper.fig6_hier_ms
    return errors


@dataclass(frozen=True)
class FitResult:
    """Outcome of a calibration fit."""

    cost_model: CostModel
    scale_factors: Dict[str, float]
    errors: Dict[str, float]

    @property
    def mean_abs_error(self) -> float:
        return float(np.mean(np.abs(list(self.errors.values()))))

    @property
    def max_abs_error(self) -> float:
        return float(np.max(np.abs(list(self.errors.values()))))


# Cost groups scaled jointly during fitting. Scaling groups rather than
# all 20 constants keeps the fit well-conditioned (9 targets) while
# preserving the hand-derived within-phase ratios.
_FIT_GROUPS: Dict[str, Tuple[str, ...]] = {
    "flat_collect": ("tx_request_s", "rx_reply_s"),
    "flat_compute": ("psfa_per_stage_s",),
    "flat_enforce": ("rule_build_s", "tx_rule_s", "rx_ack_s"),
    "agg_path": ("agg_merge_s", "batch_unpack_s"),
    "hier_global": (
        "rx_agg_entry_s",
        "psfa_per_stage_hier_s",
        "rule_build_hier_s",
    ),
    "fixed": ("compute_fixed_s", "stage_service_s", "agg_summarize_fixed_s"),
}


def fit_cost_model(
    base: Optional[CostModel] = None,
    paper: PaperReference = PAPER,
    bounds: Tuple[float, float] = (0.6, 1.6),
) -> FitResult:
    """Fit group scale factors so predictions match the paper's latencies.

    Minimises squared relative error over all nine headline latencies
    (four flat, four hierarchical at 10k, one hierarchical at 2.5k).

    ``bounds`` constrain each group's scale around the base model. The
    default +/-60 % window keeps the per-phase ratios — which are visual
    estimates from the stacked bars of Figs. 4–6 and qualitative facts
    (enforce > collect; hierarchical compute < flat compute) — from being
    distorted to chase a single scalar target. Widening the bounds lowers
    the total-latency error further at the cost of phase-shape fidelity
    (the hier@2500/A=1 point is mildly inconsistent with a linear
    per-stage cost model; see EXPERIMENTS.md).
    """
    from scipy.optimize import least_squares

    base = base or FRONTERA_COST_MODEL
    group_names = list(_FIT_GROUPS)

    def apply(scales: np.ndarray) -> CostModel:
        updates = {}
        for scale, group in zip(scales, group_names):
            for field_name in _FIT_GROUPS[group]:
                updates[field_name] = getattr(base, field_name) * float(scale)
        return replace(base, **updates)

    def residuals(scales: np.ndarray) -> np.ndarray:
        cm = apply(scales)
        return np.array(list(prediction_errors(cm, paper).values()))

    fit = least_squares(
        residuals,
        x0=np.ones(len(group_names)),
        bounds=bounds,
        xtol=1e-12,
        ftol=1e-12,
    )
    fitted = apply(fit.x)
    return FitResult(
        cost_model=fitted,
        scale_factors=dict(zip(group_names, map(float, fit.x))),
        errors=prediction_errors(fitted, paper),
    )
