"""Plain-text rendering of the paper's tables and figures.

Benches print the exact rows the paper reports next to the measured
values; these helpers keep that formatting in one place. Figures are
rendered as value series (and optionally coarse ASCII bars) since the
original bar charts carry per-phase stacks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "compare_row",
    "degraded_note",
    "format_figure_series",
    "format_table",
    "format_usage_table",
    "relative_error",
]


def relative_error(measured: float, reference: float) -> float:
    """Signed relative error; inf-safe for zero references."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return (measured - reference) / reference


def degraded_note(stats) -> str:
    """One-line description of a run's degraded cycles ('' when healthy).

    ``stats`` is a :class:`~repro.core.cycle.CycleStats`; any table built
    from one can append this to surface partial-metrics cycles without
    changing its columns.
    """
    degraded = stats.degraded_cycles
    if not degraded:
        return ""
    return (
        f"degraded: {degraded}/{stats.n_cycles} cycles ran on partial "
        f"metrics ({stats.missing_total} missing replies, "
        f"{stats.timeout_cycles} deadline hits)"
    )


def format_usage_table(report, title: Optional[str] = None) -> str:
    """Tables II–IV rows from a :class:`~repro.monitoring.remora.RemoraReport`.

    Works for either source of the report — the simulated plane's
    :class:`~repro.monitoring.remora.RemoraSession` or the live plane's
    :class:`~repro.obs.procfs.LiveUsageSession` — rendering the global
    controller's row plus, when present, the per-aggregator mean
    (Table III's convention).
    """
    headers = ["controller", "CPU (%)", "memory (GB)", "TX (MB/s)", "RX (MB/s)"]
    rows = [report.table_row("global")]
    if report.aggregator_usage() is not None:
        rows.append(report.table_row("aggregator"))
    return format_table(headers, rows, title=title)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned, pipe-separated table."""

    def cell(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def compare_row(
    label: str,
    measured: float,
    reference: float,
    unit: str = "ms",
) -> List:
    """One paper-vs-measured comparison row (label, paper, ours, error)."""
    return [
        label,
        reference,
        measured,
        f"{relative_error(measured, reference):+.1%}",
    ]


def format_figure_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    bar_width: int = 40,
    unit: str = "ms",
) -> str:
    """Render a figure as per-x stacked series plus ASCII total bars.

    ``series`` maps phase name to per-x values; a ``total`` row and a bar
    chart of totals are appended, mirroring the stacked-bar figures.
    """
    headers = [x_label, *series.keys(), f"total ({unit})"]
    totals = [sum(values[i] for values in series.values()) for i in range(len(xs))]
    rows = [
        [xs[i], *(values[i] for values in series.values()), totals[i]]
        for i in range(len(xs))
    ]
    table = format_table(headers, rows, title=title)
    peak = max(totals) if totals else 1.0
    bars = [
        f"  {str(xs[i]).rjust(6)} | "
        + "#" * max(1, round(bar_width * totals[i] / peak))
        + f" {totals[i]:.2f}"
        for i in range(len(xs))
    ]
    return table + "\n" + "\n".join(bars)
