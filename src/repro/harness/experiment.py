"""High-level experiment runners — the package's main entry points.

Each runner stands up a fresh simulation, executes the paper's stress
workload for a number of control cycles, and returns an
:class:`ExperimentResult` bundling latency statistics and per-controller
resource usage. Repetitions (the paper repeats every test >= 3 times)
re-run the whole deployment with distinct seeds and pool the cycles.

These are what the benches, the examples, and the README quickstart call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.control_plane import (
    ControlPlaneConfig,
    CoordinatedFlatControlPlane,
    FlatControlPlane,
    HierarchicalControlPlane,
)
from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.cycle import ControlCycle, CycleStats, PhaseBreakdown
from repro.monitoring.remora import ControllerUsage, RemoraReport

__all__ = [
    "ExperimentResult",
    "run_coordinated_experiment",
    "run_flat_experiment",
    "run_hierarchical_experiment",
]

#: Cycles dropped from statistics at the head of each repetition.
DEFAULT_WARMUP = 2


@dataclass
class ExperimentResult:
    """Pooled outcome of one experiment configuration."""

    design: str
    n_stages: int
    n_aggregators: int
    repetitions: int
    latency: CycleStats
    global_usage: ControllerUsage
    aggregator_usage: Optional[ControllerUsage]
    per_repeat_mean_ms: List[float] = field(default_factory=list)
    #: Sim-clock spans from the *last* repetition (repetitions replay the
    #: same virtual timeline, so pooling them would overlap); empty
    #: unless the runner was asked to ``trace_spans``.
    spans: List = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return self.latency.mean_ms

    def phase_means_ms(self) -> Dict[str, float]:
        return self.latency.breakdown().as_dict()

    @property
    def across_repeat_relative_std(self) -> float:
        """Std/mean of per-repetition means (the paper's repeatability)."""
        if len(self.per_repeat_mean_ms) < 2:
            return 0.0
        arr = np.array(self.per_repeat_mean_ms)
        return float(arr.std(ddof=1) / arr.mean()) if arr.mean() > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        out = {
            "design": self.design,
            "n_stages": self.n_stages,
            "n_aggregators": self.n_aggregators,
            **self.latency.summary(),
        }
        out.update(
            {f"global_{k}": v for k, v in self.global_usage.as_dict().items()}
        )
        if self.aggregator_usage is not None:
            out.update(
                {
                    f"aggregator_{k}": v
                    for k, v in self.aggregator_usage.as_dict().items()
                }
            )
        return out


def _average_usage(rows: List[ControllerUsage], name: str) -> ControllerUsage:
    return ControllerUsage(
        name=name,
        cpu_percent=float(np.mean([r.cpu_percent for r in rows])),
        memory_gb=float(np.mean([r.memory_gb for r in rows])),
        transmitted_mb_s=float(np.mean([r.transmitted_mb_s for r in rows])),
        received_mb_s=float(np.mean([r.received_mb_s for r in rows])),
    )


def _pool(
    design: str,
    n_stages: int,
    n_aggregators: int,
    build_and_run: Callable[[int], tuple],
    repeats: int,
    warmup: int,
) -> ExperimentResult:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    pooled: List[ControlCycle] = []
    global_rows: List[ControllerUsage] = []
    agg_rows: List[ControllerUsage] = []
    per_repeat: List[float] = []
    spans: List = []
    for rep in range(repeats):
        cycles, report, spans = build_and_run(rep)
        kept = cycles[warmup:] if len(cycles) > warmup else cycles
        pooled.extend(kept)
        per_repeat.append(CycleStats(kept).mean_ms)
        global_rows.append(report.global_usage())
        agg = report.aggregator_usage()
        if agg is not None:
            agg_rows.append(agg)
    return ExperimentResult(
        design=design,
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        repetitions=repeats,
        latency=CycleStats(pooled, warmup=0),
        global_usage=_average_usage(global_rows, "global"),
        aggregator_usage=(
            _average_usage(agg_rows, "aggregator (mean)") if agg_rows else None
        ),
        per_repeat_mean_ms=per_repeat,
        spans=spans,
    )


def run_flat_experiment(
    n_stages: int,
    cycles: int = 12,
    repeats: int = 1,
    seed: int = 0,
    costs: CostModel = FRONTERA_COST_MODEL,
    config_kwargs: Optional[dict] = None,
    warmup: int = DEFAULT_WARMUP,
    trace_spans: bool = False,
) -> ExperimentResult:
    """The paper's flat-design experiment (Fig. 4 / Table II points)."""

    def build_and_run(rep: int):
        cfg = ControlPlaneConfig(
            n_stages=n_stages,
            costs=costs,
            trace_spans=trace_spans,
            **(config_kwargs or {}),
        )
        plane = FlatControlPlane.build(cfg)
        plane.run_stress(n_cycles=cycles)
        return plane.global_controller.cycles, plane.resource_report(), plane.spans

    return _pool("flat", n_stages, 0, build_and_run, repeats, warmup)


def run_hierarchical_experiment(
    n_stages: int,
    n_aggregators: int,
    cycles: int = 10,
    repeats: int = 1,
    seed: int = 0,
    costs: CostModel = FRONTERA_COST_MODEL,
    decision_offload: bool = False,
    levels: int = 2,
    config_kwargs: Optional[dict] = None,
    warmup: int = DEFAULT_WARMUP,
    trace_spans: bool = False,
) -> ExperimentResult:
    """The paper's hierarchical experiment (Figs. 5–6 / Tables III–IV)."""

    def build_and_run(rep: int):
        cfg = ControlPlaneConfig(
            n_stages=n_stages,
            costs=costs,
            trace_spans=trace_spans,
            **(config_kwargs or {}),
        )
        plane = HierarchicalControlPlane.build(
            cfg,
            n_aggregators=n_aggregators,
            decision_offload=decision_offload,
            levels=levels,
        )
        plane.run_stress(n_cycles=cycles)
        return plane.global_controller.cycles, plane.resource_report(), plane.spans

    design = "hierarchical-offload" if decision_offload else "hierarchical"
    if levels == 3:
        design += "-3level"
    return _pool(design, n_stages, n_aggregators, build_and_run, repeats, warmup)


def run_coordinated_experiment(
    n_stages: int,
    n_controllers: int,
    cycles: int = 10,
    repeats: int = 1,
    costs: CostModel = FRONTERA_COST_MODEL,
    config_kwargs: Optional[dict] = None,
    warmup: int = DEFAULT_WARMUP,
    trace_spans: bool = False,
) -> ExperimentResult:
    """The §VI coordinated-flat design (beyond-the-paper experiment)."""
    from repro.core.coordination import merge_peer_cycles

    def build_and_run(rep: int):
        cfg = ControlPlaneConfig(
            n_stages=n_stages,
            costs=costs,
            trace_spans=trace_spans,
            **(config_kwargs or {}),
        )
        plane = CoordinatedFlatControlPlane.build(cfg, n_controllers=n_controllers)
        plane.run_stress(n_cycles=cycles)
        merged = merge_peer_cycles([p.cycles for p in plane.peers])
        return merged, plane.resource_report(), plane.spans

    return _pool(
        "coordinated-flat", n_stages, n_controllers, build_and_run, repeats, warmup
    )
