"""Analysis utilities: latency-model fitting and capacity planning.

The paper's Discussion (§V) leaves the operator with a judgement call:
*how many aggregators does my machine need for my reaction-time target?*
This module turns the study's data into that answer:

* :func:`fit_linear_latency` — recover per-stage cost and fixed overhead
  from measured (N, latency) points, the empirical counterpart of the
  analytic predictors in :mod:`repro.harness.calibration`;
* :class:`CapacityPlanner` — given a node count, a control-cycle latency
  target, and the per-node connection ceiling, recommend a design (flat
  vs hierarchical) and the minimum aggregator count that meets the
  target, with the predicted latency and controller-node cost;
* :func:`find_crossover` — locate where one design overtakes another
  along a swept parameter (used for the hierarchy-depth ablation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.harness.calibration import predict_flat_ms, predict_hier_ms

__all__ = [
    "CapacityPlanner",
    "DesignRecommendation",
    "LinearLatencyFit",
    "find_crossover",
    "fit_linear_latency",
]


@dataclass(frozen=True)
class LinearLatencyFit:
    """Least-squares fit of ``latency_ms = fixed_ms + per_stage_ms * N``."""

    fixed_ms: float
    per_stage_us: float
    r_squared: float

    def predict_ms(self, n_stages: int) -> float:
        if n_stages < 0:
            raise ValueError(f"negative n_stages: {n_stages}")
        return self.fixed_ms + self.per_stage_us * n_stages / 1e3


def fit_linear_latency(
    node_counts: Sequence[int],
    latencies_ms: Sequence[float],
) -> LinearLatencyFit:
    """Fit the flat design's near-linear latency curve (Fig. 4's trend).

    Returns the fixed overhead (round trips, compute setup) and the
    marginal cost of one more managed stage — the number that determines
    where a single controller stops being viable.
    """
    x = np.asarray(node_counts, dtype=float)
    y = np.asarray(latencies_ms, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (N, latency) points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = intercept + slope * x
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearLatencyFit(
        fixed_ms=float(intercept),
        per_stage_us=float(slope) * 1e3,
        r_squared=r2,
    )


@dataclass(frozen=True)
class DesignRecommendation:
    """The planner's answer for one deployment question."""

    design: str  # "flat" | "hierarchical"
    n_aggregators: int
    predicted_latency_ms: float
    controller_nodes: int
    meets_target: bool
    reason: str

    def summary(self) -> str:
        verdict = "meets" if self.meets_target else "CANNOT MEET"
        return (
            f"{self.design} ({self.n_aggregators} aggregators, "
            f"{self.controller_nodes} controller node(s)): "
            f"{self.predicted_latency_ms:.1f} ms/cycle — {verdict} target. "
            f"{self.reason}"
        )


class CapacityPlanner:
    """Recommend a control-plane design for a target infrastructure.

    Uses the calibrated analytic predictors, so recommendations carry the
    same fidelity caveats as the cost model (shapes and crossovers, not
    testbed-exact milliseconds).
    """

    def __init__(
        self,
        costs: CostModel = FRONTERA_COST_MODEL,
        connection_limit: int = 2500,
        max_aggregators: int = 512,
    ) -> None:
        if connection_limit < 1:
            raise ValueError(f"connection_limit must be >= 1: {connection_limit}")
        if max_aggregators < 1:
            raise ValueError(f"max_aggregators must be >= 1: {max_aggregators}")
        self.costs = costs
        self.connection_limit = int(connection_limit)
        self.max_aggregators = int(max_aggregators)

    # -- building blocks ------------------------------------------------------
    def min_aggregators(self, n_nodes: int) -> int:
        """Connection-ceiling floor on the aggregator count."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {n_nodes}")
        return math.ceil(n_nodes / self.connection_limit)

    def flat_viable(self, n_nodes: int) -> bool:
        return n_nodes <= self.connection_limit

    def predicted_flat_ms(self, n_nodes: int) -> float:
        return predict_flat_ms(self.costs, n_nodes)["total"]

    def predicted_hier_ms(self, n_nodes: int, n_aggregators: int) -> float:
        return predict_hier_ms(self.costs, n_nodes, n_aggregators)["total"]

    # -- the planner ------------------------------------------------------------
    def recommend(
        self,
        n_nodes: int,
        target_latency_ms: float,
        prefer_fewest_controllers: bool = True,
    ) -> DesignRecommendation:
        """Pick the cheapest design meeting ``target_latency_ms``.

        Preference order (paper §V): a flat single controller when it is
        both viable and fast enough; otherwise the hierarchical design
        with the fewest aggregators that meets the target; if no explored
        configuration meets it, the fastest achievable one, flagged.
        """
        if target_latency_ms <= 0:
            raise ValueError(f"target must be positive: {target_latency_ms}")
        if self.flat_viable(n_nodes):
            flat_ms = self.predicted_flat_ms(n_nodes)
            if flat_ms <= target_latency_ms:
                return DesignRecommendation(
                    design="flat",
                    n_aggregators=0,
                    predicted_latency_ms=flat_ms,
                    controller_nodes=1,
                    meets_target=True,
                    reason=(
                        f"{n_nodes} nodes fit under the "
                        f"{self.connection_limit}-connection ceiling and one "
                        "controller meets the reaction-time target "
                        "(Obs. #1)."
                    ),
                )

        floor = self.min_aggregators(n_nodes)
        best: Optional[Tuple[int, float]] = None
        for a in range(floor, self.max_aggregators + 1):
            ms = self.predicted_hier_ms(n_nodes, a)
            if best is None or ms < best[1]:
                best = (a, ms)
            if ms <= target_latency_ms and prefer_fewest_controllers:
                return DesignRecommendation(
                    design="hierarchical",
                    n_aggregators=a,
                    predicted_latency_ms=ms,
                    controller_nodes=1 + a,
                    meets_target=True,
                    reason=(
                        f"smallest aggregator count >= the connection floor "
                        f"({floor}) whose predicted cycle meets "
                        f"{target_latency_ms:.0f} ms (Obs. #5 trade-off)."
                    ),
                )
            # Adding aggregators stops helping once the per-partition term
            # is negligible; bail out when improvements stall.
            if a > floor + 4 and best is not None and ms > best[1] * 0.999:
                break
        assert best is not None
        a_best, ms_best = best
        return DesignRecommendation(
            design="hierarchical",
            n_aggregators=a_best,
            predicted_latency_ms=ms_best,
            controller_nodes=1 + a_best,
            meets_target=ms_best <= target_latency_ms,
            reason=(
                "no explored configuration meets the target; reporting the "
                "fastest one. Lower-latency control would need a faster "
                "controller substrate (see the CPU-scaling ablation)."
            ),
        )

    def sweep(
        self, n_nodes: int, aggregator_counts: Sequence[int]
    ) -> Dict[int, float]:
        """Predicted latency per aggregator count (Fig. 5's x-axis)."""
        floor = self.min_aggregators(n_nodes)
        out: Dict[int, float] = {}
        for a in aggregator_counts:
            if a < floor:
                continue
            out[a] = self.predicted_hier_ms(n_nodes, a)
        return out


def find_crossover(
    f: Callable[[int], float],
    g: Callable[[int], float],
    lo: int,
    hi: int,
) -> Optional[int]:
    """Smallest x in [lo, hi] where ``f(x) >= g(x)`` flips to ``f < g``.

    Scans integer points (the functions here are cheap analytic models);
    returns None if the ordering never flips. Used to locate e.g. where a
    three-level tree starts beating a two-level one.
    """
    if lo > hi:
        raise ValueError(f"empty range: [{lo}, {hi}]")
    previous = f(lo) >= g(lo)
    for x in range(lo + 1, hi + 1):
        current = f(x) >= g(x)
        if previous and not current:
            return x
        previous = current
    return None
