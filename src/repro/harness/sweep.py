"""Parameter sweeps over experiment configurations.

Small conveniences used by benches and examples to run a family of
experiments (varying node counts, aggregator counts, cost scalings) and
collect results keyed by the swept value.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.harness.experiment import (
    ExperimentResult,
    run_flat_experiment,
    run_hierarchical_experiment,
)

__all__ = ["sweep_aggregators", "sweep_cost_scaling", "sweep_flat_nodes"]


def sweep_flat_nodes(
    node_counts: Sequence[int],
    cycles: int = 12,
    repeats: int = 1,
    costs: CostModel = FRONTERA_COST_MODEL,
) -> Dict[int, ExperimentResult]:
    """Fig. 4's sweep: flat design over increasing node counts."""
    return {
        n: run_flat_experiment(n, cycles=cycles, repeats=repeats, costs=costs)
        for n in node_counts
    }


def sweep_aggregators(
    n_stages: int,
    aggregator_counts: Sequence[int],
    cycles: int = 10,
    repeats: int = 1,
    costs: CostModel = FRONTERA_COST_MODEL,
    decision_offload: bool = False,
) -> Dict[int, ExperimentResult]:
    """Fig. 5's sweep: hierarchical design over aggregator counts."""
    return {
        a: run_hierarchical_experiment(
            n_stages,
            a,
            cycles=cycles,
            repeats=repeats,
            costs=costs,
            decision_offload=decision_offload,
        )
        for a in aggregator_counts
    }


def sweep_cost_scaling(
    run: Callable[[CostModel], ExperimentResult],
    cpu_factors: Sequence[float],
    base: CostModel = FRONTERA_COST_MODEL,
) -> Dict[float, ExperimentResult]:
    """Ablation: rerun an experiment under scaled controller CPU costs."""
    return {f: run(base.scaled(cpu_factor=f)) for f in cpu_factors}
