"""Persistence for experiment results: JSON round-trip and run archives.

Long sweeps (the 10,000-node hierarchy configurations) are worth keeping.
:func:`result_to_dict` / :func:`result_from_dict` give a lossless JSON
round-trip for :class:`~repro.harness.experiment.ExperimentResult`
(including every individual cycle record, so statistics can be recomputed
with different warmups later), and :class:`RunArchive` manages a directory
of named runs with an index.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.cycle import ControlCycle, CycleStats
from repro.harness.experiment import ExperimentResult
from repro.monitoring.remora import ControllerUsage

__all__ = ["RunArchive", "result_from_dict", "result_to_dict"]

_FORMAT_VERSION = 1
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _usage_to_dict(usage: Optional[ControllerUsage]) -> Optional[Dict]:
    if usage is None:
        return None
    return {"name": usage.name, **usage.as_dict()}


def _usage_from_dict(data: Optional[Dict]) -> Optional[ControllerUsage]:
    if data is None:
        return None
    return ControllerUsage(
        name=data["name"],
        cpu_percent=data["cpu_percent"],
        memory_gb=data["memory_gb"],
        transmitted_mb_s=data["transmitted_mb_s"],
        received_mb_s=data["received_mb_s"],
    )


def result_to_dict(result: ExperimentResult) -> Dict:
    """Serialise a result (cycles included) to JSON-compatible data."""
    return {
        "format_version": _FORMAT_VERSION,
        "design": result.design,
        "n_stages": result.n_stages,
        "n_aggregators": result.n_aggregators,
        "repetitions": result.repetitions,
        "per_repeat_mean_ms": list(result.per_repeat_mean_ms),
        "global_usage": _usage_to_dict(result.global_usage),
        "aggregator_usage": _usage_to_dict(result.aggregator_usage),
        "cycles": [
            {
                "epoch": c.epoch,
                "started_at": c.started_at,
                "collect_s": c.collect_s,
                "compute_s": c.compute_s,
                "enforce_s": c.enforce_s,
                "n_stages": c.n_stages,
                "n_missing": c.n_missing,
                "timed_out": c.timed_out,
            }
            for c in result.latency.cycles
        ],
    }


def result_from_dict(data: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` data."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    cycles = [
        ControlCycle(
            epoch=c["epoch"],
            started_at=c["started_at"],
            collect_s=c["collect_s"],
            compute_s=c["compute_s"],
            enforce_s=c["enforce_s"],
            n_stages=c["n_stages"],
            # Absent in archives written before degraded-cycle tracking.
            n_missing=c.get("n_missing", 0),
            timed_out=c.get("timed_out", False),
        )
        for c in data["cycles"]
    ]
    return ExperimentResult(
        design=data["design"],
        n_stages=data["n_stages"],
        n_aggregators=data["n_aggregators"],
        repetitions=data["repetitions"],
        latency=CycleStats(cycles, warmup=0),
        global_usage=_usage_from_dict(data["global_usage"]),
        aggregator_usage=_usage_from_dict(data["aggregator_usage"]),
        per_repeat_mean_ms=list(data["per_repeat_mean_ms"]),
    )


class RunArchive:
    """A directory of named experiment results with a JSON index.

    Layout::

        <root>/index.json              {name: filename}
        <root>/<name>.json             one result each
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "index.json"

    # -- index ------------------------------------------------------------
    def _load_index(self) -> Dict[str, str]:
        if not self._index_path.exists():
            return {}
        return json.loads(self._index_path.read_text(encoding="utf-8"))

    def _save_index(self, index: Dict[str, str]) -> None:
        self._index_path.write_text(
            json.dumps(index, indent=2, sort_keys=True), encoding="utf-8"
        )

    def names(self) -> List[str]:
        """All stored run names, sorted."""
        return sorted(self._load_index())

    def __contains__(self, name: str) -> bool:
        return name in self._load_index()

    # -- storage -----------------------------------------------------------
    def save(self, name: str, result: ExperimentResult, overwrite: bool = False) -> Path:
        """Store ``result`` under ``name``; returns the written path."""
        if not _NAME_RE.match(name):
            raise ValueError(
                f"run name must match {_NAME_RE.pattern!r}: {name!r}"
            )
        index = self._load_index()
        if name in index and not overwrite:
            raise FileExistsError(f"run {name!r} already stored")
        path = self.root / f"{name}.json"
        path.write_text(
            json.dumps(result_to_dict(result), indent=1), encoding="utf-8"
        )
        index[name] = path.name
        self._save_index(index)
        return path

    def load(self, name: str) -> ExperimentResult:
        """Load a stored run by name."""
        index = self._load_index()
        if name not in index:
            raise KeyError(f"no stored run named {name!r}")
        data = json.loads((self.root / index[name]).read_text(encoding="utf-8"))
        return result_from_dict(data)

    def delete(self, name: str) -> None:
        """Remove a stored run."""
        index = self._load_index()
        filename = index.pop(name, None)
        if filename is None:
            raise KeyError(f"no stored run named {name!r}")
        (self.root / filename).unlink(missing_ok=True)
        self._save_index(index)
