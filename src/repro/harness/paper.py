"""Every number the paper reports, as structured reference data.

These are the calibration and validation targets: benches print
paper-vs-measured rows from this module, and EXPERIMENTS.md is generated
against it. Scalar latencies come from the text; per-phase splits are not
published numerically (Figs. 4–6 are bar charts), so only ordinal phase
facts are recorded (e.g. "enforce > collect in the flat design").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PAPER", "PaperReference", "ResourceRow"]


@dataclass(frozen=True)
class ResourceRow:
    """One controller's row of a resource table (Tables II–IV)."""

    cpu_percent: float
    memory_gb: float
    transmitted_mb_s: float
    received_mb_s: float


@dataclass(frozen=True)
class PaperReference:
    """All reported measurements, keyed the way the benches need them."""

    # -- Fig. 4 / §IV-A: flat cycle latency (ms) by node count -------------
    flat_latency_ms: Dict[int, float] = field(
        default_factory=lambda: {50: 1.11, 500: 8.3, 1250: 20.3, 2500: 40.40}
    )
    #: Only 1.11 and 40.40 are given in the text; 500/1250 are read off
    #: Fig. 4's near-linear trend (used with wide tolerance).
    flat_latency_exact: Tuple[int, ...] = (50, 2500)

    # -- Table II: flat global controller resources -------------------------
    flat_resources: Dict[int, ResourceRow] = field(
        default_factory=lambda: {
            50: ResourceRow(6.07, 0.07, 5.67, 3.74),
            500: ResourceRow(9.58, 0.31, 8.74, 5.75),
            1250: ResourceRow(10.39, 0.64, 8.74, 5.74),
            2500: ResourceRow(10.34, 1.18, 9.73, 5.36),
        }
    )

    # -- Fig. 5 / §IV-B: hierarchical at 10,000 nodes (ms) by aggregators ---
    hier_latency_ms: Dict[int, float] = field(
        default_factory=lambda: {4: 103.0, 5: 95.0, 10: 78.0, 20: 68.0}
    )
    #: The text gives 103 (A=4), <80 (A=10), <70 (A=20); A=5 read off Fig. 5.
    hier_latency_bounds: Dict[int, float] = field(
        default_factory=lambda: {10: 80.0, 20: 70.0}
    )
    hier_n_stages: int = 10_000

    # -- Table III: hierarchical resources (global / per-aggregator mean) ---
    hier_global_resources: Dict[int, ResourceRow] = field(
        default_factory=lambda: {
            4: ResourceRow(2.55, 3.52, 4.39, 1.45),
            5: ResourceRow(2.81, 3.56, 4.73, 1.58),
            10: ResourceRow(3.22, 3.53, 5.66, 1.82),
            20: ResourceRow(3.52, 3.60, 6.08, 1.98),
        }
    )
    hier_aggregator_resources: Dict[int, ResourceRow] = field(
        default_factory=lambda: {
            4: ResourceRow(3.95, 0.16, 4.53, 2.53),
            5: ResourceRow(3.40, 0.13, 4.13, 2.31),
            10: ResourceRow(1.94, 0.08, 2.40, 1.34),
            20: ResourceRow(0.95, 0.04, 1.31, 0.73),
        }
    )

    # -- Fig. 6 / Table IV: flat vs hierarchical (A=1) at 2,500 nodes --------
    fig6_flat_ms: float = 41.0
    fig6_hier_ms: float = 53.0
    fig6_max_overhead_ms: float = 12.3  # Obs. #6
    table4_flat_global: ResourceRow = ResourceRow(10.34, 1.18, 9.73, 5.74)
    table4_hier_global: ResourceRow = ResourceRow(1.15, 0.92, 2.36, 0.77)
    table4_hier_aggregator: ResourceRow = ResourceRow(7.83, 0.22, 8.65, 4.98)

    # -- methodology constants ------------------------------------------------
    virtual_stages_per_node: int = 50
    connection_limit: int = 2500
    min_aggregators_for_10k: int = 4
    max_relative_std: float = 0.06  # "standard deviation ... below 6%"

    # -- ordinal phase facts (figures only, no numbers published) -----------
    # Fig. 4: "the enforce phase is more demanding than the collect phase".
    # Fig. 6 / Obs. #7: the compute phase is *cheaper* in the hierarchical
    # design; collect and enforce grow by the extra hop.
    # Fig. 5: compute stays ~constant as aggregators increase; collect and
    # enforce shrink.


PAPER = PaperReference()
