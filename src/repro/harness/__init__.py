"""Experiment harness: paper targets, calibration, runners, reporting."""

from repro.harness.experiment import (
    ExperimentResult,
    run_coordinated_experiment,
    run_flat_experiment,
    run_hierarchical_experiment,
)
from repro.harness.paper import PAPER
from repro.harness.report import format_figure_series, format_table

__all__ = [
    "ExperimentResult",
    "PAPER",
    "format_figure_series",
    "format_table",
    "run_coordinated_experiment",
    "run_flat_experiment",
    "run_hierarchical_experiment",
]
