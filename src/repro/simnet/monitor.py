"""Periodic resource sampling of simulated hosts.

:class:`HostSampler` is the simulation-side half of the REMORA substitute
(:mod:`repro.monitoring.remora` adds the reporting conventions). It runs as
a simulation process, waking every ``interval`` seconds and recording, per
monitored host:

* CPU utilisation (%) over the elapsed window (busy core-seconds /
  window / cores — whole-node normalisation, like REMORA);
* resident memory (bytes);
* NIC transmit/receive rates (bytes/s) over the window.

Samples accumulate into :class:`ResourceSeries`, which exposes the summary
statistics the paper's tables report (steady-state averages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.simnet.engine import Environment, Process
from repro.simnet.node import SimHost

__all__ = ["HostSample", "HostSampler", "ResourceSeries"]


@dataclass(frozen=True)
class HostSample:
    """One observation of one host."""

    time: float
    cpu_percent: float
    resident_bytes: int
    tx_bytes_per_s: float
    rx_bytes_per_s: float


@dataclass
class ResourceSeries:
    """Time series of :class:`HostSample` for one host, with summaries."""

    host_name: str
    samples: List[HostSample] = field(default_factory=list)

    def append(self, sample: HostSample) -> None:
        self.samples.append(sample)

    def _column(self, attr: str, skip: int) -> np.ndarray:
        return np.array([getattr(s, attr) for s in self.samples[skip:]], dtype=float)

    def mean(self, attr: str, warmup_samples: int = 0) -> float:
        """Mean of ``attr`` after discarding ``warmup_samples`` leading samples."""
        col = self._column(attr, warmup_samples)
        if col.size == 0:
            return 0.0
        return float(col.mean())

    def maximum(self, attr: str, warmup_samples: int = 0) -> float:
        col = self._column(attr, warmup_samples)
        if col.size == 0:
            return 0.0
        return float(col.max())

    def __len__(self) -> int:
        return len(self.samples)


class HostSampler:
    """Samples a set of hosts every ``interval`` simulated seconds."""

    def __init__(
        self,
        env: Environment,
        hosts: List[SimHost],
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.env = env
        self.hosts = list(hosts)
        self.interval = float(interval)
        self.series: Dict[str, ResourceSeries] = {
            h.name: ResourceSeries(h.name) for h in self.hosts
        }
        self._last_busy: Dict[str, float] = {}
        self._last_tx: Dict[str, int] = {}
        self._last_rx: Dict[str, int] = {}
        self._last_time: float = env.now
        self._process: Optional[Process] = None
        self._reset_baselines()

    def _reset_baselines(self) -> None:
        for host in self.hosts:
            self._last_busy[host.name] = host.busy_seconds
            self._last_tx[host.name] = host.nic.tx_bytes
            self._last_rx[host.name] = host.nic.rx_bytes
        self._last_time = self.env.now

    def start(self) -> Process:
        """Begin sampling; returns the sampling process."""
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("sampler already running")
        self._reset_baselines()
        self._process = self.env.process(self._run(), name="host-sampler")
        return self._process

    def stop(self) -> None:
        """Stop sampling (takes one final sample first)."""
        if self._process is not None and self._process.is_alive:
            self.sample_now()
            self._process.interrupt("stop")
            self._process = None

    def sample_now(self) -> None:
        """Take one sample immediately (independent of the schedule)."""
        now = self.env.now
        window = now - self._last_time
        if window <= 0:
            return
        for host in self.hosts:
            busy_delta = host.busy_seconds - self._last_busy[host.name]
            tx_delta = host.nic.tx_bytes - self._last_tx[host.name]
            rx_delta = host.nic.rx_bytes - self._last_rx[host.name]
            self.series[host.name].append(
                HostSample(
                    time=now,
                    cpu_percent=100.0 * busy_delta / (window * host.cores),
                    resident_bytes=host.resident_bytes,
                    tx_bytes_per_s=tx_delta / window,
                    rx_bytes_per_s=rx_delta / window,
                )
            )
        self._reset_baselines()

    def _run(self) -> Generator:
        from repro.simnet.engine import Interrupt

        try:
            while True:
                yield self.env.timeout(self.interval)
                self.sample_now()
        except Interrupt:
            return
