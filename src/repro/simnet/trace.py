"""Structured event tracing for simulations.

A lightweight, allocation-conscious tracer: components emit
``tracer.record(category, **fields)`` and tests/analysis code filter the
collected records. Tracing is off by default (a no-op recorder), so the
hot paths pay one attribute check per emission.

Categories used across the reproduction:

* ``"cycle"`` — control-cycle boundaries and phase transitions;
* ``"message"`` — transport sends/deliveries (very verbose);
* ``"rule"`` — enforcement rule application at stages;
* ``"failure"`` — injected controller failures and recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

__all__ = ["NullTracer", "TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category."""

    def __init__(
        self,
        clock: Callable[[], float],
        categories: Optional[Iterable[str]] = None,
        max_records: int = 1_000_000,
    ) -> None:
        self._clock = clock
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.max_records = int(max_records)
        self.records: List[TraceRecord] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return True

    def wants(self, category: str) -> bool:
        """Cheap pre-check so callers can skip building field dicts."""
        return self.categories is None or category in self.categories

    def record(self, category: str, **fields: Any) -> None:
        if not self.wants(category):
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(self._clock(), category, fields))

    def filter(self, category: str) -> List[TraceRecord]:
        """All records of one category, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


class NullTracer:
    """The default no-op tracer; records nothing, costs almost nothing."""

    records: List[TraceRecord] = []
    dropped = 0

    @property
    def enabled(self) -> bool:
        return False

    def wants(self, category: str) -> bool:
        return False

    def record(self, category: str, **fields: Any) -> None:
        pass

    def filter(self, category: str) -> List[TraceRecord]:
        return []

    def clear(self) -> None:
        pass
