"""Shared-resource primitives for the DES kernel.

These mirror the SimPy resource family:

* :class:`Resource` — ``capacity`` slots, FIFO queueing. Used for CPU cores
  on :class:`~repro.simnet.node.SimHost` and NIC serialization.
* :class:`PriorityResource` — like :class:`Resource` but the queue orders by
  (priority, fifo). Used by the PFS admission model so high-QoS jobs can
  jump the line.
* :class:`Container` — a continuous quantity (tokens, bytes) with blocking
  ``get``/``put``. Backs the token-bucket rate limiters.
* :class:`Store` — a FIFO object queue with blocking ``get``. Backs
  per-connection message inboxes in :mod:`repro.simnet.transport`.

All request/get/put objects are events; processes ``yield`` them and may
cancel while queued (``Request.cancel()``), which is exercised by the
failure-injection tests.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, List, Optional, Tuple

from repro.simnet.engine import Environment, Event, SimulationError

__all__ = ["Container", "PriorityResource", "Request", "Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._key: Optional[Tuple[int, int]] = None

    def cancel(self) -> None:
        """Withdraw a queued request. No-op if already granted."""
        if not self.triggered:
            self.resource._withdraw(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots with FIFO hand-off.

    Usage from a process::

        req = cpu.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            cpu.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.users: List[Request] = []
        self._waiting: List[Tuple[Tuple[int, int], Request]] = []
        self._seq = count()

    # -- queue discipline (overridden by PriorityResource) -----------------
    def _key_for(self, request: Request) -> Tuple[int, int]:
        return (0, next(self._seq))

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self, priority=priority)
        req._key = self._key_for(req)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (req._key, req))
        return req

    def release(self, request: Request) -> None:
        """Return a slot. Granting order is FIFO (or priority order)."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that holds no slot")
        self._grant_next()

    def _withdraw(self, request: Request) -> None:
        self._waiting = [(k, r) for (k, r) in self._waiting if r is not request]
        heapq.heapify(self._waiting)

    def _grant_next(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _key, req = heapq.heappop(self._waiting)
            self.users.append(req)
            req.succeed(req)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue orders by (priority, arrival).

    Lower ``priority`` values are served first, matching the convention of
    the QoS policy classes in :mod:`repro.core.policies`.
    """

    def _key_for(self, request: Request) -> Tuple[int, int]:
        return (request.priority, next(self._seq))


class _Get(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class _Put(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking ``get``/``put``.

    ``level`` is clamped to ``[0, capacity]``; ``get`` blocks until enough
    quantity is available, ``put`` blocks until enough headroom exists.
    FIFO across getters and across putters.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List[_Get] = []
        self._putters: List[_Put] = []

    @property
    def level(self) -> float:
        """Current stored quantity."""
        return self._level

    def get(self, amount: float) -> _Get:
        """Remove ``amount``; fires when satisfied."""
        if amount <= 0:
            raise ValueError(f"get amount must be positive, got {amount}")
        ev = _Get(self.env, amount)
        self._getters.append(ev)
        self._settle()
        return ev

    def put(self, amount: float) -> _Put:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount <= 0:
            raise ValueError(f"put amount must be positive, got {amount}")
        ev = _Put(self.env, amount)
        self._putters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._putters[0].amount <= self.capacity - self._level:
                put = self._putters.pop(0)
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._getters and self._getters[0].amount <= self._level:
                get = self._getters.pop(0)
                self._level -= get.amount
                get.succeed(get.amount)
                progressed = True


class _StoreGet(Event):
    __slots__ = ("store",)

    def __init__(self, env: Environment, store: "Store") -> None:
        super().__init__(env)
        self.store = store

    def cancel(self) -> None:
        """Withdraw this get if it has not been satisfied yet."""
        if not self.triggered:
            try:
                self.store._getters.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO object queue with blocking ``get`` and bounded ``put``.

    ``put`` is non-blocking below ``capacity`` and raises when full
    (transport inboxes size themselves generously and treat overflow as a
    modelling error rather than silently dropping messages).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[_StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        if len(self.items) >= self.capacity:
            raise SimulationError(f"Store overflow (capacity={self.capacity})")
        self.items.append(item)
        self._dispatch()

    def get(self) -> _StoreGet:
        """Event firing with the oldest item (cancellable while pending)."""
        ev = _StoreGet(self.env, self)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))

    def drain(self) -> List[Any]:
        """Remove and return all queued items without blocking."""
        items, self.items = self.items, []
        return items
