"""Discrete-event simulation substrate for HPC clusters.

``repro.simnet`` is a from-scratch, SimPy-flavoured discrete-event
simulation (DES) kernel plus the cluster-specific models built on top of
it: hosts with CPU cost accounting, network links with latency and
bandwidth, connection-limited transports, and tree topologies.

The SDS control planes in :mod:`repro.core` run unmodified protocol logic
over this substrate; every request, reply, and enforcement rule is a
simulated message, so latency breakdowns and resource usage are *measured*
from the simulation rather than predicted analytically.

Public API
----------
:class:`~repro.simnet.engine.Environment`
    The simulation kernel (clock + event queue + processes).
:class:`~repro.simnet.node.SimHost`
    A compute node with CPU-core accounting.
:class:`~repro.simnet.link.Link`
    A latency/bandwidth network link.
:class:`~repro.simnet.transport.Network`
    Message routing with per-NIC connection limits.
:func:`~repro.simnet.topology.build_cluster`
    Construct a cluster of hosts wired through a network.
"""

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.simnet.link import DelayModel, FixedDelay, Link, NormalJitterDelay
from repro.simnet.node import SimHost
from repro.simnet.resources import Container, PriorityResource, Resource, Store
from repro.simnet.rng import RandomStreams
from repro.simnet.topology import Cluster, DragonflyTopology, build_cluster
from repro.simnet.transport import (
    Connection,
    ConnectionLimitExceeded,
    ConnectionPool,
    Message,
    Network,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Cluster",
    "Connection",
    "ConnectionLimitExceeded",
    "ConnectionPool",
    "Container",
    "DelayModel",
    "DragonflyTopology",
    "Environment",
    "Event",
    "FixedDelay",
    "Interrupt",
    "Link",
    "Message",
    "Network",
    "NormalJitterDelay",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimHost",
    "SimulationError",
    "Store",
    "Timeout",
    "build_cluster",
]
