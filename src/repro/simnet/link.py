"""Network link models: latency, bandwidth, and jitter.

Frontera's fabric is Mellanox InfiniBand HDR-100 (100 Gb/s per port) in a
fat-tree; small-message one-way latencies between arbitrary compute nodes
are a handful of microseconds. We model a message's transfer time as::

    delay = propagation_latency * hops + size_bytes / bandwidth + jitter

where jitter comes from a pluggable :class:`DelayModel`. This is the level
of fidelity the paper's measurements depend on — per-message wire time is
tiny compared to controller CPU time (Section IV attributes the latency to
per-stage processing), so a calibrated linear model suffices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["DelayModel", "FixedDelay", "Link", "NormalJitterDelay"]

#: InfiniBand HDR-100 nominal data rate in bytes/second.
HDR100_BANDWIDTH = 100e9 / 8
#: Per-hop propagation + switching latency (seconds) typical of HDR IB.
DEFAULT_HOP_LATENCY = 1.0e-6


class DelayModel:
    """Base class for per-message jitter distributions (default: none)."""

    def sample(self) -> float:
        """Extra delay in seconds added to the deterministic transfer time."""
        return 0.0


class FixedDelay(DelayModel):
    """Deterministic extra delay (useful for tests and calibration)."""

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.delay = float(delay)

    def sample(self) -> float:
        return self.delay


class NormalJitterDelay(DelayModel):
    """Truncated-normal jitter, the common empirical fit for IB fabrics."""

    def __init__(
        self,
        rng: np.random.Generator,
        mean: float = 0.0,
        std: float = 0.5e-6,
    ) -> None:
        if std < 0:
            raise ValueError(f"negative std: {std}")
        self._rng = rng
        self.mean = float(mean)
        self.std = float(std)

    def sample(self) -> float:
        return max(0.0, float(self._rng.normal(self.mean, self.std)))


class Link:
    """A point-to-point (or hop-aggregated) network path.

    ``transfer_time(size, hops)`` is pure and cheap — the transport layer
    calls it once per message.
    """

    def __init__(
        self,
        hop_latency: float = DEFAULT_HOP_LATENCY,
        bandwidth: float = HDR100_BANDWIDTH,
        jitter: Optional[DelayModel] = None,
    ) -> None:
        if hop_latency < 0:
            raise ValueError(f"negative hop latency: {hop_latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        self.hop_latency = float(hop_latency)
        self.bandwidth = float(bandwidth)
        self.jitter = jitter or DelayModel()

    def transfer_time(self, size_bytes: int, hops: int = 1) -> float:
        """One-way wire time for a message of ``size_bytes`` over ``hops``."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        if hops < 0:
            raise ValueError(f"negative hop count: {hops}")
        return (
            self.hop_latency * hops
            + size_bytes / self.bandwidth
            + self.jitter.sample()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(hop_latency={self.hop_latency!r}, "
            f"bandwidth={self.bandwidth!r})"
        )
