"""Deterministic random-number streams.

Every stochastic component of the simulation (link jitter, workload
inter-arrival times, job demand variation) draws from its own named
substream derived from a single experiment seed. This gives:

* **Reproducibility** — a run is fully determined by one integer seed.
* **Variance isolation** — changing e.g. the workload does not perturb the
  link-jitter stream, so paired comparisons (flat vs hierarchical under the
  same conditions) use common random numbers.

Implementation: ``numpy.random.Generator`` seeded via ``SeedSequence`` with
a stable hash of the stream name, following numpy's recommended practice
for parallel/independent streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of named, independent ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            tag = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, tag]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory independent of this one (for nested components)."""
        tag = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(seed=(self.seed * 1_000_003 + tag) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
