"""Frozen pre-fast-path simulation kernel (benchmark baseline only).

A verbatim snapshot of :mod:`repro.simnet.engine` as it stood before the
hot-path overhaul (Timeout free-list, zero-delay dispatch buckets, merged
process resume). ``python -m repro bench`` runs the same workload against
this module and the live kernel so every ``BENCH_PR5.json`` carries an
honest pre-PR baseline measured on the same machine in the same run. Do
not import this from production code and do not "fix" it — its value is
that it never changes.

Original module docstring follows.


A small, deterministic, SimPy-flavoured event loop. The design goals are:

* **Determinism** — given the same seed streams, two runs produce identical
  event orderings. Ties on the clock are broken by (priority, insertion
  sequence), never by object identity.
* **Process-style modelling** — simulation actors are plain Python
  generators that ``yield`` events (:class:`Timeout`, :class:`Event`,
  other :class:`Process` objects, or :class:`AllOf`/:class:`AnyOf`
  compositions) and are resumed when those events fire.
* **No dependencies** — the kernel uses only ``heapq`` and ``itertools``,
  keeping the hot loop cheap enough to push hundreds of thousands of
  events per second in CPython.

The public surface mirrors a stripped-down SimPy: ``Environment.process``,
``Environment.timeout``, ``Environment.event``, ``Environment.run``,
``Process.interrupt``. This is the substrate the whole reproduction runs
on, so it is tested exhaustively (see ``tests/simnet/test_engine.py``).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Default priority for scheduled events. Lower fires first at equal time.
NORMAL = 1
#: Priority used for events that must fire before normal ones at the same
#: simulated instant (e.g. process resumption after an interrupt).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt`` so the
    interrupted process can decide how to react (e.g. a controller failure
    event in the dependability experiments).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when given a value (or
    exception) and scheduled on the environment queue, and is *processed*
    once its callbacks have run. Processes waiting on the event are resumed
    with the event's value; if the event *failed*, the exception is thrown
    into them instead.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the queue."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception, if it failed)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them. If nobody is
        waiting when the event is processed, the exception propagates out of
        :meth:`Environment.run` to avoid silently swallowed failures.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def _mark_scheduled(self) -> None:
        if self._scheduled:
            raise SimulationError(f"{self!r} scheduled twice")
        self._scheduled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env._schedule(self, delay=self.delay, priority=NORMAL)


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: tuple = tuple(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError(f"condition members must be events: {ev!r}")
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_member(ev)
            else:
                ev.callbacks.append(self._on_member)

    def _collect(self) -> dict:
        """Values of all processed member events, in declaration order."""
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.processed and ev.ok
        }

    def _on_member(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Fires once *all* member events have fired.

    The value is a dict mapping member index to member value. If any member
    fails, the condition fails immediately with that exception.
    """

    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_ConditionBase):
    """Fires as soon as *any* member event fires (or fails)."""

    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())


class Process(Event):
    """A generator-driven simulation actor.

    The process *is itself an event* that fires when the generator returns
    (value = the generator's return value) or raises (the process event
    fails). This lets processes wait on each other with ``yield other``.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator: {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current simulated instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the waited-on event (the event may
        still fire later — the process simply no longer cares).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        trigger = Event(self.env)
        trigger.callbacks.append(self._resume_interrupt)
        trigger._value = Interrupt(cause)
        trigger._ok = False
        self.env._schedule(trigger, delay=0.0, priority=URGENT)

    # -- internal resumption ----------------------------------------------
    def _detach(self) -> None:
        target = self._waiting_on
        if target is not None and not target.processed:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # already removed / never attached
                pass
            # Withdraw cancellable claims (queue gets, resource requests)
            # so an interrupted process does not black-hole the item or
            # slot it was waiting for.
            cancel = getattr(target, "cancel", None)
            if cancel is not None and not target.triggered:
                cancel()
        self._waiting_on = None

    def _resume_interrupt(self, trigger: Event) -> None:
        if self.triggered:  # finished in the meantime; interrupt is moot
            return
        self._detach()
        self._step(trigger)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc, priority=URGENT)
            return
        env._active_process = None

        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded a non-event: {target!r}. "
                "Yield Timeout/Event/Process/AllOf/AnyOf instances."
            )
            try:
                self._generator.throw(SimulationError(message))
            except StopIteration as stop:
                self.succeed(stop.value, priority=URGENT)
            except BaseException as exc:
                self.fail(exc, priority=URGENT)
            return
        if target.env is not env:
            raise SimulationError("yielded event belongs to another environment")

        if target.processed:
            # Already fired: resume immediately (same instant, urgent).
            trigger = Event(env)
            trigger.callbacks.append(self._resume)
            trigger._ok = target._ok
            trigger._value = target._value
            env._schedule(trigger, delay=0.0, priority=URGENT)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """The simulation kernel: clock, event queue, and process scheduler.

    Typical usage::

        env = Environment()

        def ping(env):
            yield env.timeout(1.0)
            return "pong"

        proc = env.process(ping(env))
        env.run()
        assert env.now == 1.0 and proc.value == "pong"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: Number of events processed so far (for tests and stats).
        self.processed_events = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every member has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first member fires."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        event._mark_scheduled()
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def call_at(
        self, when: float, callback: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``.

        Returns the underlying event (useful for tests). ``when`` must not be
        in the past.
        """
        if when < self._now:
            raise SimulationError(f"call_at into the past: {when} < {self._now}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: callback())
        ev._ok = True
        ev._value = None
        self._schedule(ev, delay=when - self._now, priority=priority)
        return ev

    # -- main loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event. Raises if the queue is empty."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        self.processed_events += 1
        if not event._ok and not callbacks:
            # A failed event nobody waits for: surface the error loudly.
            raise event._value
        for callback in callbacks:
            callback(event)

    def run(
        self,
        until: Optional[float | Event] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception if it failed).

        ``max_events`` is a runaway guard: processing more than this many
        events in this call raises :class:`SimulationError` instead of
        spinning forever (zero-delay loops and immortal processes are the
        classic DES footguns — see the token-bucket clamp in
        ``repro.dataplane.stage`` for one we hit).
        """
        budget_floor = self.processed_events

        def check_budget() -> None:
            if (
                max_events is not None
                and self.processed_events - budget_floor > max_events
            ):
                raise SimulationError(
                    f"run() exceeded max_events={max_events} at t={self._now}; "
                    "likely a zero-delay loop or an immortal process"
                )

        if max_events is not None and max_events < 1:
            raise SimulationError(f"max_events must be >= 1: {max_events}")
        if until is None:
            while self._queue:
                self.step()
                check_budget()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    )
                self.step()
                check_budget()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"run(until={horizon}) is in the past")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
            check_budget()
        self._now = horizon
        return None
