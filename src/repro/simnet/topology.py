"""Cluster topologies: hosts, racks, and hop-count resolution.

Frontera's compute fabric is a two-level HDR InfiniBand fat tree: nodes
connect to leaf switches (one per rack section), leaves connect to spine
switches. For latency purposes the interesting quantity is the *hop count*
between two hosts:

* same host → 0 hops (loopback, used when co-locating virtual stages);
* same rack → 2 hops (node → leaf → node);
* different racks → 4 hops (node → leaf → spine → leaf → node).

A three-level tree (for >100k-node systems such as Fugaku) adds a core
layer, giving 6 hops across top-level pods.

:class:`Cluster` packages hosts + a :class:`~repro.simnet.transport.Network`
wired with the topology's hop resolver, and is the object all higher layers
build against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simnet.engine import Environment
from repro.simnet.link import Link
from repro.simnet.node import SimHost
from repro.simnet.transport import Network

__all__ = ["Cluster", "DragonflyTopology", "FatTreeTopology", "build_cluster"]

#: Nodes per rack on Frontera (dense CS500 racks).
DEFAULT_RACK_SIZE = 56


class FatTreeTopology:
    """Hop-count model for an ``levels``-level fat tree.

    ``levels=2`` is the Frontera case (leaf + spine). ``levels=3`` adds a
    core layer with ``pods_per_core`` leaf groups per pod.
    """

    def __init__(
        self,
        rack_size: int = DEFAULT_RACK_SIZE,
        levels: int = 2,
        racks_per_pod: int = 16,
    ) -> None:
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1: {rack_size}")
        if levels not in (2, 3):
            raise ValueError(f"levels must be 2 or 3: {levels}")
        if racks_per_pod < 1:
            raise ValueError(f"racks_per_pod must be >= 1: {racks_per_pod}")
        self.rack_size = int(rack_size)
        self.levels = int(levels)
        self.racks_per_pod = int(racks_per_pod)
        self._rack_of: Dict[str, int] = {}

    def place(self, host: SimHost, index: int) -> None:
        """Record the rack of ``host`` given its cluster index."""
        self._rack_of[host.name] = index // self.rack_size

    def rack(self, host: SimHost) -> int:
        return self._rack_of[host.name]

    def hops(self, a: SimHost, b: SimHost) -> int:
        """Hop count between two placed hosts."""
        if a is b:
            return 0
        rack_a = self._rack_of.get(a.name)
        rack_b = self._rack_of.get(b.name)
        if rack_a is None or rack_b is None:
            # Unplaced host (e.g. an external service): assume worst case.
            return 4 if self.levels == 2 else 6
        if rack_a == rack_b:
            return 2
        if self.levels == 2:
            return 4
        pod_a = rack_a // self.racks_per_pod
        pod_b = rack_b // self.racks_per_pod
        return 4 if pod_a == pod_b else 6


class Cluster:
    """A set of hosts wired through a network with a shared topology."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        topology: FatTreeTopology,
    ) -> None:
        self.env = env
        self.network = network
        self.topology = topology
        self.hosts: List[SimHost] = []
        self._by_name: Dict[str, SimHost] = {}

    def add_host(
        self,
        name: Optional[str] = None,
        cores: int = 56,
        memory_bytes: int = 192 * 2**30,
    ) -> SimHost:
        """Create, place, and register a new host."""
        index = len(self.hosts)
        host = SimHost(
            self.env,
            name or f"node-{index:05d}",
            cores=cores,
            memory_bytes=memory_bytes,
        )
        if host.name in self._by_name:
            raise ValueError(f"duplicate host name: {host.name!r}")
        self.topology.place(host, index)
        self.hosts.append(host)
        self._by_name[host.name] = host
        return host

    def host(self, index_or_name) -> SimHost:
        """Look a host up by integer index or by name."""
        if isinstance(index_or_name, int):
            return self.hosts[index_or_name]
        return self._by_name[index_or_name]

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)


def build_cluster(
    env: Environment,
    n_hosts: int,
    link: Optional[Link] = None,
    max_connections_per_host: int = 2500,
    rack_size: int = DEFAULT_RACK_SIZE,
    levels: int = 2,
    cores: int = 56,
) -> Cluster:
    """Construct a cluster of ``n_hosts`` identical hosts.

    The returned cluster's network resolves hop counts through a fat-tree
    topology; additional special-purpose hosts (controllers) can be added
    afterwards with :meth:`Cluster.add_host`.
    """
    if n_hosts < 0:
        raise ValueError(f"n_hosts must be >= 0: {n_hosts}")
    topology = FatTreeTopology(rack_size=rack_size, levels=levels)
    network = Network(
        env,
        link=link,
        max_connections_per_host=max_connections_per_host,
        hop_resolver=topology.hops,
    )
    cluster = Cluster(env, network, topology)
    for _ in range(n_hosts):
        cluster.add_host(cores=cores)
    return cluster


class DragonflyTopology:
    """Hop-count model for a dragonfly fabric (Slingshot-class systems).

    Frontier and Aurora run HPE Slingshot dragonflies: routers form
    all-to-all *groups*, groups connect all-to-all through global links.
    Minimal routing gives:

    * same host → 0 hops;
    * same router → 2 hops (host → router → host);
    * same group → 3 hops (one local link);
    * different groups → 5 hops (local + global + local).

    Interchangeable with :class:`FatTreeTopology` wherever a
    ``hops(a, b)`` resolver is expected::

        topo = DragonflyTopology(hosts_per_router=16, routers_per_group=32)
        net = Network(env, hop_resolver=topo.hops)
    """

    def __init__(
        self,
        hosts_per_router: int = 16,
        routers_per_group: int = 32,
    ) -> None:
        if hosts_per_router < 1:
            raise ValueError(f"hosts_per_router must be >= 1: {hosts_per_router}")
        if routers_per_group < 1:
            raise ValueError(f"routers_per_group must be >= 1: {routers_per_group}")
        self.hosts_per_router = int(hosts_per_router)
        self.routers_per_group = int(routers_per_group)
        self._router_of: Dict[str, int] = {}

    @property
    def hosts_per_group(self) -> int:
        return self.hosts_per_router * self.routers_per_group

    def place(self, host: SimHost, index: int) -> None:
        """Record the router of ``host`` given its cluster index."""
        self._router_of[host.name] = index // self.hosts_per_router

    def router(self, host: SimHost) -> int:
        return self._router_of[host.name]

    def group(self, host: SimHost) -> int:
        return self._router_of[host.name] // self.routers_per_group

    def hops(self, a: SimHost, b: SimHost) -> int:
        """Minimal-route hop count between two placed hosts."""
        if a is b:
            return 0
        router_a = self._router_of.get(a.name)
        router_b = self._router_of.get(b.name)
        if router_a is None or router_b is None:
            return 5  # unplaced: assume cross-group worst case
        if router_a == router_b:
            return 2
        if router_a // self.routers_per_group == router_b // self.routers_per_group:
            return 3
        return 5
