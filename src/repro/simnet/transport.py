"""Connection-oriented message transport over the simulated fabric.

The paper's key architectural constraint lives here: a Frontera node's
networking stack sustained at most **2,500 concurrent connections**, which
is what forces the hierarchical design beyond 2,500 stages. The
:class:`ConnectionPool` enforces exactly that limit and raises
:class:`ConnectionLimitExceeded` when a flat controller attempts to
oversubscribe — the benches assert this behaviour.

Model
-----
* A :class:`~repro.simnet.node.SimHost` exposes named :class:`Endpoint`\\ s
  (e.g. ``"controller"``, ``"stage-42"``).
* :meth:`Network.connect` opens a persistent, bidirectional
  :class:`Connection` between two endpoints, consuming one slot in each
  host's :class:`ConnectionPool` (like a TCP/RDMA QP pair).
* :meth:`Connection.send` delivers a :class:`Message` after the link's
  transfer time; delivery invokes the destination endpoint's handler (for
  reactive actors such as virtual stages) or enqueues into its inbox (for
  process-style actors such as controllers).

Every byte is counted on both NICs, which is where the MB/s columns of
Tables II–IV come from.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.simnet.engine import NORMAL, Environment, Event, SimulationError
from repro.simnet.link import Link
from repro.simnet.node import SimHost
from repro.simnet.resources import Store

__all__ = [
    "Connection",
    "ConnectionLimitExceeded",
    "ConnectionPool",
    "Endpoint",
    "Message",
    "Network",
]

#: Frontera-observed per-node concurrent connection ceiling (paper §IV-A).
FRONTERA_CONNECTION_LIMIT = 2500


class ConnectionLimitExceeded(RuntimeError):
    """A host ran out of connection slots (paper: 2,500 per node)."""


class Message:
    """A unit of communication between two endpoints.

    A plain ``__slots__`` class rather than a dataclass: one instance is
    built per simulated message, which makes construction cost part of
    the kernel's events/sec budget. Treat instances as immutable.
    """

    __slots__ = (
        "kind",
        "payload",
        "size_bytes",
        "sender",
        "recipient",
        "sent_at",
        "seq",
    )

    def __init__(
        self,
        kind: str,
        payload: Any,
        size_bytes: int,
        sender: str,
        recipient: str,
        sent_at: float,
        seq: int,
    ) -> None:
        size_bytes = int(size_bytes)
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes
        self.sender = sender
        self.recipient = recipient
        self.sent_at = sent_at
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(kind={self.kind!r}, size_bytes={self.size_bytes}, "
            f"sender={self.sender!r}, recipient={self.recipient!r}, "
            f"sent_at={self.sent_at!r}, seq={self.seq})"
        )


class ConnectionPool:
    """Tracks open connections for one host and enforces the NIC limit."""

    def __init__(self, host: SimHost, max_connections: int) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1: {max_connections}")
        self.host = host
        self.max_connections = int(max_connections)
        self.open_connections = 0

    @property
    def available(self) -> int:
        return self.max_connections - self.open_connections

    def acquire(self) -> None:
        if self.open_connections >= self.max_connections:
            raise ConnectionLimitExceeded(
                f"host {self.host.name!r} at its connection limit "
                f"({self.max_connections}); a flat controller cannot manage "
                "more stages than this — use a hierarchical design"
            )
        self.open_connections += 1

    def release(self) -> None:
        if self.open_connections <= 0:
            raise SimulationError("connection pool release underflow")
        self.open_connections -= 1


class Endpoint:
    """A named attachment point for a service on a host.

    Reactive actors register a ``handler(message, connection)`` callback;
    process-style actors ``yield endpoint.recv()`` (or per-connection
    ``connection.recv(endpoint)``).
    """

    def __init__(self, env: Environment, host: SimHost, name: str) -> None:
        self.env = env
        self.host = host
        self.name = name
        self.inbox: Store = Store(env)
        self.handler: Optional[Callable[[Message, "Connection"], None]] = None
        self.connections: Dict[str, "Connection"] = {}

    def set_handler(self, handler: Callable[[Message, "Connection"], None]) -> None:
        """Deliver future messages by callback instead of the inbox."""
        self.handler = handler

    def recv(self) -> Event:
        """Event firing with the next message delivered to this endpoint."""
        return self.inbox.get()

    def _deliver(self, message: Message, connection: "Connection") -> None:
        nic = self.host.nic
        nic.rx_bytes += message.size_bytes
        nic.rx_messages += 1
        if self.handler is not None:
            self.handler(message, connection)
        else:
            self.inbox.put(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint {self.name} on {self.host.name}>"


class Connection:
    """A persistent bidirectional channel between two endpoints."""

    __slots__ = ("network", "a", "b", "closed", "_seq", "_earliest_delivery", "_hops")

    def __init__(self, network: "Network", a: Endpoint, b: Endpoint) -> None:
        self.network = network
        self.a = a
        self.b = b
        self.closed = False
        self._seq = 0
        # Per-direction FIFO guard: jitter may not reorder a flow.
        self._earliest_delivery = {a.name: 0.0, b.name: 0.0}
        # Topologies are static for a connection's lifetime, so the hop
        # count is resolved once here instead of per message.
        self._hops = network.hop_resolver(a.host, b.host)

    def peer_of(self, endpoint: Endpoint) -> Endpoint:
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise SimulationError(f"{endpoint!r} is not part of {self!r}")

    def send(
        self,
        sender: Endpoint,
        kind: str,
        payload: Any = None,
        size_bytes: int = 0,
        extra_delay: float = 0.0,
    ) -> Message:
        """Transmit a message from ``sender`` to the other endpoint.

        Returns the message object immediately; delivery happens after
        ``extra_delay`` (sender-side service time, e.g. a stage preparing
        its reply) plus the link transfer time. Messages on one connection
        are delivered in FIFO order (the fabric does not reorder within a
        flow).
        """
        if extra_delay < 0:
            raise ValueError(f"negative extra_delay: {extra_delay}")
        if self.closed:
            raise SimulationError("send() on a closed connection")
        if sender is self.a:
            recipient = self.b
        elif sender is self.b:
            recipient = self.a
        else:
            raise SimulationError(f"{sender!r} is not part of {self!r}")
        self._seq = seq = self._seq + 1
        network = self.network
        message = Message(
            kind,
            payload,
            size_bytes,
            sender.name,
            recipient.name,
            network.env._now,
            seq,
        )
        network._transmit(sender, recipient, message, self, extra_delay)
        return message

    def close(self) -> None:
        """Release the connection slots on both hosts."""
        if self.closed:
            return
        self.closed = True
        self.network._release(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Connection {self.a.name} <-> {self.b.name}>"


class Network:
    """The fabric: endpoints, connections, links, and delivery.

    ``hop_resolver(host_a, host_b)`` returns the hop count between two
    hosts; topologies provide it. The default treats all distinct host
    pairs as 3 hops (leaf-spine-leaf), which matches a two-level fat tree.
    """

    def __init__(
        self,
        env: Environment,
        link: Optional[Link] = None,
        max_connections_per_host: int = FRONTERA_CONNECTION_LIMIT,
        hop_resolver: Optional[Callable[[SimHost, SimHost], int]] = None,
        nic_bandwidth_Bps: Optional[float] = None,
    ) -> None:
        if nic_bandwidth_Bps is not None and nic_bandwidth_Bps <= 0:
            raise ValueError(
                f"nic_bandwidth_Bps must be positive: {nic_bandwidth_Bps}"
            )
        self.env = env
        self.link = link or Link()
        self.max_connections_per_host = int(max_connections_per_host)
        self.hop_resolver = hop_resolver or (
            lambda a, b: 0 if a is b else 3
        )
        #: Optional per-host NIC serialization: when set, all of a host's
        #: transmissions (and receptions) share one ``nic_bandwidth_Bps``
        #: pipe, so a controller blasting thousands of rules — or an
        #: incast of thousands of replies — queues at the NIC. ``None``
        #: (default) folds NIC time into the link model, which the
        #: Frontera calibration shows is accurate for control-plane-sized
        #: messages (see the NIC ablation bench).
        self.nic_bandwidth_Bps = nic_bandwidth_Bps
        self._nic_tx_free: Dict[str, float] = {}
        self._nic_rx_free: Dict[str, float] = {}
        self._pools: Dict[str, ConnectionPool] = {}
        self._endpoints: Dict[str, Endpoint] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- wiring -------------------------------------------------------------
    def pool_of(self, host: SimHost) -> ConnectionPool:
        pool = self._pools.get(host.name)
        if pool is None:
            pool = ConnectionPool(host, self.max_connections_per_host)
            self._pools[host.name] = pool
        return pool

    def reserve_system_slots(self, host: SimHost, n: int) -> None:
        """Raise ``host``'s connection budget by ``n`` slots.

        The Frontera 2,500-connection ceiling is observed on the
        stage-facing RPC server; control-channel links between controllers
        (an aggregator's uplink to the global controller) ride separately.
        Deployments call this for controller hosts so an aggregator can own
        a full 2,500-stage partition *plus* its uplink — matching the
        paper, which runs exactly 2,500 stages per aggregator.
        """
        if n < 0:
            raise ValueError(f"negative slot reservation: {n}")
        pool = self.pool_of(host)
        pool.max_connections += n

    def attach(self, host: SimHost, service: str) -> Endpoint:
        """Create a uniquely named endpoint for ``service`` on ``host``."""
        name = f"{host.name}/{service}"
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already attached")
        endpoint = Endpoint(self.env, host, name)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def connect(self, a: Endpoint, b: Endpoint) -> Connection:
        """Open a connection, consuming one slot on each host.

        Raises :class:`ConnectionLimitExceeded` if either side is full; on
        failure no slot is leaked.
        """
        if a is b:
            raise SimulationError("cannot connect an endpoint to itself")
        pool_a = self.pool_of(a.host)
        pool_b = self.pool_of(b.host)
        pool_a.acquire()
        if pool_b is not pool_a:
            try:
                pool_b.acquire()
            except ConnectionLimitExceeded:
                pool_a.release()
                raise
        connection = Connection(self, a, b)
        a.connections[b.name] = connection
        b.connections[a.name] = connection
        return connection

    def _release(self, connection: Connection) -> None:
        self.pool_of(connection.a.host).release()
        if connection.b.host is not connection.a.host:
            self.pool_of(connection.b.host).release()
        connection.a.connections.pop(connection.b.name, None)
        connection.b.connections.pop(connection.a.name, None)

    # -- delivery -------------------------------------------------------------
    def _transmit(
        self,
        sender: Endpoint,
        recipient: Endpoint,
        message: Message,
        connection: Connection,
        extra_delay: float = 0.0,
    ) -> None:
        # Per-message hot path: NIC counters, the link formula, and the
        # delivery event are inlined — this function dominates flat-sweep
        # profiles. The time arithmetic (``now + (when - now)``) matches
        # ``call_at`` exactly so event timestamps stay bit-identical.
        size = message.size_bytes
        nic = sender.host.nic
        nic.tx_bytes += size
        nic.tx_messages += 1
        self.messages_sent += 1
        self.bytes_sent += size
        link = self.link
        delay = (
            link.hop_latency * connection._hops
            + size / link.bandwidth
            + link.jitter.sample()
        )
        env = self.env
        now = env._now
        departure = now + extra_delay
        if self.nic_bandwidth_Bps is not None:
            wire_time = size / self.nic_bandwidth_Bps
            # Sender-side serialization: one shared transmit pipe per host.
            tx_free = self._nic_tx_free.get(sender.host.name, 0.0)
            departure = max(departure, tx_free) + wire_time
            self._nic_tx_free[sender.host.name] = departure
            when = departure + delay
            # Receiver-side incast: replies queue at the destination NIC.
            rx_free = self._nic_rx_free.get(recipient.host.name, 0.0)
            when = max(when, rx_free + wire_time)
            self._nic_rx_free[recipient.host.name] = when
        else:
            when = departure + delay
        # Enforce per-direction FIFO: a later message on the same flow never
        # overtakes an earlier one even under jitter.
        floor = connection._earliest_delivery[recipient.name]
        if when < floor:
            when = floor
        connection._earliest_delivery[recipient.name] = when
        ev = Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: recipient._deliver(message, connection))
        env._schedule(ev, when - now, NORMAL)
