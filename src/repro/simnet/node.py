"""Simulated compute nodes with CPU and memory accounting.

A :class:`SimHost` models a Frontera-class compute node: a fixed number of
CPU cores, a NIC with byte counters, and a resident-memory gauge. The
control-plane processes charge CPU work to their host via
:meth:`SimHost.execute`; the REMORA-like monitor later turns the
accumulated busy time into the CPU-% figures of Tables II–IV.

Two execution styles are supported:

* ``yield host.execute(seconds)`` — serialize the work on a core (the
  normal path for controller loops; it is what creates the latency that
  the paper measures).
* ``host.charge(seconds)`` — account busy time without simulating the
  delay (used for background bookkeeping that the paper's measurements
  fold into message costs).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simnet.engine import Environment, Event
from repro.simnet.resources import Resource

__all__ = ["NICCounters", "SimHost"]


class NICCounters:
    """Byte/message counters for one host's network interface."""

    __slots__ = ("tx_bytes", "rx_bytes", "tx_messages", "rx_messages")

    def __init__(self) -> None:
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_messages = 0
        self.rx_messages = 0

    def record_tx(self, size: int) -> None:
        self.tx_bytes += size
        self.tx_messages += 1

    def record_rx(self, size: int) -> None:
        self.rx_bytes += size
        self.rx_messages += 1

    def snapshot(self) -> dict:
        return {
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "tx_messages": self.tx_messages,
            "rx_messages": self.rx_messages,
        }


class SimHost:
    """A compute node: named, with cores, a NIC, and a memory gauge.

    Frontera nodes have two 28-core Xeons; ``cores`` defaults to 56.
    ``busy_seconds`` accumulates core-seconds of work charged to this host,
    which the monitor converts to utilisation percentages.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 56,
        memory_bytes: int = 192 * 2**30,
    ) -> None:
        self.env = env
        self.name = name
        self.cores = int(cores)
        self.memory_capacity = int(memory_bytes)
        self.cpu = Resource(env, capacity=self.cores)
        self.nic = NICCounters()
        self.busy_seconds = 0.0
        self.resident_bytes = 0
        self._peak_resident = 0

    # -- CPU ---------------------------------------------------------------
    def execute(self, seconds: float, cores: int = 1) -> Event:
        """Run ``seconds`` of work on ``cores`` core(s), serialized.

        Returns a process event that fires when the work completes. Busy
        time is charged on completion.
        """
        if seconds < 0:
            raise ValueError(f"negative work: {seconds}")
        return self.env.process(self._execute(seconds, cores), name=f"{self.name}.exec")

    def _execute(self, seconds: float, cores: int) -> Generator:
        requests = [self.cpu.request() for _ in range(cores)]
        for req in requests:
            yield req
        try:
            yield self.env.timeout(seconds)
            self.busy_seconds += seconds * cores
        finally:
            for req in requests:
                self.cpu.release(req)

    def charge(self, seconds: float, cores: int = 1) -> None:
        """Account CPU busy time without simulating a delay."""
        if seconds < 0:
            raise ValueError(f"negative work: {seconds}")
        self.busy_seconds += seconds * cores

    # -- memory --------------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        """Grow resident memory (e.g. controller per-stage state)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self.resident_bytes += int(nbytes)
        if self.resident_bytes > self.memory_capacity:
            raise MemoryError(
                f"{self.name}: resident {self.resident_bytes} exceeds "
                f"capacity {self.memory_capacity}"
            )
        self._peak_resident = max(self._peak_resident, self.resident_bytes)

    def free(self, nbytes: int) -> None:
        """Shrink resident memory."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        self.resident_bytes = max(0, self.resident_bytes - int(nbytes))

    @property
    def peak_resident_bytes(self) -> int:
        """High-water mark of resident memory."""
        return self._peak_resident

    def utilisation(self, elapsed: float, since_busy: float = 0.0) -> float:
        """Average CPU utilisation (%) over ``elapsed`` seconds.

        ``since_busy`` is the busy_seconds reading at window start; the
        result is normalised by the node's core count, matching how REMORA
        reports whole-node CPU %.
        """
        if elapsed <= 0:
            return 0.0
        window_busy = self.busy_seconds - since_busy
        return 100.0 * window_busy / (elapsed * self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimHost {self.name} cores={self.cores}>"
