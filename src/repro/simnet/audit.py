"""Simulation audits: cross-cutting conservation and consistency checks.

A calibrated simulator earns trust by being *checkable*. :func:`audit`
inspects a finished (or paused) simulation and verifies the invariants
that must hold regardless of workload or cost constants:

* **byte conservation** — total NIC TX across hosts equals total NIC RX
  once the event queue has drained (no message lost inside the fabric);
* **message conservation** — same for message counts;
* **connection accounting** — every pool's open-connection count is
  non-negative and within its limit;
* **CPU sanity** — no host's busy time exceeds ``elapsed x cores``;
* **memory sanity** — resident never exceeds capacity, peak >= current.

Deployments call ``audit(plane.cluster.network, plane.cluster.hosts)``
after a run (the integration tests do this for every design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.simnet.engine import Environment
from repro.simnet.node import SimHost
from repro.simnet.transport import Network

__all__ = ["AuditReport", "audit"]


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    violations: List[str] = field(default_factory=list)
    checked_hosts: int = 0
    total_tx_bytes: int = 0
    total_rx_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_on_violation(self) -> None:
        if self.violations:
            raise AssertionError(
                "simulation audit failed:\n  " + "\n  ".join(self.violations)
            )


def audit(
    network: Network,
    hosts: Iterable[SimHost],
    env: Optional[Environment] = None,
) -> AuditReport:
    """Check conservation/consistency invariants across a simulation.

    Run after the event queue drains (in-flight messages count as TX but
    not yet RX; the byte-conservation check tolerates them only if the
    queue is non-empty).
    """
    report = AuditReport()
    hosts = list(hosts)
    env = env or network.env

    tx_bytes = rx_bytes = tx_msgs = rx_msgs = 0
    for host in hosts:
        report.checked_hosts += 1
        tx_bytes += host.nic.tx_bytes
        rx_bytes += host.nic.rx_bytes
        tx_msgs += host.nic.tx_messages
        rx_msgs += host.nic.rx_messages

        if host.busy_seconds < 0:
            report.violations.append(f"{host.name}: negative busy time")
        if env.now > 0 and host.busy_seconds > env.now * host.cores * (1 + 1e-9):
            report.violations.append(
                f"{host.name}: busy {host.busy_seconds:.6f}s exceeds "
                f"{env.now:.6f}s x {host.cores} cores"
            )
        if host.resident_bytes > host.memory_capacity:
            report.violations.append(f"{host.name}: resident above capacity")
        if host.peak_resident_bytes < host.resident_bytes:
            report.violations.append(f"{host.name}: peak below current resident")
        if host.resident_bytes < 0:
            report.violations.append(f"{host.name}: negative resident memory")

        pool = network.pool_of(host)
        if pool.open_connections < 0:
            report.violations.append(f"{host.name}: negative open connections")
        if pool.open_connections > pool.max_connections:
            report.violations.append(
                f"{host.name}: {pool.open_connections} connections over the "
                f"{pool.max_connections} limit"
            )

    report.total_tx_bytes = tx_bytes
    report.total_rx_bytes = rx_bytes

    drained = env.peek() == float("inf")
    if drained:
        if tx_bytes != rx_bytes:
            report.violations.append(
                f"byte conservation: TX {tx_bytes} != RX {rx_bytes} "
                "with a drained event queue"
            )
        if tx_msgs != rx_msgs:
            report.violations.append(
                f"message conservation: TX {tx_msgs} != RX {rx_msgs}"
            )
    else:
        if rx_bytes > tx_bytes:
            report.violations.append(
                f"byte conservation: RX {rx_bytes} exceeds TX {tx_bytes}"
            )
    if network.bytes_sent != tx_bytes:
        report.violations.append(
            f"network counter mismatch: fabric saw {network.bytes_sent} "
            f"bytes, hosts sent {tx_bytes}"
        )
    return report
