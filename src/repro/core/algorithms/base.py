"""Common interface for control algorithms.

A control algorithm maps the cycle's observed state — per-job demand,
per-job weight, the PFS capacity budget, optional floors — to per-job IOPS
allocations. Most implementations are pure, vectorized NumPy functions of
their inputs — no hidden state, so a cycle can be replayed offline.
Feedback controllers (``PIDController``) are the documented exception:
they carry integrator/derivative state between cycles, reset it whenever
the job population changes size, and expose ``reset()`` so a replay can
start from a clean slate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["AllocationResult", "ControlAlgorithm", "validate_inputs"]


@dataclass(frozen=True)
class AllocationResult:
    """The outcome of one allocation computation."""

    allocations: np.ndarray
    #: True for jobs whose grant was capped below their weighted share by
    #: their own demand (they received everything they asked for).
    demand_limited: np.ndarray
    #: Capacity that remained unassigned (0 when redistribution is on and
    #: at least one job is active).
    unallocated: float

    def __post_init__(self) -> None:
        if self.allocations.shape != self.demand_limited.shape:
            raise ValueError("allocation vectors must share a shape")

    @property
    def total_allocated(self) -> float:
        return float(self.allocations.sum())


def validate_inputs(
    demands: np.ndarray,
    weights: np.ndarray,
    capacity: float,
    guarantees: Optional[np.ndarray] = None,
) -> None:
    """Shared input validation for all algorithms."""
    demands = np.asarray(demands)
    weights = np.asarray(weights)
    if demands.ndim != 1 or weights.ndim != 1:
        raise ValueError("demands and weights must be 1-D")
    if demands.shape != weights.shape:
        raise ValueError(
            f"shape mismatch: demands {demands.shape} vs weights {weights.shape}"
        )
    if capacity <= 0:
        raise ValueError(f"capacity must be positive: {capacity}")
    if np.any(demands < 0):
        raise ValueError("negative demand")
    if np.any(weights <= 0):
        raise ValueError("non-positive weight")
    if guarantees is not None:
        guarantees = np.asarray(guarantees)
        if guarantees.shape != demands.shape:
            raise ValueError("guarantees shape mismatch")
        if np.any(guarantees < 0):
            raise ValueError("negative guarantee")
        if guarantees.sum() > capacity + 1e-9:
            raise ValueError("guarantees exceed capacity")


class ControlAlgorithm(ABC):
    """Base class for per-cycle allocation algorithms."""

    #: Human-readable identifier used in experiment reports.
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        """Compute per-job allocations for one control cycle.

        Parameters
        ----------
        demands:
            Observed per-job IOPS submission rates (collect phase output).
        weights:
            Per-job sharing weights from the QoS policy.
        capacity:
            The PFS operation budget for this cycle.
        guarantees:
            Optional per-job minimum floors (honoured only for active
            jobs; an idle job's floor is not falsely allocated).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
