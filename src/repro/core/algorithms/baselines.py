"""Baseline allocation algorithms PSFA is compared against.

These represent the design points the paper's related-work section
criticises:

* :class:`StaticPartition` — capacity split by weight across *all
  registered* jobs, active or not. This is the "false allocation" failure
  mode: idle jobs strand budget.
* :class:`UniformShare` — equal split across active jobs, ignoring QoS
  weights (no differentiation).
* :class:`NaiveProportional` — weighted split across active jobs but blind
  to demand, so small jobs strand their surplus (over-provisioning) while
  big jobs starve (under-provisioning).
* :class:`MaxMinFair` — unweighted demand-capped water-fill; fair and
  work-conserving but cannot express QoS priorities.

All are pure vectorized functions, like PSFA, and are exercised by the
ablation benches and the QoS examples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithms.base import (
    AllocationResult,
    ControlAlgorithm,
    validate_inputs,
)
from repro.core.algorithms.psfa import weighted_waterfill

__all__ = ["MaxMinFair", "NaiveProportional", "StaticPartition", "UniformShare"]

_EPS = 1e-12


class StaticPartition(ControlAlgorithm):
    """Weight-proportional split over all registered jobs, demand-blind."""

    name = "static-partition"

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        alloc = capacity * weights / float(weights.sum())
        demand_limited = alloc >= demands - _EPS
        return AllocationResult(alloc, demand_limited, 0.0)


class UniformShare(ControlAlgorithm):
    """Equal split across active jobs; weights ignored."""

    name = "uniform-share"

    def __init__(self, activity_threshold_iops: float = 0.0) -> None:
        if activity_threshold_iops < 0:
            raise ValueError(f"negative threshold: {activity_threshold_iops}")
        self.activity_threshold_iops = float(activity_threshold_iops)

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        n = demands.size
        alloc = np.zeros(n)
        active = demands > self.activity_threshold_iops
        n_active = int(active.sum())
        if n_active:
            alloc[active] = capacity / n_active
        demand_limited = alloc >= demands - _EPS
        unallocated = float(capacity) if n_active == 0 else 0.0
        return AllocationResult(alloc, demand_limited, unallocated)


class NaiveProportional(ControlAlgorithm):
    """Weighted split across active jobs, blind to demand magnitudes."""

    name = "naive-proportional"

    def __init__(self, activity_threshold_iops: float = 0.0) -> None:
        if activity_threshold_iops < 0:
            raise ValueError(f"negative threshold: {activity_threshold_iops}")
        self.activity_threshold_iops = float(activity_threshold_iops)

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        n = demands.size
        alloc = np.zeros(n)
        active = demands > self.activity_threshold_iops
        if np.any(active):
            w_act = weights[active]
            alloc[active] = capacity * w_act / float(w_act.sum())
        demand_limited = alloc >= demands - _EPS
        unallocated = 0.0 if np.any(active) else float(capacity)
        return AllocationResult(alloc, demand_limited, unallocated)


class MaxMinFair(ControlAlgorithm):
    """Unweighted, demand-capped max-min fairness (no redistribution)."""

    name = "max-min-fair"

    def __init__(self, activity_threshold_iops: float = 0.0) -> None:
        if activity_threshold_iops < 0:
            raise ValueError(f"negative threshold: {activity_threshold_iops}")
        self.activity_threshold_iops = float(activity_threshold_iops)

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        n = demands.size
        alloc = np.zeros(n)
        active = demands > self.activity_threshold_iops
        if np.any(active):
            d_act = demands[active]
            alloc[active] = weighted_waterfill(
                d_act, np.ones(d_act.size), capacity
            )
        demand_limited = alloc >= demands - _EPS
        return AllocationResult(
            alloc, demand_limited, float(capacity - alloc.sum())
        )
