"""PADLL-style metadata-aware throttling.

Models the QoS design of *PADLL: Taming Metadata-intensive HPC Jobs*:
metadata operations (open/stat/create hitting the MDS) are a separate,
scarcer bottleneck than data IOPS hitting the OSS pool, so the two are
allocated as **independent water-filled axes** — and metadata gets an
extra guard rail, a hard per-tenant rate cap, because one metadata-storm
job can collapse the MDS long before it dents the data budget.

Two entry points:

* :meth:`PADLLThrottler.allocate` — the standard single-axis
  ``ControlAlgorithm`` surface (a demand-capped weighted water-fill), so
  the throttler can ride in any harness that races single-axis brains.
  Used for the data axis.
* :meth:`PADLLThrottler.allocate_axes` — the real thing: both axes at
  once, per-tenant metadata caps applied *before* the metadata
  water-fill (a capped tenant cannot win surplus past its cap, which is
  exactly the storm-containment property the shootout measures).

Like PSFA, the throttler is pure and stateless: every cycle is a
function of its inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.algorithms.base import (
    AllocationResult,
    ControlAlgorithm,
    validate_inputs,
)
from repro.core.algorithms.psfa import weighted_waterfill

__all__ = ["PADLLThrottler"]

_EPS = 1e-12


class PADLLThrottler(ControlAlgorithm):
    """Two-axis (data + metadata) water-fill with per-tenant metadata caps.

    Parameters
    ----------
    metadata_cap_fraction:
        Default per-tenant metadata cap, as a fraction of the metadata
        capacity handed to :meth:`allocate_axes` (so no single tenant can
        hold more than this share of the MDS budget, storm or not).
        ``1.0`` disables the default cap.
    activity_threshold_iops:
        Demand at or below this marks a tenant idle on that axis; idle
        tenants receive zero (no false allocation).
    """

    name = "padll"

    def __init__(
        self,
        metadata_cap_fraction: float = 0.5,
        activity_threshold_iops: float = 0.0,
    ) -> None:
        if not 0.0 < metadata_cap_fraction <= 1.0:
            raise ValueError(
                f"metadata_cap_fraction must be in (0, 1]: {metadata_cap_fraction}"
            )
        if activity_threshold_iops < 0:
            raise ValueError(
                f"negative activity threshold: {activity_threshold_iops}"
            )
        self.metadata_cap_fraction = float(metadata_cap_fraction)
        self.activity_threshold_iops = float(activity_threshold_iops)

    def _fill_axis(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        caps: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        """Water-fill one axis; optional hard per-tenant caps."""
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        n = demands.size
        alloc = np.zeros(n)
        demand_limited = np.zeros(n, dtype=bool)
        active = demands > self.activity_threshold_iops
        if not np.any(active):
            return AllocationResult(alloc, demand_limited, float(capacity))
        effective = demands.copy()
        if caps is not None:
            effective = np.minimum(effective, caps)
        d_act = effective[active]
        w_act = weights[active]
        filled = weighted_waterfill(d_act, w_act, capacity)
        # The water-fill is work-conserving over *effective* (cap-clipped)
        # demand, so any leftover means every uncapped request is already
        # met.  The only tenants still hungry are capped ones, and their
        # cap is a hard ceiling — so the surplus stays unallocated, as
        # preserved MDS headroom, rather than becoming false allocation.
        leftover = capacity - float(filled.sum())
        alloc[active] = filled
        demand_limited[active] = filled >= demands[active] - _EPS
        return AllocationResult(alloc, demand_limited, max(leftover, 0.0))

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        """Single-axis surface: demand-capped weighted water-fill."""
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        result = self._fill_axis(demands, weights, capacity)
        if guarantees is None:
            return result
        # Honour floors for active tenants the cheap way: lift to the
        # floor, then rescale onto the capacity line if oversubscribed.
        g = np.asarray(guarantees, dtype=float)
        active = demands > self.activity_threshold_iops
        alloc = np.where(active, np.maximum(result.allocations, g),
                         result.allocations)
        total = float(alloc.sum())
        if total > capacity + _EPS:
            alloc = alloc * (capacity / total)
        return AllocationResult(
            alloc,
            alloc >= demands - _EPS,
            max(float(capacity - alloc.sum()), 0.0),
        )

    def allocate_axes(
        self,
        data_demands: np.ndarray,
        metadata_demands: np.ndarray,
        weights: np.ndarray,
        data_capacity: float,
        metadata_capacity: float,
        metadata_caps: Optional[np.ndarray] = None,
        guarantees: Optional[np.ndarray] = None,
    ) -> Tuple[AllocationResult, AllocationResult]:
        """Allocate both axes; returns ``(data_result, metadata_result)``.

        ``metadata_caps`` (per-tenant, absolute IOPS) defaults to
        ``metadata_cap_fraction * metadata_capacity`` for every tenant.
        Guarantees apply to the data axis only (they are defined on total
        IOPS and must not be double-counted, matching the sim core).
        """
        validate_inputs(data_demands, weights, data_capacity, guarantees)
        validate_inputs(metadata_demands, weights, metadata_capacity)
        data = self.allocate(data_demands, weights, data_capacity, guarantees)
        if metadata_caps is None:
            metadata_caps = np.full(
                np.asarray(weights).size,
                self.metadata_cap_fraction * metadata_capacity,
            )
        else:
            metadata_caps = np.asarray(metadata_caps, dtype=float)
            if np.any(metadata_caps < 0):
                raise ValueError("negative metadata cap")
        metadata = self._fill_axis(
            np.asarray(metadata_demands, dtype=float),
            np.asarray(weights, dtype=float),
            metadata_capacity,
            caps=metadata_caps,
        )
        return data, metadata
