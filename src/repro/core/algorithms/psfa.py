"""PSFA — proportional sharing without false allocation.

The state-of-the-art control algorithm the paper runs at the global
controller (paper §III-C, introduced by Cheferd). Semantics:

1. Jobs are weighted by their QoS class; backlogged jobs split the PFS
   budget in proportion to weight.
2. **No false allocation**: a job never consumes budget it is not using.
   Idle jobs (zero observed demand) receive nothing; a job demanding less
   than its weighted share receives exactly its demand, and the surplus is
   redistributed to jobs that can use it (weighted water-filling).
3. **No under-provisioning**: when total demand exceeds capacity, the full
   budget is handed out (work conservation); when it does not, each active
   job additionally receives a proportional slice of the leftover as a
   growth margin, so rising demand is not throttled for a full control
   period.
4. Optional per-job minimum floors are carved out first for active jobs.

The core is :func:`weighted_waterfill`, an O(n log n) exact water-filling
via sorting and prefix sums — fully vectorized, following the
numpy-optimisation guidance this project is built under (no Python loop
over jobs; 10,000-job allocations take well under a millisecond).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithms.base import (
    AllocationResult,
    ControlAlgorithm,
    validate_inputs,
)

__all__ = ["PSFA", "split_job_allocation", "weighted_waterfill"]

_EPS = 1e-12


def weighted_waterfill(
    demands: np.ndarray,
    weights: np.ndarray,
    capacity: float,
) -> np.ndarray:
    """Weighted max-min allocation with demand caps.

    Returns ``alloc`` with ``alloc[i] = min(demands[i], level * weights[i])``
    where ``level`` is the water level at which allocations sum to
    ``capacity`` — or ``alloc = demands`` when everything fits.

    Exact, sort-based, O(n log n):

    * sort jobs by the level ``r_i = d_i / w_i`` at which they saturate;
    * the first ``k`` jobs (lowest ``r``) are fully granted; the rest sit
      at the water level ``level(k) = (C - sum_{i<k} d_i) / sum_{i>=k} w_i``;
    * the correct ``k`` is the smallest one whose implied level does not
      exceed the next job's saturation point.
    """
    demands = np.asarray(demands, dtype=float)
    weights = np.asarray(weights, dtype=float)
    n = demands.size
    if n == 0:
        return np.zeros(0)
    total_demand = float(demands.sum())
    if total_demand <= capacity:
        return demands.copy()

    # This function is exported on its own (callable without
    # validate_inputs), so degenerate weights must be guarded here: a
    # zero weight divides by zero below, and a 0-demand/0-weight pair
    # yields nan — which poisons the argsort and the whole allocation.
    # Clamping to _EPS keeps positive-weight behavior bit-identical and
    # gives zero-weight jobs a saturation ratio so large they are only
    # granted once everyone else is satisfied.
    weights = np.maximum(weights, _EPS)

    ratio = demands / weights
    order = np.argsort(ratio, kind="stable")
    d_sorted = demands[order]
    w_sorted = weights[order]
    r_sorted = ratio[order]

    # Cumulative demand of fully granted prefix and weight of the rest,
    # for every candidate split point k = 0..n-1.
    demand_before = np.concatenate(([0.0], np.cumsum(d_sorted)[:-1]))
    weight_from = np.cumsum(w_sorted[::-1])[::-1]
    levels = (capacity - demand_before) / np.maximum(weight_from, _EPS)

    feasible = levels <= r_sorted + _EPS
    # Some k is feasible because total demand exceeds capacity.
    k = int(np.argmax(feasible))
    level = levels[k]

    alloc_sorted = np.minimum(d_sorted, level * w_sorted)
    alloc_sorted[:k] = d_sorted[:k]
    alloc = np.empty(n)
    alloc[order] = alloc_sorted
    return alloc


def split_job_allocation(
    job_allocation: float,
    stage_demands: np.ndarray,
) -> np.ndarray:
    """Split one job's grant across its stages, proportional to demand.

    Active stages split ``min(job_allocation, total_demand)`` in
    proportion to their demand. When the grant exceeds total demand and
    some stages are idle, the surplus is split equally among the idle
    stages (the same idle-stage equal-split convention as
    ``Controller._allocate_vector``); with no idle stages the surplus is
    folded into the proportional split, so every stage scales up
    uniformly. All stages idle → the whole grant splits equally.
    """
    if job_allocation < 0:
        raise ValueError(f"negative job allocation: {job_allocation}")
    stage_demands = np.asarray(stage_demands, dtype=float)
    if np.any(stage_demands < 0):
        raise ValueError("negative stage demand")
    n = stage_demands.size
    if n == 0:
        return np.zeros(0)
    total = float(stage_demands.sum())
    if total <= _EPS:
        return np.full(n, job_allocation / n)
    idle = stage_demands <= _EPS
    surplus = job_allocation - total
    if surplus > _EPS and np.any(idle):
        alloc = stage_demands.copy()
        alloc[idle] = surplus / int(idle.sum())
        return alloc
    return job_allocation * stage_demands / total


class PSFA(ControlAlgorithm):
    """Proportional sharing without false allocation.

    Parameters
    ----------
    redistribute_leftover:
        Hand unrequested budget to active jobs as growth margin
        (the paper's configuration). When False, allocations equal the
        demand-capped water-fill and surplus stays unallocated.
    activity_threshold_iops:
        Demand at or below this value marks a job *idle* (receives zero —
        the "without false allocation" property).
    max_demand_factor:
        Optional input sanitizer: each reported demand is capped at
        ``max_demand_factor × capacity`` before allocation. The
        water-fill itself already bounds what an inflated demand can
        *win*, but an absurd report (1e9 IOPS from a lying tenant) still
        poisons demand-limited bookkeeping, leftover accounting, and any
        downstream consumer of the demand vector (orphan reservations,
        stats) — clamping at a small multiple of capacity bounds that
        damage with no effect on honest inputs.
    """

    name = "psfa"

    def __init__(
        self,
        redistribute_leftover: bool = True,
        activity_threshold_iops: float = 0.0,
        max_demand_factor: Optional[float] = None,
    ) -> None:
        if activity_threshold_iops < 0:
            raise ValueError(
                f"negative activity threshold: {activity_threshold_iops}"
            )
        if max_demand_factor is not None and max_demand_factor <= 0:
            raise ValueError(
                f"max_demand_factor must be positive: {max_demand_factor}"
            )
        self.redistribute_leftover = bool(redistribute_leftover)
        self.activity_threshold_iops = float(activity_threshold_iops)
        self.max_demand_factor = (
            float(max_demand_factor) if max_demand_factor is not None else None
        )

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if self.max_demand_factor is not None:
            demands = np.minimum(demands, self.max_demand_factor * capacity)
        n = demands.size
        alloc = np.zeros(n)
        demand_limited = np.zeros(n, dtype=bool)

        active = demands > self.activity_threshold_iops
        if not np.any(active):
            return AllocationResult(alloc, demand_limited, float(capacity))

        d_act = demands[active]
        w_act = weights[active]

        if guarantees is not None:
            g_act = np.asarray(guarantees, dtype=float)[active]
        else:
            g_act = np.zeros(d_act.size)

        # Floors are honoured only for active jobs (no false allocation of
        # an idle job's guarantee). Capacity above the floors is
        # water-filled over the demand that exceeds each floor.
        floors = g_act
        spare_capacity = capacity - float(floors.sum())
        excess_demand = np.maximum(d_act - floors, 0.0)
        filled = weighted_waterfill(excess_demand, w_act, spare_capacity)
        grants = floors + filled

        demand_limited_act = grants >= d_act - _EPS

        leftover = capacity - float(grants.sum())
        if self.redistribute_leftover and leftover > _EPS:
            grants = grants + leftover * w_act / float(w_act.sum())
            leftover = 0.0

        alloc[active] = grants
        demand_limited[active] = demand_limited_act
        return AllocationResult(alloc, demand_limited, max(leftover, 0.0))
