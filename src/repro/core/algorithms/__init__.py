"""Control algorithms executed by the global controller each cycle."""

from repro.core.algorithms.base import AllocationResult, ControlAlgorithm
from repro.core.algorithms.baselines import (
    MaxMinFair,
    NaiveProportional,
    StaticPartition,
    UniformShare,
)
from repro.core.algorithms.psfa import PSFA, weighted_waterfill

__all__ = [
    "AllocationResult",
    "ControlAlgorithm",
    "MaxMinFair",
    "NaiveProportional",
    "PSFA",
    "StaticPartition",
    "UniformShare",
    "weighted_waterfill",
]
