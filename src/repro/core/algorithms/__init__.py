"""Control algorithms executed by the global controller each cycle."""

from repro.core.algorithms.base import AllocationResult, ControlAlgorithm
from repro.core.algorithms.baselines import (
    MaxMinFair,
    NaiveProportional,
    StaticPartition,
    UniformShare,
)
from repro.core.algorithms.padll import PADLLThrottler
from repro.core.algorithms.pid import PIDController
from repro.core.algorithms.psfa import PSFA, split_job_allocation, weighted_waterfill

__all__ = [
    "AllocationResult",
    "ControlAlgorithm",
    "MaxMinFair",
    "NaiveProportional",
    "PADLLThrottler",
    "PIDController",
    "PSFA",
    "StaticPartition",
    "UniformShare",
    "split_job_allocation",
    "weighted_waterfill",
]
