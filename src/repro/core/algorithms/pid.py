"""PID feedback controller for per-job IOPS allocation.

The control-theoretic competitor named by the paper's related work
("Mitigating Shared Storage Congestion Using Control Theory"): instead of
recomputing an ideal share from scratch each cycle (PSFA), the controller
*steers* each job's limit toward its observed demand through a classic
discrete PID loop:

    error_i    = demand_i - limit_i                (per cycle)
    limit_i'   = clamp(limit_i + Kp*e + Ki*I + Kd*(e - e_prev), 0, C)

with **conditional-integration anti-windup**: the integrator freezes for
any job whose output is saturated in the direction the error is pushing,
so a long burst does not bank unbounded integral that later causes a deep
undershoot. When the steered limits oversubscribe capacity they are
rescaled proportionally onto the capacity line, mirroring how a real
deployment would post-process actuator commands.

Unlike the other algorithms in this package, the PID controller is
*stateful* by design — the whole point of a feedback loop is memory of
the previous cycle. Determinism is preserved: the output is a pure
function of the gain settings and the full input sequence since the last
``reset()``. State resets automatically whenever the job population
changes size (a replay starting mid-stream sees a clean integrator), and
``reset()`` restores the initial state explicitly.

Tuning notes (see DESIGN.md "Controller brains"): the defaults
``Kp=0.6, Ki=0.15, Kd=0.05`` converge on a 2x burst in a handful of
cycles without ringing at cycle periods around 1 s. Raise ``Kp`` for
faster reaction at the cost of overshoot; raise ``Ki`` to close
steady-state error faster; ``Kd`` damps oscillation when demand is noisy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithms.base import (
    AllocationResult,
    ControlAlgorithm,
    validate_inputs,
)

__all__ = ["PIDController"]

_EPS = 1e-12


class PIDController(ControlAlgorithm):
    """Discrete PID loop steering per-job limits toward observed demand.

    Parameters
    ----------
    kp, ki, kd:
        Proportional / integral / derivative gains (all >= 0). The
        deterministic defaults are tuned for the repo's seeded shootout
        workloads; see the module docstring for tuning guidance.
    activity_threshold_iops:
        Demand at or below this marks a job idle: its limit snaps to 0
        and its integrator/derivative state is cleared, so a returning
        job restarts the loop instead of inheriting stale wind-up.
    """

    name = "pid"

    def __init__(
        self,
        kp: float = 0.6,
        ki: float = 0.15,
        kd: float = 0.05,
        activity_threshold_iops: float = 0.0,
    ) -> None:
        for label, gain in (("kp", kp), ("ki", ki), ("kd", kd)):
            if gain < 0:
                raise ValueError(f"negative gain {label}: {gain}")
        if activity_threshold_iops < 0:
            raise ValueError(
                f"negative activity threshold: {activity_threshold_iops}"
            )
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.activity_threshold_iops = float(activity_threshold_iops)
        self._integral: Optional[np.ndarray] = None
        self._prev_error: Optional[np.ndarray] = None
        self._prev_alloc: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop all loop state; the next cycle starts from a fair split."""
        self._integral = None
        self._prev_error = None
        self._prev_alloc = None

    def allocate(
        self,
        demands: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        guarantees: Optional[np.ndarray] = None,
    ) -> AllocationResult:
        validate_inputs(demands, weights, capacity, guarantees)
        demands = np.asarray(demands, dtype=float)
        weights = np.asarray(weights, dtype=float)
        n = demands.size
        if n == 0:
            return AllocationResult(
                np.zeros(0), np.zeros(0, dtype=bool), float(capacity)
            )

        if self._prev_alloc is None or self._prev_alloc.size != n:
            # Population changed (or first cycle): start from the
            # weight-proportional fair split, with clean loop state.
            self._prev_alloc = capacity * weights / float(weights.sum())
            self._integral = np.zeros(n)
            self._prev_error = np.zeros(n)

        error = demands - self._prev_alloc
        integral_candidate = self._integral + error
        raw = (
            self._prev_alloc
            + self.kp * error
            + self.ki * integral_candidate
            + self.kd * (error - self._prev_error)
        )

        # Conditional integration: freeze the integrator wherever the
        # actuator is pinned at a bound *and* the error pushes further
        # into that bound — the textbook anti-windup guard.
        windup = ((raw > capacity) & (error > 0)) | ((raw < 0.0) & (error < 0))
        self._integral = np.where(windup, self._integral, integral_candidate)
        alloc = np.clip(raw, 0.0, capacity)

        idle = demands <= self.activity_threshold_iops
        if np.any(idle):
            alloc[idle] = 0.0
            self._integral[idle] = 0.0
            error = np.where(idle, 0.0, error)

        if guarantees is not None:
            g = np.asarray(guarantees, dtype=float)
            alloc = np.where(idle, alloc, np.maximum(alloc, g))

        total = float(alloc.sum())
        if total > capacity + _EPS:
            alloc = alloc * (capacity / total)

        self._prev_error = error
        self._prev_alloc = alloc
        demand_limited = alloc >= demands - _EPS
        unallocated = max(float(capacity - alloc.sum()), 0.0)
        return AllocationResult(alloc, demand_limited, unallocated)
