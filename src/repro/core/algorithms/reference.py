"""Pure-Python reference implementations of the allocation brains.

The production brains (:mod:`psfa`, :mod:`padll`, :mod:`baselines`) are
fully vectorized; these loop-based twins restate their semantics in
plain Python, one stage at a time, as an executable specification. The
hypothesis equivalence suite races the two families over random demand /
weight / capacity inputs (including the zero-weight and idle-stage
degenerate cases pinned in PR 9).

Equivalence contract: **ulp-bounded, not byte-identical.** The
vectorized kernels sum with ``ndarray.sum``/``cumsum`` (pairwise
summation) while these loops accumulate sequentially, so the two differ
by floating-point associativity — bounded to a relative 1e-9 by the
suite. Controller-level columnar-vs-scalar equivalence *is* byte-exact
(both sides call the same vectorized brains); the ulp bound applies only
to this reference family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "max_min_fair_reference",
    "naive_proportional_reference",
    "padll_axes_reference",
    "psfa_reference",
    "static_partition_reference",
    "uniform_share_reference",
    "waterfill_reference",
]

_EPS = 1e-12


def waterfill_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> List[float]:
    """Sequential weighted water-fill (mirrors ``weighted_waterfill``).

    Grants jobs in ascending order of their saturation level
    ``d_i / w_i``; once the remaining budget can no longer satisfy the
    next job, everyone left sits at the common water level.
    """
    n = len(demands)
    if n == 0:
        return []
    d = [float(x) for x in demands]
    if sum(d) <= capacity:
        return list(d)
    w = [max(float(x), _EPS) for x in weights]

    order = sorted(range(n), key=lambda i: d[i] / w[i])
    # Suffix weight sums, like the kernel's reverse cumsum. A running
    # subtraction (total - granted) would catastrophically cancel once
    # only epsilon-clamped zero-weight jobs remain, yielding a garbage
    # water level; summing the tail directly keeps it exact.
    suffix_weight = [0.0] * (n + 1)
    for pos in range(n - 1, -1, -1):
        suffix_weight[pos] = suffix_weight[pos + 1] + w[order[pos]]

    alloc = [0.0] * n
    granted_demand = 0.0
    for pos, i in enumerate(order):
        level = (capacity - granted_demand) / max(suffix_weight[pos], _EPS)
        if d[i] / w[i] <= level + _EPS:
            # Fully granted: below the water line.
            alloc[i] = d[i]
            granted_demand += d[i]
        else:
            # Everyone from here up shares the final water level.
            for j in order[pos:]:
                alloc[j] = min(d[j], level * w[j])
            break
    return alloc


def psfa_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    guarantees: Optional[Sequence[float]] = None,
    redistribute_leftover: bool = True,
    activity_threshold_iops: float = 0.0,
) -> List[float]:
    """Loop-based twin of :meth:`PSFA.allocate` (allocations only)."""
    n = len(demands)
    alloc = [0.0] * n
    active = [i for i in range(n) if demands[i] > activity_threshold_iops]
    if not active:
        return alloc
    d_act = [float(demands[i]) for i in active]
    w_act = [float(weights[i]) for i in active]
    g_act = (
        [float(guarantees[i]) for i in active]
        if guarantees is not None
        else [0.0] * len(active)
    )
    spare = capacity - sum(g_act)
    excess = [max(d - g, 0.0) for d, g in zip(d_act, g_act)]
    filled = waterfill_reference(excess, w_act, spare)
    grants = [g + f for g, f in zip(g_act, filled)]
    leftover = capacity - sum(grants)
    if redistribute_leftover and leftover > _EPS:
        total_w = sum(w_act)
        grants = [g + leftover * w / total_w for g, w in zip(grants, w_act)]
    for i, g in zip(active, grants):
        alloc[i] = g
    return alloc


def padll_fill_axis_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    caps: Optional[Sequence[float]] = None,
    activity_threshold_iops: float = 0.0,
) -> List[float]:
    """Loop-based twin of :meth:`PADLLThrottler._fill_axis`."""
    n = len(demands)
    alloc = [0.0] * n
    active = [i for i in range(n) if demands[i] > activity_threshold_iops]
    if not active:
        return alloc
    effective = [
        min(float(demands[i]), float(caps[i])) if caps is not None
        else float(demands[i])
        for i in active
    ]
    filled = waterfill_reference(
        effective, [float(weights[i]) for i in active], capacity
    )
    for i, f in zip(active, filled):
        alloc[i] = f
    return alloc


def padll_axes_reference(
    data_demands: Sequence[float],
    metadata_demands: Sequence[float],
    weights: Sequence[float],
    data_capacity: float,
    metadata_capacity: float,
    metadata_caps: Optional[Sequence[float]] = None,
    guarantees: Optional[Sequence[float]] = None,
    metadata_cap_fraction: float = 0.5,
    activity_threshold_iops: float = 0.0,
) -> Tuple[List[float], List[float]]:
    """Loop-based twin of :meth:`PADLLThrottler.allocate_axes`."""
    n = len(data_demands)
    data = padll_fill_axis_reference(
        data_demands, weights, data_capacity,
        activity_threshold_iops=activity_threshold_iops,
    )
    if guarantees is not None:
        lifted = [
            max(a, float(g)) if d > activity_threshold_iops else a
            for a, g, d in zip(data, guarantees, data_demands)
        ]
        total = sum(lifted)
        if total > data_capacity + _EPS:
            lifted = [a * (data_capacity / total) for a in lifted]
        data = lifted
    if metadata_caps is None:
        metadata_caps = [metadata_cap_fraction * metadata_capacity] * n
    meta = padll_fill_axis_reference(
        metadata_demands, weights, metadata_capacity, caps=metadata_caps,
        activity_threshold_iops=activity_threshold_iops,
    )
    return data, meta


def static_partition_reference(
    demands: Sequence[float], weights: Sequence[float], capacity: float
) -> List[float]:
    """Loop-based twin of the ``static-partition`` baseline.

    Demand-blind: every stage gets its weight share of capacity whether
    it asked for anything or not.
    """
    total_w = sum(float(w) for w in weights)
    return [capacity * float(w) / total_w for w in weights]


def uniform_share_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    activity_threshold_iops: float = 0.0,
) -> List[float]:
    """Loop-based twin of the ``uniform-share`` baseline.

    Capacity split equally across the active stages; weights ignored.
    """
    active = [i for i, d in enumerate(demands) if d > activity_threshold_iops]
    alloc = [0.0] * len(demands)
    if active:
        share = capacity / len(active)
        for i in active:
            alloc[i] = share
    return alloc


def naive_proportional_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    activity_threshold_iops: float = 0.0,
) -> List[float]:
    """Loop-based twin of the ``naive-proportional`` baseline.

    Weight-proportional split of capacity over the active stages, with
    no demand clamp — a stage can be granted more than it asked for.
    """
    active = [i for i, d in enumerate(demands) if d > activity_threshold_iops]
    alloc = [0.0] * len(demands)
    if active:
        total_w = sum(float(weights[i]) for i in active)
        for i in active:
            alloc[i] = capacity * float(weights[i]) / total_w
    return alloc


def max_min_fair_reference(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    activity_threshold_iops: float = 0.0,
) -> List[float]:
    """Loop-based twin of the ``max-min-fair`` baseline.

    Unweighted water-fill over the active stages — classic max-min
    fairness, demand-clamped.
    """
    active = [i for i, d in enumerate(demands) if d > activity_threshold_iops]
    alloc = [0.0] * len(demands)
    if active:
        filled = waterfill_reference(
            [float(demands[i]) for i in active], [1.0] * len(active), capacity
        )
        for i, f in zip(active, filled):
            alloc[i] = f
    return alloc
