"""Global and aggregator controller state machines.

These are the actors of the paper's two control-plane designs:

* :class:`GlobalController` — runs the feedback loop (collect → compute →
  enforce) over its children. In the **flat** design the children are
  data-plane stages (Fig. 2); in the **hierarchical** design they are
  :class:`AggregatorController` instances (Fig. 3).
* :class:`AggregatorController` — the extra control level: fans collect
  requests out to its stage partition, merges the replies into one
  aggregated report, and unpacks rule batches into per-stage rule
  messages. With ``decision_offload`` (paper §VI) it instead receives a
  capacity *budget* and runs PSFA locally over its partition.

Both controllers charge every protocol step to their host through the
:class:`~repro.core.costs.CostModel`, so cycle latency, phase breakdown,
CPU %, memory, and NIC throughput all emerge from the simulation.

Message protocol (kind, payload):

=================  ==========================================  ===========
kind               payload                                     direction
=================  ==========================================  ===========
collect_req        epoch                                       ctrl → stage
metrics_reply      (epoch, StageMetrics)                       stage → ctrl
rule               (epoch, EnforcementRule)                    ctrl → stage
rule_ack           epoch                                       stage → ctrl
agg_collect_req    epoch                                       global → agg
agg_metrics_reply  (epoch, AggregatedMetrics)                  agg → global
rule_batch         (epoch, RuleBatch)                          global → agg
batch_ack          epoch                                       agg → global
budget_grant       (epoch, budget_iops)                        global → agg
budget_ack         epoch                                       agg → global
=================  ==========================================  ===========
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.columnar import StageColumns
from repro.core.compute import ColumnarCompute
from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.cycle import ControlCycle
from repro.core.metrics import AggregatedMetrics, MetricsWindow, StageMetrics, aggregate
from repro.core.policies import QoSPolicy
from repro.core.registry import StageRegistry, StageRecord
from repro.core.rules import EnforcementRule, RuleBatch
from repro.obs.spans import NullSpanTracer
from repro.simnet.engine import Environment, Process
from repro.simnet.node import SimHost
from repro.simnet.transport import Connection, Endpoint

__all__ = ["AggregatorController", "ChildChannel", "GlobalController"]


def _chunks(seq: List, size: int) -> Iterable[List]:
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


@dataclass
class ChildChannel:
    """A controller's link to one child (stage or sub-controller)."""

    child_id: str
    kind: str  # "stage" | "aggregator"
    connection: Connection
    endpoint: Endpoint  # our side of the connection
    stage_ids: Tuple[str, ...] = ()

    @property
    def n_stages(self) -> int:
        return len(self.stage_ids) if self.kind == "aggregator" else 1


class _ControllerBase:
    """Shared plumbing: chunked charging, sending, and reply collection."""

    def __init__(
        self,
        env: Environment,
        host: SimHost,
        endpoint: Endpoint,
        costs: CostModel,
        name: str,
    ) -> None:
        self.env = env
        self.host = host
        self.endpoint = endpoint
        self.costs = costs
        self.name = name
        #: Messages discarded because they arrived for a finished epoch or
        #: with an unexpected kind (late replies after a collect timeout,
        #: duplicates after failover, ...).
        self.stale_messages = 0
        #: Kinds that must never be dropped when they arrive while another
        #: phase is waiting (e.g. peer summaries landing mid-collect in
        #: the coordinated-flat design). They park in ``_deferred`` until
        #: a later :meth:`_await_replies` asks for them.
        self.defer_kinds: set = set()
        self._deferred: List = []

    def _execute(self, seconds: float):
        """Charge critical-path CPU (serialized on this controller's loop)."""
        return self.host.execute(seconds)

    def _send_all(
        self,
        channels: List[ChildChannel],
        kind: str,
        payload_fn: Callable[[ChildChannel], object],
        size_fn: Callable[[ChildChannel], int],
        per_item_cost: float,
    ) -> Generator:
        """Serialize and transmit one message per channel, in chunks.

        Chunking (``costs.send_chunk``) models event-loop batching: the CPU
        burst for a chunk completes before its messages hit the wire, so
        early recipients respond while later sends are still serializing.
        Channels whose connection closed mid-cycle (membership churn) are
        skipped; returns the number of messages actually sent.
        """
        sent = 0
        for chunk in _chunks(channels, self.costs.send_chunk):
            live = [ch for ch in chunk if not ch.connection.closed]
            if not live:
                continue
            yield self._execute(len(live) * per_item_cost)
            for ch in live:
                ch.connection.send(ch.endpoint, kind, payload_fn(ch), size_fn(ch))
                sent += 1
        return sent

    def _await_replies(
        self,
        expected: int,
        epoch: int,
        kind_costs: Mapping[str, float],
        on_message: Callable[[object], None],
        deadline: Optional[float] = None,
    ) -> Generator:
        """Receive ``expected`` messages of the given kinds for ``epoch``.

        Messages already queued are drained and charged as one CPU burst,
        modelling a server loop that batches its ready work: the counting
        barrier is ``received``, not one wake-up event per child. A batch
        whose messages are already queued is consumed inline, without a
        recv event round-trip, and the phase deadline is one reusable
        Timeout rather than one per wake-up. Returns the number actually
        received (short on timeout).
        """
        received = 0
        env = self.env
        inbox = self.endpoint.inbox

        # Consume matching messages parked by earlier phases first.
        if self._deferred:
            ready = [
                m
                for m in self._deferred
                if m.kind in kind_costs
                and (m.payload[0] if isinstance(m.payload, tuple) else m.payload)
                == epoch
            ]
            if ready:
                ready_set = set(map(id, ready))
                self._deferred = [
                    m for m in self._deferred if id(m) not in ready_set
                ]
                yield self._execute(sum(kind_costs[m.kind] for m in ready))
                for msg in ready:
                    on_message(msg)
                received += len(ready)

        defer_kinds = self.defer_kinds
        deferred = self._deferred
        get_cost = kind_costs.get
        deadline_ev = None

        while received < expected:
            if inbox.items:
                # Ready work: drain without a recv event round-trip. The
                # deadline check mirrors the blocking path (a phase past
                # its deadline leaves queued messages for the next phase
                # to classify as stale).
                if deadline is not None and deadline - env.now <= 0:
                    break
                batch = inbox.drain()
            else:
                recv_ev = self.endpoint.recv()
                if deadline is None:
                    first = yield recv_ev
                else:
                    remaining = deadline - env.now
                    if remaining <= 0:
                        recv_ev.cancel()
                        break
                    if deadline_ev is None:
                        deadline_ev = env.timeout(remaining)
                    yield env.any_of([recv_ev, deadline_ev])
                    if not recv_ev.triggered:
                        recv_ev.cancel()
                        break
                    first = recv_ev.value
                batch = [first]
                batch.extend(inbox.drain())
            charge = 0.0
            relevant = []
            stale = 0
            for msg in batch:
                cost = get_cost(msg.kind)
                payload = msg.payload
                msg_epoch = payload[0] if isinstance(payload, tuple) else payload
                if cost is not None and msg_epoch == epoch:
                    charge += cost
                    relevant.append(msg)
                elif msg.kind in defer_kinds:
                    deferred.append(msg)
                else:
                    stale += 1
            if stale:
                self.stale_messages += stale
            if charge:
                yield self._execute(charge)
            for msg in relevant:
                on_message(msg)
            received += len(relevant)
        return received


class GlobalController(_ControllerBase):
    """The top-level controller executing the control algorithm.

    Children are registered with :meth:`add_stage` (flat design) or
    :meth:`add_aggregator` (hierarchical design); mixing kinds is allowed
    by the implementation but not used in the paper's experiments.

    Parameters
    ----------
    policy:
        The cluster QoS contract (capacity, weights, floors).
    algorithm:
        The per-cycle allocation algorithm (PSFA by default).
    collect_timeout_s:
        Optional per-phase deadline. When set, a cycle proceeds with
        whatever metrics/acks arrived by the deadline instead of blocking
        on failed children (dependability experiments).
    decision_offload:
        Hierarchical only: ship per-aggregator budgets instead of rule
        batches, moving PSFA execution down to the aggregators (§VI).
    """

    def __init__(
        self,
        env: Environment,
        host: SimHost,
        endpoint: Endpoint,
        policy: QoSPolicy,
        algorithm: Optional[ControlAlgorithm] = None,
        costs: CostModel = FRONTERA_COST_MODEL,
        collect_timeout_s: Optional[float] = None,
        decision_offload: bool = False,
        enforce_changed_only: bool = False,
        rule_change_tolerance: float = 0.0,
        metrics_alpha: float = 1.0,
        columnar: bool = False,
        name: str = "global",
        span_tracer=None,
    ) -> None:
        super().__init__(env, host, endpoint, costs, name)
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        # Stateful brains (e.g. the PID controller) carry loop state
        # between cycles; running data and metadata through one instance
        # would interleave two control loops.  Each axis gets its own
        # twin, matching the live planes.
        self.metadata_algorithm = copy.deepcopy(self.algorithm)
        self.collect_timeout_s = collect_timeout_s
        self.decision_offload = decision_offload
        #: When set, the enforce phase ships only rules whose limits moved
        #: by more than ``rule_change_tolerance`` (relative) since the last
        #: pushed rule — cutting enforce traffic for steady workloads at
        #: the cost of stages holding older epochs (they are equivalent).
        self.enforce_changed_only = enforce_changed_only
        if rule_change_tolerance < 0:
            raise ValueError(
                f"negative rule change tolerance: {rule_change_tolerance}"
            )
        self.rule_change_tolerance = rule_change_tolerance
        self.rules_suppressed = 0
        self.registry = StageRegistry()
        #: EWMA smoothing over reported demand. alpha=1 (paper) reacts to
        #: each report instantly; lower values damp bursty demand before
        #: it reaches the allocator, trading reactivity for rule churn.
        #: With ``columnar`` the window is a :class:`StageColumns` — a
        #: duck-compatible drop-in whose demand lives in flat float64
        #: columns, so the compute phase gathers with a cached fancy
        #: index instead of a per-stage Python loop.
        self.columnar = columnar
        if columnar:
            self.window = StageColumns(alpha=metrics_alpha)
            self._columnar_compute: Optional[ColumnarCompute] = ColumnarCompute(
                self.window
            )
        else:
            self.window = MetricsWindow(alpha=metrics_alpha)
            self._columnar_compute = None
        # (registry generation, columns generation) -> row/job order of
        # the columns still mirrors the registry; falls back to the
        # scalar gather when they diverge (partial-job evictions).
        self._columnar_ok: Optional[Tuple[Tuple[int, int], bool]] = None
        self.children: List[ChildChannel] = []
        self.cycles: List[ControlCycle] = []
        self.epoch = 0
        self.latest_metrics: Dict[str, StageMetrics] = {}
        self.latest_rules: Dict[str, EnforcementRule] = {}
        self.collect_timeouts = 0
        self._proc: Optional[Process] = None
        self._job_index_cache: Optional[Tuple[int, dict]] = None
        host.allocate(costs.global_fixed_mem)

    # -- membership -----------------------------------------------------------
    def add_stage(self, stage_id: str, job_id: str, channel: ChildChannel) -> None:
        """Register a directly managed stage (flat design)."""
        self.registry.register(
            StageRecord(stage_id, job_id, channel.endpoint.host.name, self.env.now)
        )
        if self._columnar_compute is not None:
            self.window.register(stage_id, job_id)
        self.children.append(channel)
        self.host.allocate(self.costs.flat_per_stage_mem)

    def add_aggregator(
        self,
        channel: ChildChannel,
        stage_jobs: Mapping[str, str],
    ) -> None:
        """Register an aggregator child and the stages behind it."""
        for stage_id in channel.stage_ids:
            self.registry.register(
                StageRecord(stage_id, stage_jobs[stage_id], channel.child_id, self.env.now)
            )
            if self._columnar_compute is not None:
                self.window.register(stage_id, stage_jobs[stage_id])
            self.host.allocate(self.costs.hier_per_stage_mem)
        self.children.append(channel)
        self.host.allocate(self.costs.per_agg_mem_at_global)

    def remove_stage(self, stage_id: str) -> None:
        """Deregister a departed stage (flat design churn).

        The stage's connection is closed, releasing its slot in both
        hosts' connection pools. Safe to call between cycles; a removal
        racing an in-flight cycle only wastes that cycle's rule for the
        departed stage.
        """
        self.registry.deregister(stage_id)
        for ch in self.children:
            if ch.child_id == stage_id:
                ch.connection.close()
        self.children = [c for c in self.children if c.child_id != stage_id]
        self.window.forget(stage_id)
        self.latest_metrics.pop(stage_id, None)
        self.latest_rules.pop(stage_id, None)
        self.host.free(self.costs.flat_per_stage_mem)
        self._job_index_cache = None

    @property
    def n_stages(self) -> int:
        return len(self.registry)

    @property
    def is_hierarchical(self) -> bool:
        return any(c.kind == "aggregator" for c in self.children)

    # -- main loop -----------------------------------------------------------
    def run_cycles(self, n_cycles: int) -> Process:
        """Run ``n_cycles`` back-to-back cycles (the paper's stress mode)."""
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        self._proc = self.env.process(self._run(n_cycles, None), name=f"{self.name}.loop")
        return self._proc

    def run_for(self, duration_s: float, period_s: float = 0.0) -> Process:
        """Run cycles for ``duration_s``, optionally paced by ``period_s``.

        ``period_s`` is the administrator-set control period (paper §II-B);
        a cycle that finishes early sleeps until the next period boundary.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        self._proc = self.env.process(
            self._run(None, (duration_s, period_s)), name=f"{self.name}.loop"
        )
        return self._proc

    def _run(self, n_cycles: Optional[int], timed) -> Generator:
        if not self.children:
            raise RuntimeError("controller has no children to manage")
        if timed is None:
            for _ in range(n_cycles):
                yield from self._cycle()
            return
        duration, period = timed
        end = self.env.now + duration
        while self.env.now < end:
            started = self.env.now
            yield from self._cycle()
            if period > 0:
                next_tick = started + period
                if next_tick > self.env.now:
                    yield self.env.timeout(next_tick - self.env.now)

    # -- one cycle --------------------------------------------------------------
    def _cycle(self) -> Generator:
        self.epoch += 1
        epoch = self.epoch
        cm = self.costs
        if self._columnar_compute is not None:
            # Cycle start is the one safe point to renumber rows: no row
            # snapshot is live and the generation bump invalidates caches.
            self.window.maybe_compact()
        started = self.env.now
        deadline = (
            started + self.collect_timeout_s if self.collect_timeout_s else None
        )

        # ---- collect ----
        stage_children = [c for c in self.children if c.kind == "stage"]
        agg_children = [c for c in self.children if c.kind == "aggregator"]
        expected = 0
        if stage_children:
            expected += yield from self._send_all(
                stage_children,
                "collect_req",
                lambda ch: epoch,
                lambda ch: cm.request_bytes,
                cm.tx_request_s,
            )
        if agg_children:
            expected += yield from self._send_all(
                agg_children,
                "agg_collect_req",
                lambda ch: epoch,
                lambda ch: cm.agg_request_bytes,
                cm.tx_request_s,
            )

        reported_stages = 0
        columnar = self._columnar_compute is not None

        def on_report(msg) -> None:
            nonlocal reported_stages
            _, data = msg.payload
            if isinstance(data, AggregatedMetrics):
                reported_stages += len(data.stage_ids)
                for i, stage_id in enumerate(data.stage_ids):
                    report = StageMetrics(
                        stage_id=stage_id,
                        job_id=data.job_ids[i],
                        data_iops=data.data_iops[i],
                        metadata_iops=data.metadata_iops[i],
                        timestamp=data.timestamp,
                    )
                    self.latest_metrics[stage_id] = report
                    if columnar:
                        self.window.observe(
                            stage_id, report.data_iops, report.metadata_iops
                        )
                    else:
                        self.window.update(stage_id, report.total_iops)
            else:
                reported_stages += 1
                self.latest_metrics[data.stage_id] = data
                if columnar:
                    self.window.observe(
                        data.stage_id, data.data_iops, data.metadata_iops
                    )
                else:
                    self.window.update(data.stage_id, data.total_iops)

        # Per-aggregated-reply cost scales with the partition size; model
        # it with the mean partition size (partitions are near-uniform).
        agg_entry_cost = cm.rx_agg_reply_fixed_s
        if agg_children:
            mean_part = sum(c.n_stages for c in agg_children) / len(agg_children)
            agg_entry_cost += mean_part * cm.rx_agg_entry_s
        got = yield from self._await_replies(
            expected,
            epoch,
            {"metrics_reply": cm.rx_reply_s, "agg_metrics_reply": agg_entry_cost},
            on_report,
            deadline,
        )
        if got < expected:
            self.collect_timeouts += 1
        t_collect = self.env.now - started

        # ---- compute ----
        compute_started = self.env.now
        stage_ids = self.registry.stage_ids
        n = len(stage_ids)
        if self.decision_offload and agg_children:
            # Global only computes per-aggregator budgets; PSFA over the
            # stages runs at the aggregators (§VI decision offloading).
            stage_limits, metadata_limits = np.zeros(0), None
            yield self._execute(
                cm.compute_fixed_s + len(agg_children) * cm.psfa_per_stage_s
            )
        else:
            per_stage_cost = (
                cm.psfa_per_stage_hier_s if agg_children else cm.psfa_per_stage_s
            )
            stage_limits, metadata_limits = self._compute_allocations(stage_ids)
            if metadata_limits is not None:
                # Differentiated QoS runs the algorithm once per class.
                per_stage_cost *= 2
            yield self._execute(cm.compute_fixed_s + n * per_stage_cost)
        t_compute = self.env.now - compute_started

        # ---- enforce ----
        enforce_started = self.env.now
        enforce_deadline = (
            enforce_started + self.collect_timeout_s
            if self.collect_timeout_s
            else None
        )
        if self.decision_offload and agg_children:
            yield from self._enforce_offload(agg_children, epoch, enforce_deadline)
        else:
            if stage_children:
                yield from self._enforce_stages(
                    stage_children,
                    stage_limits,
                    epoch,
                    enforce_deadline,
                    metadata_limits,
                )
            if agg_children:
                yield from self._enforce_batches(
                    agg_children,
                    stage_limits,
                    epoch,
                    enforce_deadline,
                    metadata_limits,
                )
        t_enforce = self.env.now - enforce_started

        # Off-critical-path CPU this cycle (RPC workers, kernel, GC).
        bg_per_stage = (
            cm.bg_per_stage_global_hier_s if agg_children else cm.bg_per_stage_direct_s
        )
        self.host.charge(cm.bg_fixed_s + n * bg_per_stage)

        self.cycles.append(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=n,
                # Registered stages without a fresh report this epoch —
                # they rode at last-known demand (same semantics as the
                # live controllers' degraded-cycle accounting).
                n_missing=max(0, n - reported_stages),
                timed_out=got < expected,
            )
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "collect", started, t_collect, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "compute", compute_started, t_compute, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "enforce", enforce_started, t_enforce, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "cycle",
                started,
                self.env.now - started,
                epoch=epoch,
                n_stages=n,
            )

    # -- compute helpers -----------------------------------------------------
    def _columnar_ready(self, stage_ids: List[str]) -> bool:
        """Whether the columns still mirror the registry's orderings.

        The columnar result vector is in live-row order and its job
        reduction in first-occurrence-among-live-rows order; both must
        equal the registry's (enforce zips limits against
        ``registry.stage_ids``, and job order breaks water-fill ties).
        They track each other by construction, but a partial-job evict
        can reorder the registry's job view — fall back to the scalar
        gather (over the same columns) whenever they diverge. Checked
        once per (registry, columns) generation pair, not per cycle.
        """
        cols = self.window
        key = (self.registry.generation, cols.generation)
        cached = self._columnar_ok
        if cached is not None and cached[0] == key:
            return cached[1]
        ok = (
            tuple(stage_ids) == cols.active_ids()
            and self.registry.job_ids == cols.job_view()[0]
        )
        self._columnar_ok = (key, ok)
        return ok

    def _job_indices(self, stage_ids: List[str]) -> Tuple[List[str], np.ndarray]:
        """(job_ids, stage→job index vector), cached per registry generation."""
        gen = self.registry.generation
        if self._job_index_cache is not None and self._job_index_cache[0] == gen:
            return self._job_index_cache[1]
        job_ids = self.registry.job_ids
        job_pos = {j: i for i, j in enumerate(job_ids)}
        index = np.array(
            [job_pos[self.registry.job_of(s)] for s in stage_ids], dtype=np.intp
        )
        value = (job_ids, index)
        self._job_index_cache = (gen, value)
        return value

    def _compute_allocations(self, stage_ids: List[str]):
        """Run the control algorithm; returns per-stage IOPS limits.

        Returns ``(limits, metadata_limits)``: with an undifferentiated
        policy the first vector bounds *total* IOPS and the second is
        ``None``; with ``policy.metadata_capacity_iops`` set, the
        algorithm runs once per operation class against its own budget
        (the MDS and the OSS pool are separate bottlenecks).
        """
        if not stage_ids:
            return np.zeros(0), None
        if self._columnar_compute is not None and self._columnar_ready(stage_ids):
            return self._columnar_compute.allocations(
                self.policy, self.algorithm, self.metadata_algorithm
            )
        if not self.policy.differentiated:
            stage_demand = self.window.demands(stage_ids)
            total = self._allocate_vector(
                stage_ids, stage_demand, self.policy.allocatable_iops
            )
            return total, None
        data_demand = np.array(
            [
                self.latest_metrics[s].data_iops if s in self.latest_metrics else 0.0
                for s in stage_ids
            ]
        )
        metadata_demand = np.array(
            [
                self.latest_metrics[s].metadata_iops
                if s in self.latest_metrics
                else 0.0
                for s in stage_ids
            ]
        )
        axes = getattr(self.algorithm, "allocate_axes", None)
        if axes is not None:
            return self._allocate_axes_vector(
                stage_ids, data_demand, metadata_demand, axes
            )
        data = self._allocate_vector(
            stage_ids, data_demand, self.policy.allocatable_iops
        )
        # Per-job minimum guarantees are defined on total IOPS; they are
        # honoured on the data axis and not double-counted on metadata.
        metadata = self._allocate_vector(
            stage_ids,
            metadata_demand,
            self.policy.allocatable_metadata_iops,
            use_guarantees=False,
            algorithm=self.metadata_algorithm,
        )
        return data, metadata

    def _allocate_axes_vector(
        self,
        stage_ids: List[str],
        data_demand: np.ndarray,
        metadata_demand: np.ndarray,
        axes: Callable,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Both axes in one call, for brains with ``allocate_axes``
        (the PADLL-style throttler couples them via per-tenant caps)."""
        job_ids, job_index = self._job_indices(stage_ids)
        n_jobs = len(job_ids)
        job_data = np.zeros(n_jobs)
        np.add.at(job_data, job_index, data_demand)
        job_meta = np.zeros(n_jobs)
        np.add.at(job_meta, job_index, metadata_demand)
        weights = self.policy.weights(job_ids)
        data_res, meta_res = axes(
            job_data,
            job_meta,
            weights,
            self.policy.allocatable_iops,
            self.policy.allocatable_metadata_iops,
            guarantees=self.policy.guarantees(job_ids),
        )
        data = self._split_to_stages(
            data_demand, job_data, data_res.allocations, job_index, n_jobs
        )
        metadata = self._split_to_stages(
            metadata_demand, job_meta, meta_res.allocations, job_index, n_jobs
        )
        return data, metadata

    @staticmethod
    def _split_to_stages(
        stage_demand: np.ndarray,
        job_demand: np.ndarray,
        job_alloc: np.ndarray,
        job_index: np.ndarray,
        n_jobs: int,
    ) -> np.ndarray:
        """Split each job's grant across its stages, demand-proportionally;
        stages of an idle job share its (zero) grant equally."""
        denom = np.where(job_demand > 0, job_demand, 1.0)
        share = np.where(
            job_demand[job_index] > 0,
            stage_demand / denom[job_index],
            1.0
            / np.maximum(np.bincount(job_index, minlength=n_jobs), 1)[job_index],
        )
        return job_alloc[job_index] * share

    def _allocate_vector(
        self,
        stage_ids: List[str],
        stage_demand: np.ndarray,
        capacity: float,
        use_guarantees: bool = True,
        algorithm: Optional[ControlAlgorithm] = None,
    ) -> np.ndarray:
        """Job-level allocation of ``capacity``, split back to stages."""
        job_ids, job_index = self._job_indices(stage_ids)
        job_demand = np.zeros(len(job_ids))
        np.add.at(job_demand, job_index, stage_demand)
        weights = self.policy.weights(job_ids)
        guarantees = self.policy.guarantees(job_ids) if use_guarantees else None
        algo = algorithm if algorithm is not None else self.algorithm
        result = algo.allocate(job_demand, weights, capacity, guarantees)
        return self._split_to_stages(
            stage_demand, job_demand, result.allocations, job_index, len(job_ids)
        )

    # -- enforce helpers --------------------------------------------------------
    def _enforce_stages(
        self,
        stage_children: List[ChildChannel],
        stage_limits: np.ndarray,
        epoch: int,
        deadline: Optional[float],
        metadata_limits: Optional[np.ndarray] = None,
    ) -> Generator:
        stage_ids = self.registry.stage_ids
        limit_of = dict(zip(stage_ids, stage_limits))
        meta_of = (
            dict(zip(stage_ids, metadata_limits))
            if metadata_limits is not None
            else None
        )
        cm = self.costs

        def build_rule(stage_id: str) -> EnforcementRule:
            return EnforcementRule(
                stage_id=stage_id,
                epoch=epoch,
                data_iops_limit=float(limit_of.get(stage_id, 0.0)),
                metadata_iops_limit=(
                    float(meta_of.get(stage_id, 0.0))
                    if meta_of is not None
                    else float("inf")
                ),
            )

        targets = stage_children
        if self.enforce_changed_only:
            from repro.core.rules import diff_rules

            candidates = [build_rule(ch.child_id) for ch in stage_children]
            changed_ids = {
                r.stage_id
                for r in diff_rules(
                    self.latest_rules, candidates, self.rule_change_tolerance
                )
            }
            targets = [ch for ch in stage_children if ch.child_id in changed_ids]
            self.rules_suppressed += len(stage_children) - len(targets)
            # Rule-building effort for suppressed rules is still paid (the
            # diff needs the candidate values), without the wire costs.
            skipped = len(stage_children) - len(targets)
            if skipped:
                yield self._execute(skipped * cm.rule_build_s)

        def payload(ch: ChildChannel):
            rule = build_rule(ch.child_id)
            self.latest_rules[ch.child_id] = rule
            return (epoch, rule)

        sent = yield from self._send_all(
            targets,
            "rule",
            payload,
            lambda ch: cm.rule_bytes,
            cm.rule_build_s + cm.tx_rule_s,
        )
        yield from self._await_replies(
            sent,
            epoch,
            {"rule_ack": cm.rx_ack_s},
            lambda msg: None,
            deadline,
        )

    def _enforce_batches(
        self,
        agg_children: List[ChildChannel],
        stage_limits: np.ndarray,
        epoch: int,
        deadline: Optional[float],
        metadata_limits: Optional[np.ndarray] = None,
    ) -> Generator:
        stage_ids = self.registry.stage_ids
        limit_of = dict(zip(stage_ids, stage_limits))
        meta_of = (
            dict(zip(stage_ids, metadata_limits))
            if metadata_limits is not None
            else None
        )
        cm = self.costs
        # Building every per-stage rule happens at the global controller
        # even in the hierarchical design (paper §IV-B: the global
        # controller "must calculate rules for all data plane stages").
        total_stages = sum(ch.n_stages for ch in agg_children)
        yield self._execute(total_stages * cm.rule_build_hier_s)

        def payload(ch: ChildChannel):
            rules = tuple(
                EnforcementRule(
                    stage_id=s,
                    epoch=epoch,
                    data_iops_limit=float(limit_of.get(s, 0.0)),
                    metadata_iops_limit=(
                        float(meta_of.get(s, 0.0))
                        if meta_of is not None
                        else float("inf")
                    ),
                )
                for s in ch.stage_ids
            )
            for rule in rules:
                self.latest_rules[rule.stage_id] = rule
            return (epoch, RuleBatch(ch.child_id, epoch, rules))

        sent = yield from self._send_all(
            agg_children,
            "rule_batch",
            payload,
            lambda ch: cm.rule_batch_header_bytes
            + ch.n_stages * cm.rule_batch_entry_bytes,
            cm.tx_batch_s,
        )
        yield from self._await_replies(
            sent,
            epoch,
            {"batch_ack": cm.rx_agg_ack_s},
            lambda msg: None,
            deadline,
        )

    def _enforce_offload(
        self,
        agg_children: List[ChildChannel],
        epoch: int,
        deadline: Optional[float],
    ) -> Generator:
        """Ship per-aggregator budgets; aggregators run PSFA locally (§VI)."""
        cm = self.costs
        # Budget split: water-fill capacity over per-partition total demand.
        from repro.core.algorithms.psfa import weighted_waterfill

        part_demand = np.array(
            [
                sum(self.window.demand(s) for s in ch.stage_ids)
                for ch in agg_children
            ]
        )
        weights = np.ones(len(agg_children))
        budgets = weighted_waterfill(
            part_demand, weights, self.policy.allocatable_iops
        )
        leftover = self.policy.allocatable_iops - budgets.sum()
        if leftover > 0 and len(agg_children):
            budgets = budgets + leftover / len(agg_children)
        budget_of = {
            ch.child_id: float(b) for ch, b in zip(agg_children, budgets)
        }
        sent = yield from self._send_all(
            agg_children,
            "budget_grant",
            lambda ch: (epoch, budget_of[ch.child_id]),
            lambda ch: cm.agg_request_bytes,
            cm.tx_request_s,
        )
        yield from self._await_replies(
            sent,
            epoch,
            {"budget_ack": cm.rx_agg_ack_s},
            lambda msg: None,
            deadline,
        )

    # -- reporting ----------------------------------------------------------------
    def stats(self, warmup: int = 1):
        """Cycle statistics (drops ``warmup`` leading cycles)."""
        from repro.core.cycle import CycleStats

        return CycleStats(self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0)))


class AggregatorController(_ControllerBase):
    """The intermediate control level of the hierarchical design.

    Reacts to the global controller's requests; owns a partition of stages
    (or, in deeper hierarchies, a set of child aggregators).
    """

    def __init__(
        self,
        env: Environment,
        host: SimHost,
        endpoint: Endpoint,
        agg_id: str,
        costs: CostModel = FRONTERA_COST_MODEL,
        policy: Optional[QoSPolicy] = None,
        algorithm: Optional[ControlAlgorithm] = None,
        span_tracer=None,
    ) -> None:
        super().__init__(env, host, endpoint, costs, agg_id)
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.agg_id = agg_id
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.children: List[ChildChannel] = []
        self.stage_jobs: Dict[str, str] = {}
        self.latest_reports: Dict[str, StageMetrics] = {}
        self.cycles_served = 0
        self._proc: Optional[Process] = None
        host.allocate(costs.agg_fixed_mem)

    # -- membership ---------------------------------------------------------
    def add_stage(self, stage_id: str, job_id: str, channel: ChildChannel) -> None:
        self.children.append(channel)
        self.stage_jobs[stage_id] = job_id
        self.host.allocate(self.costs.agg_per_stage_mem)

    def add_child_aggregator(self, channel: ChildChannel, stage_jobs: Mapping[str, str]) -> None:
        """Attach a lower-level aggregator (three-level hierarchies)."""
        self.children.append(channel)
        for stage_id in channel.stage_ids:
            self.stage_jobs[stage_id] = stage_jobs[stage_id]
            self.host.allocate(self.costs.agg_per_stage_mem)

    @property
    def stage_ids(self) -> Tuple[str, ...]:
        out: List[str] = []
        for ch in self.children:
            if ch.kind == "stage":
                out.append(ch.child_id)
            else:
                out.extend(ch.stage_ids)
        return tuple(out)

    @property
    def n_stages(self) -> int:
        return sum(ch.n_stages for ch in self.children)

    # -- main loop -----------------------------------------------------------
    def start(self) -> Process:
        """Start serving requests from the level above."""
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError(f"{self.agg_id} already running")
        self._proc = self.env.process(self._serve(), name=f"{self.agg_id}.serve")
        return self._proc

    def stop(self) -> None:
        """Crash/stop the aggregator (failure injection)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _serve(self) -> Generator:
        from repro.simnet.engine import Interrupt

        try:
            while True:
                msg = yield self.endpoint.recv()
                conn = self.endpoint.connections.get(msg.sender)
                if conn is None:
                    self.stale_messages += 1
                    continue
                if msg.kind == "agg_collect_req":
                    yield from self._collect(msg.payload, conn)
                elif msg.kind == "rule_batch":
                    yield from self._distribute(msg.payload, conn)
                elif msg.kind == "budget_grant":
                    yield from self._offloaded_cycle(msg.payload, conn)
                else:
                    self.stale_messages += 1
        except Interrupt:
            return

    # -- collect ---------------------------------------------------------------
    def _collect(self, epoch: int, uplink: Connection) -> Generator:
        cm = self.costs
        self.cycles_served += 1
        started = self.env.now
        stage_children = [c for c in self.children if c.kind == "stage"]
        agg_children = [c for c in self.children if c.kind == "aggregator"]
        expected = 0
        if stage_children:
            expected += yield from self._send_all(
                stage_children,
                "collect_req",
                lambda ch: epoch,
                lambda ch: cm.request_bytes,
                cm.tx_request_s,
            )
        if agg_children:
            expected += yield from self._send_all(
                agg_children,
                "agg_collect_req",
                lambda ch: epoch,
                lambda ch: cm.agg_request_bytes,
                cm.tx_request_s,
            )

        reports: List[StageMetrics] = []

        def on_report(msg) -> None:
            _, data = msg.payload
            if isinstance(data, AggregatedMetrics):
                for i, stage_id in enumerate(data.stage_ids):
                    reports.append(
                        StageMetrics(
                            stage_id=stage_id,
                            job_id=data.job_ids[i],
                            data_iops=data.data_iops[i],
                            metadata_iops=data.metadata_iops[i],
                            timestamp=data.timestamp,
                        )
                    )
            else:
                reports.append(data)

        agg_entry_cost = cm.rx_agg_reply_fixed_s
        if agg_children:
            mean_part = sum(c.n_stages for c in agg_children) / len(agg_children)
            agg_entry_cost += mean_part * cm.rx_agg_entry_s
        yield from self._await_replies(
            expected,
            epoch,
            {
                "metrics_reply": cm.rx_reply_s + cm.agg_merge_s,
                "agg_metrics_reply": agg_entry_cost,
            },
            on_report,
        )
        for r in reports:
            self.latest_reports[r.stage_id] = r

        # Summarize and reply upstream with the pre-merged report.
        yield self._execute(cm.agg_summarize_fixed_s)
        merged = aggregate(self.agg_id, reports, timestamp=self.env.now)
        size = (
            cm.agg_reply_header_bytes + merged.n_stages * cm.agg_reply_entry_bytes
        )
        uplink.send(self.endpoint, "agg_metrics_reply", (epoch, merged), size)
        # Background work for owning this partition's connections.
        self.host.charge(
            cm.bg_fixed_s + len(self.children) * cm.bg_per_stage_direct_s
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "collect",
                started,
                self.env.now - started,
                parent="cycle",
                epoch=epoch,
            )

    # -- enforce (rule distribution) ---------------------------------------------
    def _distribute(self, payload, uplink: Connection) -> Generator:
        epoch, batch = payload
        cm = self.costs
        started = self.env.now
        yield self._execute(len(batch) * cm.batch_unpack_s)
        rule_of = {rule.stage_id: rule for rule in batch}
        stage_children = [c for c in self.children if c.kind == "stage"]
        agg_children = [c for c in self.children if c.kind == "aggregator"]
        targets = [c for c in stage_children if c.child_id in rule_of]
        sent_rules = 0
        if targets:
            sent_rules = yield from self._send_all(
                targets,
                "rule",
                lambda ch: (epoch, rule_of[ch.child_id]),
                lambda ch: cm.rule_bytes,
                cm.tx_rule_s,
            )
        sub_targets = []
        for ch in agg_children:
            sub_rules = tuple(rule_of[s] for s in ch.stage_ids if s in rule_of)
            if sub_rules:
                sub_targets.append((ch, RuleBatch(ch.child_id, epoch, sub_rules)))
        for ch, sub_batch in sub_targets:
            yield self._execute(cm.tx_batch_s)
            ch.connection.send(
                ch.endpoint,
                "rule_batch",
                (epoch, sub_batch),
                cm.rule_batch_header_bytes
                + len(sub_batch) * cm.rule_batch_entry_bytes,
            )
        yield from self._await_replies(
            sent_rules + len(sub_targets),
            epoch,
            {"rule_ack": cm.rx_ack_s, "batch_ack": cm.rx_agg_ack_s},
            lambda msg: None,
        )
        uplink.send(self.endpoint, "batch_ack", epoch, cm.agg_ack_bytes)
        if self.tracer.enabled:
            self.tracer.emit(
                "enforce",
                started,
                self.env.now - started,
                parent="cycle",
                epoch=epoch,
            )

    # -- decision offload (§VI) ------------------------------------------------
    def _offloaded_cycle(self, payload, uplink: Connection) -> Generator:
        """Run PSFA locally over the partition against a granted budget."""
        epoch, budget = payload
        cm = self.costs
        if self.policy is None:
            raise RuntimeError(
                f"{self.agg_id}: decision offload requires a local policy copy"
            )
        reports = [
            self.latest_reports.get(s)
            for s in self.stage_ids
        ]
        known = [r for r in reports if r is not None]
        stage_ids = [r.stage_id for r in known]
        demands = np.array([r.total_iops for r in known])
        weights = self.policy.weights([r.job_id for r in known])
        yield self._execute(
            cm.compute_fixed_s + len(known) * cm.psfa_per_stage_s
        )
        if known and budget > 0:
            result = self.algorithm.allocate(demands, weights, budget)
            limits = result.allocations
        else:
            limits = np.zeros(len(known))
        rule_of = {
            s: EnforcementRule(stage_id=s, epoch=epoch, data_iops_limit=float(v))
            for s, v in zip(stage_ids, limits)
        }
        targets = [c for c in self.children if c.kind == "stage" and c.child_id in rule_of]
        if targets:
            sent = yield from self._send_all(
                targets,
                "rule",
                lambda ch: (epoch, rule_of[ch.child_id]),
                lambda ch: cm.rule_bytes,
                cm.rule_build_s + cm.tx_rule_s,
            )
            yield from self._await_replies(
                sent,
                epoch,
                {"rule_ack": cm.rx_ack_s},
                lambda msg: None,
            )
        uplink.send(self.endpoint, "budget_ack", epoch, cm.agg_ack_bytes)
