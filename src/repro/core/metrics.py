"""Metric records exchanged between stages and controllers.

The study's control loop collects two counters from every stage each cycle
(paper §III-C): the rate of **data** operations (read/write IOPS) and the
rate of **metadata** operations (open/stat/close per second) the stage is
currently submitting towards the PFS. Aggregator controllers merge many
stage records into one :class:`AggregatedMetrics` before forwarding, which
is what shrinks the global controller's receive path in the hierarchical
design.

Wire sizes are modelled separately in the cost model
(:mod:`repro.harness.calibration`); these classes carry the semantic
content only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AggregatedMetrics", "MetricsWindow", "StageMetrics", "UsageWindow"]


@dataclass(frozen=True)
class StageMetrics:
    """One stage's report for one control cycle."""

    stage_id: str
    job_id: str
    data_iops: float
    metadata_iops: float
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.data_iops < 0:
            raise ValueError(f"negative data_iops: {self.data_iops}")
        if self.metadata_iops < 0:
            raise ValueError(f"negative metadata_iops: {self.metadata_iops}")

    @property
    def total_iops(self) -> float:
        """Combined demand this stage currently submits to the PFS."""
        return self.data_iops + self.metadata_iops


@dataclass(frozen=True)
class AggregatedMetrics:
    """Pre-merged metrics for one aggregator's stage partition.

    Carries per-stage demand vectors in compact (array) form plus the
    per-job totals the aggregator already computed, so the global
    controller does per-entry work that is cheaper than parsing full
    :class:`StageMetrics` records (paper Obs. #7).
    """

    aggregator_id: str
    stage_ids: Tuple[str, ...]
    job_ids: Tuple[str, ...]
    data_iops: Tuple[float, ...]
    metadata_iops: Tuple[float, ...]
    job_totals: Dict[str, float]
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.stage_ids)
        if not (len(self.job_ids) == len(self.data_iops) == len(self.metadata_iops) == n):
            raise ValueError("aggregated metric vectors must have equal length")

    @property
    def n_stages(self) -> int:
        return len(self.stage_ids)

    @property
    def total_iops(self) -> float:
        return float(sum(self.data_iops) + sum(self.metadata_iops))


def aggregate(
    aggregator_id: str,
    reports: Sequence[StageMetrics],
    timestamp: float = 0.0,
) -> AggregatedMetrics:
    """Merge stage reports into one :class:`AggregatedMetrics`.

    Per-job totals are summed across the partition; per-stage vectors are
    preserved (the global controller needs them to compute per-stage rules,
    which is why hierarchical memory usage still scales with N).
    """
    job_totals: Dict[str, float] = {}
    for r in reports:
        job_totals[r.job_id] = job_totals.get(r.job_id, 0.0) + r.total_iops
    return AggregatedMetrics(
        aggregator_id=aggregator_id,
        stage_ids=tuple(r.stage_id for r in reports),
        job_ids=tuple(r.job_id for r in reports),
        data_iops=tuple(r.data_iops for r in reports),
        metadata_iops=tuple(r.metadata_iops for r in reports),
        job_totals=job_totals,
        timestamp=timestamp,
    )


class MetricsWindow:
    """A sliding window of recent demand per stage, for smoothing.

    Controllers may base PSFA demands on an exponentially weighted moving
    average instead of the instantaneous report, damping reaction to bursty
    workloads. ``alpha=1`` degenerates to "use the latest report", which is
    the paper's stress-test behaviour.

    The window sits on the per-cycle hot path of every controller, so it
    is allocation-lean: ``__slots__`` instances, the ``1 - alpha``
    complement precomputed once, and :meth:`demands` filling its array
    via ``np.fromiter`` instead of materialising an intermediate list.
    The built demand vector is also cached between reports: repeated
    :meth:`demands` calls over the same id sequence with no intervening
    :meth:`update` / :meth:`forget` / :meth:`adopt` return the same
    array object without touching the dict (callers must not mutate it).
    """

    __slots__ = ("alpha", "_decay", "_ewma", "_demands_cache")

    def __init__(self, alpha: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._decay = 1.0 - self.alpha
        self._ewma: Dict[str, float] = {}
        self._demands_cache: Optional[Tuple[Tuple[str, ...], np.ndarray]] = None

    def update(self, stage_id: str, demand: float) -> float:
        """Fold a new observation in; returns the smoothed demand."""
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        prev = self._ewma.get(stage_id)
        value = demand if prev is None else self.alpha * demand + self._decay * prev
        self._ewma[stage_id] = value
        self._demands_cache = None
        return value

    def update_many(self, reports: Iterable[StageMetrics]) -> None:
        for r in reports:
            self.update(r.stage_id, r.total_iops)

    def demand(self, stage_id: str) -> float:
        """Smoothed demand for a stage (0.0 if never reported)."""
        return self._ewma.get(stage_id, 0.0)

    def demands(self, stage_ids: Sequence[str]) -> np.ndarray:
        """Vector of smoothed demands in ``stage_ids`` order (cached).

        The array is reused verbatim while no observation has changed
        and the id sequence matches the last call — do not mutate it.
        """
        ids = stage_ids if isinstance(stage_ids, tuple) else tuple(stage_ids)
        cached = self._demands_cache
        if cached is not None and cached[0] == ids:
            return cached[1]
        get = self._ewma.get
        arr = np.fromiter(
            (get(s, 0.0) for s in ids), dtype=float, count=len(ids)
        )
        self._demands_cache = (ids, arr)
        return arr

    def forget(self, stage_id: str) -> None:
        """Drop state for a departed stage."""
        self._ewma.pop(stage_id, None)
        self._demands_cache = None

    def snapshot(self) -> Dict[str, float]:
        """Copy of the smoothed demands (hot-standby state transfer)."""
        return dict(self._ewma)

    def adopt(self, demands: Dict[str, float]) -> None:
        """Install demands for stages with no local observation.

        Used on hot-standby takeover: locally observed stages keep their
        own (fresher) smoothed value; stages the standby never heard from
        inherit the primary's last-known demand.
        """
        for stage_id, value in demands.items():
            self._ewma.setdefault(stage_id, value)
        self._demands_cache = None

    def __len__(self) -> int:
        return len(self._ewma)


class UsageWindow:
    """Asymmetric EWMA of *observed* usage per key, for trust scoring.

    Where :class:`MetricsWindow` smooths what stages *claim* to need,
    this window tracks what they were actually *granted and plausibly
    used* — the evidence base for demand clamping
    (:class:`repro.guard.trust.DemandClamp`). The smoothing is
    deliberately asymmetric: usage rises fast (``alpha_up``, so a
    legitimately ramping tenant un-caps within a cycle or two) but
    decays slowly (``alpha_down``, so one idle cycle doesn't collapse a
    tenant's trust to the floor).
    """

    __slots__ = ("alpha_up", "alpha_down", "_ewma")

    def __init__(self, alpha_up: float = 0.5, alpha_down: float = 0.1) -> None:
        if not 0.0 < alpha_up <= 1.0:
            raise ValueError(f"alpha_up must be in (0, 1]: {alpha_up}")
        if not 0.0 < alpha_down <= 1.0:
            raise ValueError(f"alpha_down must be in (0, 1]: {alpha_down}")
        self.alpha_up = float(alpha_up)
        self.alpha_down = float(alpha_down)
        self._ewma: Dict[str, float] = {}

    def observe(self, key: str, usage: float) -> float:
        """Fold one observation in; returns the smoothed usage."""
        if usage < 0:
            raise ValueError(f"negative usage: {usage}")
        prev = self._ewma.get(key)
        if prev is None:
            value = usage
        else:
            alpha = self.alpha_up if usage >= prev else self.alpha_down
            value = alpha * usage + (1.0 - alpha) * prev
        self._ewma[key] = value
        return value

    def value(self, key: str) -> float:
        """Smoothed usage for a key (0.0 if never observed)."""
        return self._ewma.get(key, 0.0)

    def forget(self, key: str) -> None:
        self._ewma.pop(key, None)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._ewma)

    def __len__(self) -> int:
        return len(self._ewma)
