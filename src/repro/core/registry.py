"""Stage and job membership tracked by controllers.

HPC environments are dynamic: jobs enter and leave continuously, each
bringing data-plane stages with them (paper §I, "static and uncoordinated
control" critique). The registry is the controller-side membership table:
which stages exist, which job each belongs to, and which controller
partition owns it. It supports the churn experiments (stages joining and
departing mid-run) and provides the stable orderings the vectorized
algorithms rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["RegistryError", "StageRecord", "StageRegistry", "partition_stages"]


class RegistryError(KeyError):
    """Raised on inconsistent membership operations."""


@dataclass(frozen=True)
class StageRecord:
    """One registered data-plane stage."""

    stage_id: str
    job_id: str
    host_name: str
    registered_at: float = 0.0


class StageRegistry:
    """Ordered membership table with job grouping.

    Iteration order is registration order, which gives every component —
    algorithms, rule builders, partitioners — one consistent stage
    ordering per epoch.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, StageRecord] = {}
        self._job_stages: Dict[str, List[str]] = {}
        self.generation = 0

    # -- membership ---------------------------------------------------------
    def register(self, record: StageRecord) -> None:
        """Add a stage; duplicate ids are an error."""
        if record.stage_id in self._stages:
            raise RegistryError(f"duplicate stage id: {record.stage_id!r}")
        self._stages[record.stage_id] = record
        self._job_stages.setdefault(record.job_id, []).append(record.stage_id)
        self.generation += 1

    def deregister(self, stage_id: str) -> StageRecord:
        """Remove a stage (job departure); unknown ids are an error."""
        record = self._stages.pop(stage_id, None)
        if record is None:
            raise RegistryError(f"unknown stage id: {stage_id!r}")
        job_list = self._job_stages[record.job_id]
        job_list.remove(stage_id)
        if not job_list:
            del self._job_stages[record.job_id]
        self.generation += 1
        return record

    def __contains__(self, stage_id: str) -> bool:
        return stage_id in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def get(self, stage_id: str) -> StageRecord:
        try:
            return self._stages[stage_id]
        except KeyError:
            raise RegistryError(f"unknown stage id: {stage_id!r}") from None

    # -- ordered views --------------------------------------------------------
    @property
    def stage_ids(self) -> List[str]:
        """All stage ids in registration order."""
        return list(self._stages)

    @property
    def job_ids(self) -> List[str]:
        """All job ids, ordered by first stage registration."""
        return list(self._job_stages)

    def stages_of(self, job_id: str) -> List[str]:
        """Stage ids of one job, in registration order."""
        try:
            return list(self._job_stages[job_id])
        except KeyError:
            raise RegistryError(f"unknown job id: {job_id!r}") from None

    def job_of(self, stage_id: str) -> str:
        return self.get(stage_id).job_id

    def records(self) -> List[StageRecord]:
        return list(self._stages.values())


def partition_stages(
    stage_ids: Sequence[str],
    n_partitions: int,
) -> List[List[str]]:
    """Split stages into ``n_partitions`` disjoint, contiguous subsets.

    Mirrors the paper's setup: each aggregator owns a disjoint set of
    stages, sized as evenly as possible (e.g. 4 aggregators x 2,500 stages
    for the 10,000-node experiment). Partitions differ in size by at most
    one stage.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1: {n_partitions}")
    if n_partitions > max(len(stage_ids), 1):
        raise ValueError(
            f"more partitions ({n_partitions}) than stages ({len(stage_ids)})"
        )
    n = len(stage_ids)
    base, extra = divmod(n, n_partitions)
    partitions: List[List[str]] = []
    start = 0
    for i in range(n_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(list(stage_ids[start : start + size]))
        start += size
    return partitions
