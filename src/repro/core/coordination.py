"""Coordinated flat control planes (paper §VI, future work).

The paper's Discussion proposes *flat designs with multiple controllers
that coordinate their actions ... while maintaining global visibility*.
:class:`PeerController` implements one such design:

1. **collect** — each peer collects metrics from its own stage partition
   (parallel across peers, like aggregators);
2. **exchange** — peers broadcast per-job demand summaries to every other
   peer and wait for all counterpart summaries (the coordination step —
   this is the new cost a hierarchy does not pay);
3. **compute** — every peer runs the control algorithm over the *global*
   demand vector (own stages in detail, remote jobs as totals), so all
   peers derive consistent allocations deterministically;
4. **enforce** — each peer pushes rules to its own partition only.

The exchange doubles as a barrier: a peer cannot start computing epoch
*e* before every other peer has finished collecting epoch *e*, so the
plane-level cycle latency is the slowest peer's path. The exchange is
folded into the *collect* phase when reporting, mirroring how the paper
attributes pre-compute communication.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.controller import ChildChannel, _ControllerBase
from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.cycle import ControlCycle
from repro.core.metrics import StageMetrics
from repro.core.policies import QoSPolicy
from repro.core.registry import StageRegistry, StageRecord
from repro.core.rules import EnforcementRule
from repro.obs.spans import NullSpanTracer
from repro.simnet.engine import Environment, Process
from repro.simnet.node import SimHost
from repro.simnet.transport import Connection, Endpoint

__all__ = ["PeerController", "merge_peer_cycles"]


class PeerController(_ControllerBase):
    """One member of a coordinated flat control plane."""

    def __init__(
        self,
        env: Environment,
        host: SimHost,
        endpoint: Endpoint,
        peer_id: str,
        policy: QoSPolicy,
        algorithm: Optional[ControlAlgorithm] = None,
        costs: CostModel = FRONTERA_COST_MODEL,
        span_tracer=None,
    ) -> None:
        super().__init__(env, host, endpoint, costs, peer_id)
        self.tracer = span_tracer if span_tracer is not None else NullSpanTracer()
        self.peer_id = peer_id
        self.policy = policy
        self.algorithm = algorithm or PSFA()
        self.registry = StageRegistry()
        self.children: List[ChildChannel] = []
        self.peer_connections: Dict[str, Connection] = {}
        self.cycles: List[ControlCycle] = []
        self.latest_metrics: Dict[str, StageMetrics] = {}
        self.remote_job_demand: Dict[str, float] = {}
        self.epoch = 0
        # Summaries from faster peers can land while this peer is still
        # collecting or enforcing; park them instead of dropping.
        self.defer_kinds = {"peer_summary"}
        host.allocate(costs.global_fixed_mem)

    # -- membership -----------------------------------------------------------
    def add_stage(self, stage_id: str, job_id: str, channel: ChildChannel) -> None:
        self.registry.register(
            StageRecord(stage_id, job_id, channel.endpoint.host.name, self.env.now)
        )
        self.children.append(channel)
        self.host.allocate(self.costs.flat_per_stage_mem)

    def add_peer(self, peer_id: str, connection: Connection) -> None:
        self.peer_connections[peer_id] = connection
        self.host.allocate(self.costs.per_agg_mem_at_global)

    # -- main loop -----------------------------------------------------------
    def run_cycles(self, n_cycles: int) -> Process:
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        if not self.peer_connections:
            raise RuntimeError("coordinated peer with no peers; use FlatControlPlane")
        return self.env.process(self._run(n_cycles), name=f"{self.peer_id}.loop")

    def _run(self, n_cycles: int) -> Generator:
        for _ in range(n_cycles):
            yield from self._cycle()

    def _cycle(self) -> Generator:
        self.epoch += 1
        epoch = self.epoch
        cm = self.costs
        started = self.env.now

        # ---- collect (own partition) ----
        sent = yield from self._send_all(
            self.children,
            "collect_req",
            lambda ch: epoch,
            lambda ch: cm.request_bytes,
            cm.tx_request_s,
        )

        def on_report(msg) -> None:
            _, report = msg.payload
            self.latest_metrics[report.stage_id] = report

        yield from self._await_replies(
            sent,
            epoch,
            {"metrics_reply": cm.rx_reply_s},
            on_report,
        )

        # ---- exchange (summary broadcast + barrier) ----
        own_jobs: Dict[str, float] = {}
        for stage_id in self.registry.stage_ids:
            report = self.latest_metrics.get(stage_id)
            if report is None:
                continue
            own_jobs[report.job_id] = own_jobs.get(report.job_id, 0.0) + report.total_iops
        summary_size = (
            cm.agg_reply_header_bytes + len(own_jobs) * cm.agg_reply_entry_bytes
        )
        for peer_id, conn in self.peer_connections.items():
            yield self._execute(cm.tx_batch_s)
            conn.send(self.endpoint, "peer_summary", (epoch, own_jobs), summary_size)

        remote: Dict[str, float] = {}

        def on_summary(msg) -> None:
            _, jobs = msg.payload
            for job_id, demand in jobs.items():
                remote[job_id] = remote.get(job_id, 0.0) + demand

        mean_jobs = max(len(own_jobs), 1)
        yield from self._await_replies(
            len(self.peer_connections),
            epoch,
            {
                "peer_summary": cm.rx_agg_reply_fixed_s
                + mean_jobs * cm.rx_agg_entry_s
            },
            on_summary,
        )
        self.remote_job_demand = remote
        t_collect = self.env.now - started

        # ---- compute (global vector, deterministic ordering) ----
        compute_started = self.env.now
        own_job_ids = self.registry.job_ids
        remote_job_ids = sorted(j for j in remote if j not in set(own_job_ids))
        all_jobs = own_job_ids + remote_job_ids
        demand = np.array(
            [own_jobs.get(j, remote.get(j, 0.0)) for j in all_jobs]
        )
        weights = self.policy.weights(all_jobs)
        guarantees = self.policy.guarantees(all_jobs)
        result = self.algorithm.allocate(
            demand, weights, self.policy.allocatable_iops, guarantees
        )
        alloc_of = dict(zip(all_jobs, result.allocations))
        yield self._execute(
            cm.compute_fixed_s
            + len(self.children) * cm.psfa_per_stage_s
            + len(remote_job_ids) * cm.psfa_per_stage_hier_s
        )
        t_compute = self.env.now - compute_started

        # ---- enforce (own partition) ----
        enforce_started = self.env.now
        limits: Dict[str, float] = {}
        for job_id in own_job_ids:
            stage_ids = self.registry.stages_of(job_id)
            demands = np.array(
                [
                    self.latest_metrics[s].total_iops
                    if s in self.latest_metrics
                    else 0.0
                    for s in stage_ids
                ]
            )
            total = demands.sum()
            grant = alloc_of.get(job_id, 0.0)
            if total > 0:
                shares = grant * demands / total
            else:
                shares = np.full(len(stage_ids), grant / max(len(stage_ids), 1))
            limits.update(zip(stage_ids, shares))

        def rule_payload(ch: ChildChannel):
            return (
                epoch,
                EnforcementRule(
                    stage_id=ch.child_id,
                    epoch=epoch,
                    data_iops_limit=float(limits.get(ch.child_id, 0.0)),
                ),
            )

        sent = yield from self._send_all(
            self.children,
            "rule",
            rule_payload,
            lambda ch: cm.rule_bytes,
            cm.rule_build_s + cm.tx_rule_s,
        )
        yield from self._await_replies(
            sent,
            epoch,
            {"rule_ack": cm.rx_ack_s},
            lambda msg: None,
        )
        t_enforce = self.env.now - enforce_started

        self.host.charge(
            cm.bg_fixed_s + len(self.children) * cm.bg_per_stage_direct_s
        )
        self.cycles.append(
            ControlCycle(
                epoch=epoch,
                started_at=started,
                collect_s=t_collect,
                compute_s=t_compute,
                enforce_s=t_enforce,
                n_stages=len(self.children),
            )
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "collect", started, t_collect, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "compute", compute_started, t_compute, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "enforce", enforce_started, t_enforce, parent="cycle", epoch=epoch
            )
            self.tracer.emit(
                "cycle",
                started,
                self.env.now - started,
                epoch=epoch,
                n_stages=len(self.children),
            )


def merge_peer_cycles(
    per_peer: List[List[ControlCycle]],
) -> List[ControlCycle]:
    """Plane-level cycles: per-epoch element-wise maximum across peers.

    The summary exchange makes peers rendezvous each epoch, so the slowest
    peer's phase durations bound the plane's effective control latency.
    """
    if not per_peer or not all(per_peer):
        return []
    n_epochs = min(len(cycles) for cycles in per_peer)
    merged: List[ControlCycle] = []
    for e in range(n_epochs):
        rows = [cycles[e] for cycles in per_peer]
        merged.append(
            ControlCycle(
                epoch=rows[0].epoch,
                started_at=min(r.started_at for r in rows),
                collect_s=max(r.collect_s for r in rows),
                compute_s=max(r.compute_s for r in rows),
                enforce_s=max(r.enforce_s for r in rows),
                n_stages=sum(r.n_stages for r in rows),
            )
        )
    return merged
