"""Control-cycle records and statistics.

A control cycle (paper footnote 1) is: *collect* metrics from all stages,
*compute* the control algorithm, *enforce* the resulting rules. The
latency of each phase, per cycle, is the paper's primary measurement
(Figs. 4–6); :class:`CycleStats` produces the averages and the breakdown
exactly as the figures report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["ControlCycle", "CycleStats", "PhaseBreakdown", "PHASES"]

#: Canonical phase names, in execution order.
PHASES = ("collect", "compute", "enforce")


@dataclass(frozen=True)
class ControlCycle:
    """Timing record of one completed control cycle (seconds).

    ``n_missing`` and ``timed_out`` describe *degraded* cycles: a cycle
    that proceeded on partial metrics because some children never
    replied (dead sockets, phase deadline). Both default to the healthy
    values, so records built by older callers are unchanged.
    """

    epoch: int
    started_at: float
    collect_s: float
    compute_s: float
    enforce_s: float
    n_stages: int
    n_missing: int = 0
    timed_out: bool = False

    def __post_init__(self) -> None:
        for name in ("collect_s", "compute_s", "enforce_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative phase duration: {name}")
        if self.n_missing < 0:
            raise ValueError(f"negative n_missing: {self.n_missing}")

    @property
    def degraded(self) -> bool:
        """True when the cycle ran on partial metrics or hit a deadline."""
        return self.n_missing > 0 or self.timed_out

    @property
    def total_s(self) -> float:
        return self.collect_s + self.compute_s + self.enforce_s

    def phase(self, name: str) -> float:
        return {
            "collect": self.collect_s,
            "compute": self.compute_s,
            "enforce": self.enforce_s,
        }[name]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Mean per-phase latencies (milliseconds), as plotted in Figs. 4–6."""

    collect_ms: float
    compute_ms: float
    enforce_ms: float

    @property
    def total_ms(self) -> float:
        return self.collect_ms + self.compute_ms + self.enforce_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "collect": self.collect_ms,
            "compute": self.compute_ms,
            "enforce": self.enforce_ms,
        }

    def fraction(self, phase: str) -> float:
        """Share of the cycle spent in ``phase`` (0..1)."""
        total = self.total_ms
        if total <= 0:
            return 0.0
        return self.as_dict()[phase] / total


class CycleStats:
    """Aggregates :class:`ControlCycle` records into reportable statistics."""

    def __init__(self, cycles: Sequence[ControlCycle], warmup: int = 0) -> None:
        if warmup < 0:
            raise ValueError(f"negative warmup: {warmup}")
        self.all_cycles: List[ControlCycle] = list(cycles)
        self.cycles = self.all_cycles[warmup:]
        self.warmup = warmup

    # -- scalar summaries ---------------------------------------------------
    def _totals_ms(self) -> np.ndarray:
        return np.array([c.total_s for c in self.cycles]) * 1e3

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def mean_ms(self) -> float:
        """Average control-cycle latency in milliseconds."""
        if not self.cycles:
            return 0.0
        return float(self._totals_ms().mean())

    @property
    def std_ms(self) -> float:
        if len(self.cycles) < 2:
            return 0.0
        return float(self._totals_ms().std(ddof=1))

    @property
    def relative_std(self) -> float:
        """Std/mean — the paper reports this below 6 % everywhere."""
        mean = self.mean_ms
        return self.std_ms / mean if mean > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.cycles:
            return 0.0
        return float(np.percentile(self._totals_ms(), q))

    # -- degraded-cycle accounting -------------------------------------------
    @property
    def degraded_cycles(self) -> int:
        """Cycles that ran on partial metrics or hit a phase deadline."""
        return sum(1 for c in self.cycles if c.degraded)

    @property
    def missing_total(self) -> int:
        """Total missing child replies across all (post-warmup) cycles."""
        return sum(c.n_missing for c in self.cycles)

    @property
    def timeout_cycles(self) -> int:
        """Cycles in which a collect/enforce deadline fired."""
        return sum(1 for c in self.cycles if c.timed_out)

    def phase_percentile_ms(self, phase: str, q: float) -> float:
        """Percentile of one phase's per-cycle latency (ms).

        Tail behaviour per phase matters for dependability work: a
        timeout-extended collect shows up here long before it moves the
        mean.
        """
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; choose from {PHASES}")
        if not self.cycles:
            return 0.0
        values = np.array([c.phase(phase) for c in self.cycles]) * 1e3
        return float(np.percentile(values, q))

    # -- phase breakdown -----------------------------------------------------
    def breakdown(self) -> PhaseBreakdown:
        """Mean per-phase latencies (ms), the bar segments of Figs. 4–6."""
        if not self.cycles:
            return PhaseBreakdown(0.0, 0.0, 0.0)
        collect = float(np.mean([c.collect_s for c in self.cycles])) * 1e3
        compute = float(np.mean([c.compute_s for c in self.cycles])) * 1e3
        enforce = float(np.mean([c.enforce_s for c in self.cycles])) * 1e3
        return PhaseBreakdown(collect, compute, enforce)

    def phase_mean_ms(self, phase: str) -> float:
        return self.breakdown().as_dict()[phase]

    def summary(self) -> Dict[str, float]:
        """Flat dict of every reported statistic (for tables/JSON)."""
        bd = self.breakdown()
        return {
            "cycles": float(self.n_cycles),
            "mean_ms": self.mean_ms,
            "std_ms": self.std_ms,
            "relative_std": self.relative_std,
            "p99_ms": self.percentile_ms(99.0),
            "collect_ms": bd.collect_ms,
            "compute_ms": bd.compute_ms,
            "enforce_ms": bd.enforce_ms,
            "collect_p99_ms": self.phase_percentile_ms("collect", 99.0),
            "enforce_p99_ms": self.phase_percentile_ms("enforce", 99.0),
            "degraded_cycles": float(self.degraded_cycles),
            "missing_total": float(self.missing_total),
        }
