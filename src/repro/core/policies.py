"""Storage QoS policies the control plane enforces.

A :class:`QoSPolicy` is the administrator-facing contract: the PFS-wide
operation budget, the priority classes jobs may be assigned to, and
optional per-job minimum guarantees. The control algorithm (PSFA or a
baseline) turns a policy plus the current demand vector into per-job
allocations each cycle.

Priority classes follow the Cheferd convention: a class is a *weight*, so a
``weight=4`` job receives 4x the share of a ``weight=1`` job when both are
backlogged — proportional sharing, not strict priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["DemandBoundPolicy", "PolicyError", "PriorityClass", "QoSPolicy"]


class PolicyError(ValueError):
    """Raised for inconsistent policy definitions."""


@dataclass(frozen=True)
class PriorityClass:
    """A named weight tier (e.g. interactive=8, batch=2, scavenger=1)."""

    name: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise PolicyError(f"class weight must be positive: {self.weight}")


#: Default tiers, mirroring common HPC charging categories.
DEFAULT_CLASSES: Dict[str, PriorityClass] = {
    "interactive": PriorityClass("interactive", 8.0),
    "normal": PriorityClass("normal", 4.0),
    "batch": PriorityClass("batch", 2.0),
    "scavenger": PriorityClass("scavenger", 1.0),
}


@dataclass
class QoSPolicy:
    """The cluster-wide storage QoS contract.

    Parameters
    ----------
    pfs_capacity_iops:
        Maximum operation rate the PFS sustains efficiently; set by the
        system administrator (paper §III-C).
    classes:
        Available priority classes by name.
    job_classes:
        Job id → class name. Unlisted jobs fall into ``default_class``.
    min_guarantee_iops:
        Optional per-job floors. The sum of floors must not exceed
        capacity (checked at construction and on every update).
    headroom_fraction:
        Fraction of capacity held back from allocation as a safety margin
        against burst overshoot between cycles (0 = allocate everything,
        the paper's setting).
    metadata_capacity_iops:
        Optional separate budget for metadata operations (the MDS is a
        distinct bottleneck from the OSSes — Cheferd's headline use case
        is metadata-intensive jobs). When set, the control algorithm runs
        twice per cycle, once per operation class, and rules carry both
        limits; when ``None`` (the paper's stress setup) a single combined
        budget governs total IOPS.
    """

    pfs_capacity_iops: float
    metadata_capacity_iops: Optional[float] = None
    classes: Dict[str, PriorityClass] = field(
        default_factory=lambda: dict(DEFAULT_CLASSES)
    )
    job_classes: Dict[str, str] = field(default_factory=dict)
    min_guarantee_iops: Dict[str, float] = field(default_factory=dict)
    default_class: str = "normal"
    headroom_fraction: float = 0.0
    #: Mutation counter, bumped by every in-place policy edit
    #: (:meth:`assign_job`, :meth:`set_guarantee`,
    #: :meth:`register_tenant`). Lets the columnar compute path cache
    #: derived weight/guarantee vectors and invalidate them only when
    #: the policy actually changed.
    version: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.pfs_capacity_iops <= 0:
            raise PolicyError(f"capacity must be positive: {self.pfs_capacity_iops}")
        if self.metadata_capacity_iops is not None and self.metadata_capacity_iops <= 0:
            raise PolicyError(
                f"metadata capacity must be positive: {self.metadata_capacity_iops}"
            )
        if self.default_class not in self.classes:
            raise PolicyError(f"unknown default class: {self.default_class!r}")
        if not 0.0 <= self.headroom_fraction < 1.0:
            raise PolicyError(f"headroom must be in [0, 1): {self.headroom_fraction}")
        for job, cls in self.job_classes.items():
            if cls not in self.classes:
                raise PolicyError(f"job {job!r} assigned unknown class {cls!r}")
        self._check_guarantees()

    def _check_guarantees(self) -> None:
        total = sum(self.min_guarantee_iops.values())
        if any(v < 0 for v in self.min_guarantee_iops.values()):
            raise PolicyError("negative minimum guarantee")
        if total > self.allocatable_iops:
            raise PolicyError(
                f"minimum guarantees ({total}) exceed allocatable capacity "
                f"({self.allocatable_iops})"
            )

    @property
    def allocatable_iops(self) -> float:
        """Capacity available for allocation after headroom."""
        return self.pfs_capacity_iops * (1.0 - self.headroom_fraction)

    @property
    def differentiated(self) -> bool:
        """True when data and metadata have separate budgets."""
        return self.metadata_capacity_iops is not None

    @property
    def allocatable_metadata_iops(self) -> float:
        """Metadata budget after headroom (0 when undifferentiated)."""
        if self.metadata_capacity_iops is None:
            return 0.0
        return self.metadata_capacity_iops * (1.0 - self.headroom_fraction)

    def assign_job(self, job_id: str, class_name: str) -> None:
        """Put ``job_id`` in ``class_name`` (takes effect next cycle)."""
        if class_name not in self.classes:
            raise PolicyError(f"unknown class: {class_name!r}")
        self.job_classes[job_id] = class_name
        self.version += 1

    def set_guarantee(self, job_id: str, iops: float) -> None:
        """Set a per-job minimum IOPS floor."""
        if iops < 0:
            raise PolicyError(f"negative guarantee: {iops}")
        self.min_guarantee_iops[job_id] = iops
        self._check_guarantees()
        self.version += 1

    def register_tenant(self, tenant_id: str, weight: float) -> str:
        """Create or update the per-tenant priority class; return its name.

        The service tier maps tenant quotas onto PSFA sharing weights by
        giving every tenant its own class: a ``weight=8`` tenant's jobs
        get 4x the backlogged share of a ``weight=2`` tenant's jobs.
        Re-registering with a new weight re-weights every job already in
        the class (takes effect next cycle, like any policy edit).
        """
        name = f"tenant:{tenant_id}"
        self.classes[name] = PriorityClass(name, float(weight))
        self.version += 1
        return name

    def admit_tenant_job(
        self, tenant_id: str, job_id: str, min_iops: float = 0.0
    ) -> None:
        """Assign ``job_id`` to its tenant's class, with an optional floor.

        The tenant must have been registered first (its class must
        exist); raises :class:`PolicyError` otherwise, so a lost tenant
        record can't silently demote jobs to the default class.
        """
        name = f"tenant:{tenant_id}"
        if name not in self.classes:
            raise PolicyError(f"unregistered tenant: {tenant_id!r}")
        self.assign_job(job_id, name)
        if min_iops > 0:
            self.set_guarantee(job_id, min_iops)

    def tenant_weights(self) -> Dict[str, float]:
        """Registered tenant id → PSFA weight (service-tier view)."""
        prefix = "tenant:"
        return {
            cls.name[len(prefix):]: cls.weight
            for cls in self.classes.values()
            if cls.name.startswith(prefix)
        }

    def weight_of(self, job_id: str) -> float:
        """The sharing weight of one job under this policy."""
        cls = self.job_classes.get(job_id, self.default_class)
        return self.classes[cls].weight

    def weights(self, job_ids) -> np.ndarray:
        """Weights for a sequence of job ids, as a vector."""
        return np.array([self.weight_of(j) for j in job_ids], dtype=float)

    def guarantees(self, job_ids) -> np.ndarray:
        """Minimum floors for a sequence of job ids, as a vector."""
        return np.array(
            [self.min_guarantee_iops.get(j, 0.0) for j in job_ids], dtype=float
        )


@dataclass(frozen=True)
class DemandBoundPolicy:
    """Stage-local demand clamp applied before reporting.

    OOOPS-style static throttling (paper §I, "static and uncoordinated
    control"): each stage caps what it even *asks* for. Used as a
    non-SDS baseline in the examples to show why coordinated control
    utilises the PFS better.
    """

    per_stage_cap_iops: float

    def __post_init__(self) -> None:
        if self.per_stage_cap_iops <= 0:
            raise PolicyError(f"cap must be positive: {self.per_stage_cap_iops}")

    def clamp(self, demand: float) -> float:
        return min(demand, self.per_stage_cap_iops)
