"""Deployable control-plane designs: flat, hierarchical, coordinated-flat.

This module wires controllers, virtual stages, hosts, and the network into
the exact deployments the paper evaluates:

* :class:`FlatControlPlane` (Fig. 2) — one global controller on its own
  compute node, directly connected to every stage. Bounded by the node's
  2,500-connection limit.
* :class:`HierarchicalControlPlane` (Fig. 3) — a global controller over
  ``n_aggregators`` aggregator controllers (each on its own node), each
  owning a disjoint partition of stages. Supports three-level trees and
  §VI decision offloading.
* :class:`CoordinatedFlatControlPlane` (§VI) — K peer controllers, each
  owning a partition, exchanging per-cycle summaries to retain global
  visibility without a root.

Stage placement follows the paper's methodology: ``stages_per_host``
virtual stages are co-located per simulated compute node (50 in the
study), but controllers treat each stage as if it were its own node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.algorithms.base import ControlAlgorithm
from repro.core.algorithms.psfa import PSFA
from repro.core.controller import AggregatorController, ChildChannel, GlobalController
from repro.core.coordination import PeerController, merge_peer_cycles
from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.cycle import CycleStats
from repro.core.policies import QoSPolicy
from repro.core.registry import partition_stages
from repro.dataplane.virtual_stage import ConstantSource, MetricSource, VirtualStage
from repro.monitoring.remora import RemoraReport, RemoraSession
from repro.obs.spans import SpanRecord, SpanTracer, sim_clock
from repro.simnet.engine import Environment
from repro.simnet.link import Link
from repro.simnet.node import SimHost
from repro.simnet.topology import Cluster, build_cluster
from repro.simnet.transport import Endpoint

__all__ = [
    "ControlPlaneConfig",
    "CoordinatedFlatControlPlane",
    "FlatControlPlane",
    "HierarchicalControlPlane",
]


def default_policy(n_stages: int) -> QoSPolicy:
    """The stress-test policy: uniform weights, capacity scaled to N.

    Capacity is ~60 % of aggregate stage demand so PSFA always has real
    work to do (some jobs saturated, some demand-limited).
    """
    return QoSPolicy(pfs_capacity_iops=max(n_stages, 1) * 750.0)


@dataclass
class ControlPlaneConfig:
    """Everything needed to stand up a control plane deployment.

    ``job_of(i)`` maps stage index to job id; the default gives each stage
    its own job, matching the paper's one-stage-per-node stress setup.
    ``source_factory(stage_id)`` builds each stage's metric source.
    """

    n_stages: int
    stages_per_host: int = 50
    policy: Optional[QoSPolicy] = None
    algorithm: Optional[ControlAlgorithm] = None
    costs: CostModel = FRONTERA_COST_MODEL
    link: Optional[Link] = None
    max_connections_per_host: int = 2500
    collect_timeout_s: Optional[float] = None
    enforce_changed_only: bool = False
    rule_change_tolerance: float = 0.0
    metrics_alpha: float = 1.0
    #: Cap reported demand at this multiple of capacity before PSFA runs
    #: (input sanitizer against demand-lying stages; None = trust inputs).
    demand_cap_factor: Optional[float] = None
    #: Record every control cycle as spans (sim-clock domain) exportable
    #: with :func:`repro.obs.chrome_trace.export_chrome_trace`.
    trace_spans: bool = False
    #: Back the global controller's per-stage state with
    #: :class:`repro.core.columnar.StageColumns` (flat float64 columns,
    #: vectorized compute gather). Allocation-identical to the scalar
    #: path — golden traces hold under either setting.
    columnar: bool = False
    job_of: Callable[[int], str] = field(default=lambda i: f"job-{i:05d}")
    source_factory: Callable[[str], MetricSource] = field(
        default=lambda stage_id: ConstantSource()
    )
    stage_cls: type = VirtualStage

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1: {self.n_stages}")
        if self.stages_per_host < 1:
            raise ValueError(
                f"stages_per_host must be >= 1: {self.stages_per_host}"
            )
        if self.policy is None:
            self.policy = default_policy(self.n_stages)
        if self.algorithm is None:
            self.algorithm = PSFA(max_demand_factor=self.demand_cap_factor)


class _DeployedPlane:
    """Common deployment state and measurement plumbing."""

    def __init__(self, env: Environment, cluster: Cluster, config: ControlPlaneConfig):
        self.env = env
        self.cluster = cluster
        self.config = config
        self.stages: List[VirtualStage] = []
        self.stage_hosts: List[SimHost] = []
        self.controller_hosts: Dict[str, SimHost] = {}
        self.global_controller: Optional[GlobalController] = None
        self.aggregators: List[AggregatorController] = []
        self.remora: Optional[RemoraSession] = None
        #: Root span tracer (sim clock) when ``config.trace_spans`` is set;
        #: controllers trace onto per-component tracks sharing its list.
        self.span_tracer: Optional[SpanTracer] = (
            SpanTracer(
                clock=sim_clock(env), track="global-ctrl", clock_domain="sim"
            )
            if config.trace_spans
            else None
        )

    @property
    def spans(self) -> List[SpanRecord]:
        """All spans recorded so far (empty unless ``trace_spans``)."""
        return self.span_tracer.spans if self.span_tracer is not None else []

    def _tracer_for(self, track: str):
        return (
            self.span_tracer.for_track(track)
            if self.span_tracer is not None
            else None
        )

    # -- construction helpers ------------------------------------------------
    def _build_stages(self) -> List[Endpoint]:
        """Create stage hosts and bind one virtual stage per endpoint."""
        cfg = self.config
        n_hosts = math.ceil(cfg.n_stages / cfg.stages_per_host)
        endpoints: List[Endpoint] = []
        for h in range(n_hosts):
            host = self.cluster.add_host(name=f"stagehost-{h:04d}")
            self.stage_hosts.append(host)
        for i in range(cfg.n_stages):
            host = self.stage_hosts[i // cfg.stages_per_host]
            stage_id = f"stage-{i:05d}"
            stage = cfg.stage_cls(
                self.env,
                stage_id,
                cfg.job_of(i),
                source=cfg.source_factory(stage_id),
                costs=cfg.costs,
            )
            endpoint = self.cluster.network.attach(host, stage_id)
            stage.bind(endpoint)
            self.stages.append(stage)
            endpoints.append(endpoint)
        return endpoints

    def _controller_host(self, name: str, system_slots: int = 8) -> SimHost:
        """A dedicated node for a controller.

        ``system_slots`` extra connection slots cover control-channel
        links between controllers (uplinks, peer mesh); the stage-facing
        limit stays at ``max_connections_per_host``.
        """
        host = self.cluster.add_host(name=name)
        self.cluster.network.reserve_system_slots(host, system_slots)
        self.controller_hosts[name] = host
        return host

    # -- running ------------------------------------------------------------------
    def run_stress(self, n_cycles: int, sample_interval_s: float = 0.25) -> None:
        """Run ``n_cycles`` back-to-back control cycles, sampling resources."""
        if self.global_controller is None:
            raise RuntimeError("plane not built")
        self.remora = RemoraSession(
            self.env,
            {name: host for name, host in self.controller_hosts.items()},
            interval_s=sample_interval_s,
        )
        self.remora.start()
        proc = self.global_controller.run_cycles(n_cycles)
        self.env.run(proc)
        self.remora.stop()

    def stats(self, warmup: int = 1) -> CycleStats:
        """Cycle-latency statistics measured at the global controller."""
        if self.global_controller is None:
            raise RuntimeError("plane not built")
        return self.global_controller.stats(warmup=warmup)

    def resource_report(self) -> RemoraReport:
        """Per-controller CPU/memory/network usage (Tables II–IV)."""
        if self.remora is None:
            raise RuntimeError("run_stress() first")
        return self.remora.report()


class FlatControlPlane(_DeployedPlane):
    """Single global controller directly managing every stage (Fig. 2)."""

    @classmethod
    def build(
        cls,
        config: ControlPlaneConfig,
        env: Optional[Environment] = None,
    ) -> "FlatControlPlane":
        env = env or Environment()
        cluster = build_cluster(
            env,
            0,
            link=config.link,
            max_connections_per_host=config.max_connections_per_host,
        )
        plane = cls(env, cluster, config)
        stage_endpoints = plane._build_stages()

        # No control-channel links in the flat design: the stage-facing
        # connection limit applies in full (this is Observation #2).
        ctrl_host = plane._controller_host("global-ctrl", system_slots=0)
        ctrl_endpoint = cluster.network.attach(ctrl_host, "controller")
        controller = GlobalController(
            env,
            ctrl_host,
            ctrl_endpoint,
            policy=config.policy,
            algorithm=config.algorithm,
            costs=config.costs,
            collect_timeout_s=config.collect_timeout_s,
            enforce_changed_only=config.enforce_changed_only,
            rule_change_tolerance=config.rule_change_tolerance,
            metrics_alpha=config.metrics_alpha,
            columnar=config.columnar,
            span_tracer=plane._tracer_for("global-ctrl"),
        )
        # One connection per stage: this is where the 2,500-connection
        # NIC limit bites (ConnectionLimitExceeded beyond it).
        for i, (stage, ep) in enumerate(zip(plane.stages, stage_endpoints)):
            conn = cluster.network.connect(ctrl_endpoint, ep)
            controller.add_stage(
                stage.stage_id,
                stage.job_id,
                ChildChannel(stage.stage_id, "stage", conn, ctrl_endpoint),
            )
        plane.global_controller = controller
        return plane


class HierarchicalControlPlane(_DeployedPlane):
    """Global controller + aggregator level(s) (Fig. 3).

    ``levels=2`` is the paper's design (global → aggregators → stages).
    ``levels=3`` inserts a second aggregator tier: the global controller
    talks to ``n_aggregators`` top aggregators, each of which manages
    ``fanout`` sub-aggregators that own the stage partitions.
    """

    @classmethod
    def build(
        cls,
        config: ControlPlaneConfig,
        n_aggregators: int,
        env: Optional[Environment] = None,
        decision_offload: bool = False,
        levels: int = 2,
        fanout: int = 2,
    ) -> "HierarchicalControlPlane":
        if n_aggregators < 1:
            raise ValueError(f"n_aggregators must be >= 1: {n_aggregators}")
        if levels not in (2, 3):
            raise ValueError(f"levels must be 2 or 3: {levels}")
        env = env or Environment()
        cluster = build_cluster(
            env,
            0,
            link=config.link,
            max_connections_per_host=config.max_connections_per_host,
        )
        plane = cls(env, cluster, config)
        stage_endpoints = plane._build_stages()
        by_id = {ep.name.split("/")[-1]: (st, ep) for st, ep in zip(plane.stages, stage_endpoints)}
        stage_ids = [s.stage_id for s in plane.stages]
        stage_jobs = {s.stage_id: s.job_id for s in plane.stages}

        ctrl_host = plane._controller_host("global-ctrl")
        ctrl_endpoint = cluster.network.attach(ctrl_host, "controller")
        controller = GlobalController(
            env,
            ctrl_host,
            ctrl_endpoint,
            policy=config.policy,
            algorithm=config.algorithm,
            costs=config.costs,
            collect_timeout_s=config.collect_timeout_s,
            decision_offload=decision_offload,
            enforce_changed_only=config.enforce_changed_only,
            rule_change_tolerance=config.rule_change_tolerance,
            metrics_alpha=config.metrics_alpha,
            columnar=config.columnar,
            span_tracer=plane._tracer_for("global-ctrl"),
        )

        partitions = partition_stages(stage_ids, n_aggregators)

        def build_aggregator(
            agg_id: str, owned: Sequence[str], level: int
        ) -> AggregatorController:
            host = plane._controller_host(agg_id)
            endpoint = cluster.network.attach(host, agg_id)
            agg = AggregatorController(
                env,
                host,
                endpoint,
                agg_id,
                costs=config.costs,
                policy=config.policy if decision_offload else None,
                algorithm=PSFA() if decision_offload else None,
                span_tracer=plane._tracer_for(agg_id),
            )
            if level >= 3 and len(owned) >= fanout:
                sub_parts = partition_stages(list(owned), fanout)
                for j, sub_owned in enumerate(sub_parts):
                    sub = build_aggregator(f"{agg_id}.{j}", sub_owned, level - 1)
                    conn = cluster.network.connect(endpoint, sub.endpoint)
                    agg.add_child_aggregator(
                        ChildChannel(
                            sub.agg_id,
                            "aggregator",
                            conn,
                            endpoint,
                            stage_ids=tuple(sub_owned),
                        ),
                        stage_jobs,
                    )
            else:
                for stage_id in owned:
                    stage, ep = by_id[stage_id]
                    conn = cluster.network.connect(endpoint, ep)
                    agg.add_stage(
                        stage_id,
                        stage.job_id,
                        ChildChannel(stage_id, "stage", conn, endpoint),
                    )
            agg.start()
            plane.aggregators.append(agg)
            return agg

        for a, owned in enumerate(partitions):
            agg = build_aggregator(f"aggregator-{a:02d}", owned, levels)
            conn = cluster.network.connect(ctrl_endpoint, agg.endpoint)
            controller.add_aggregator(
                ChildChannel(
                    agg.agg_id,
                    "aggregator",
                    conn,
                    ctrl_endpoint,
                    stage_ids=tuple(owned),
                ),
                stage_jobs,
            )
        plane.global_controller = controller
        return plane

    def aggregator_hosts(self) -> List[SimHost]:
        return [a.host for a in self.aggregators]


class CoordinatedFlatControlPlane(_DeployedPlane):
    """K coordinating peer controllers, each owning a stage partition (§VI).

    Each cycle every peer collects its partition, exchanges per-job demand
    summaries with all other peers, runs the control algorithm over the
    *global* demand vector, and enforces rules on its own partition. The
    plane's cycle latency is the slowest peer's (they rendezvous on the
    summary exchange).
    """

    def __init__(self, env, cluster, config):
        super().__init__(env, cluster, config)
        self.peers: List[PeerController] = []

    @classmethod
    def build(
        cls,
        config: ControlPlaneConfig,
        n_controllers: int,
        env: Optional[Environment] = None,
    ) -> "CoordinatedFlatControlPlane":
        if n_controllers < 2:
            raise ValueError(
                f"a coordinated plane needs >= 2 controllers: {n_controllers}"
            )
        env = env or Environment()
        cluster = build_cluster(
            env,
            0,
            link=config.link,
            max_connections_per_host=config.max_connections_per_host,
        )
        plane = cls(env, cluster, config)
        stage_endpoints = plane._build_stages()
        stage_ids = [s.stage_id for s in plane.stages]
        by_id = dict(zip(stage_ids, zip(plane.stages, stage_endpoints)))
        partitions = partition_stages(stage_ids, n_controllers)

        for k, owned in enumerate(partitions):
            host = plane._controller_host(
                f"peer-ctrl-{k:02d}", system_slots=max(8, n_controllers)
            )
            endpoint = cluster.network.attach(host, f"peer-{k:02d}")
            peer = PeerController(
                env,
                host,
                endpoint,
                peer_id=f"peer-{k:02d}",
                policy=config.policy,
                algorithm=config.algorithm,
                costs=config.costs,
                span_tracer=plane._tracer_for(f"peer-ctrl-{k:02d}"),
            )
            for stage_id in owned:
                stage, ep = by_id[stage_id]
                conn = cluster.network.connect(endpoint, ep)
                peer.add_stage(
                    stage_id,
                    stage.job_id,
                    ChildChannel(stage_id, "stage", conn, endpoint),
                )
            plane.peers.append(peer)

        # Full mesh between peers for the summary exchange.
        for i in range(len(plane.peers)):
            for j in range(i + 1, len(plane.peers)):
                a, b = plane.peers[i], plane.peers[j]
                conn = cluster.network.connect(a.endpoint, b.endpoint)
                a.add_peer(b.peer_id, conn)
                b.add_peer(a.peer_id, conn)
        return plane

    def run_stress(self, n_cycles: int, sample_interval_s: float = 0.25) -> None:
        self.remora = RemoraSession(
            self.env,
            dict(self.controller_hosts),
            interval_s=sample_interval_s,
        )
        self.remora.start()
        procs = [p.run_cycles(n_cycles) for p in self.peers]
        for proc in procs:
            self.env.run(proc)
        self.remora.stop()

    def stats(self, warmup: int = 1) -> CycleStats:
        """Plane-level stats: per-epoch maximum across peers."""
        merged = merge_peer_cycles([p.cycles for p in self.peers])
        return CycleStats(merged, warmup=min(warmup, max(len(merged) - 1, 0)))
