"""Controller failure injection (paper §VI, dependability).

The paper's future work highlights control-plane dependability: a failed
controller does not take the storage offline — stages keep enforcing the
last rules they received — but policy enforcement degrades until
recovery. This module injects exactly those faults into a running
simulation:

* :func:`crash_aggregator` — stops an aggregator's serve loop for a
  downtime window, then restarts it. With a ``collect_timeout_s`` set on
  the global controller, cycles continue with partial metrics; without
  one, the control plane stalls (both behaviours are tested).
* :func:`crash_stage` — makes a stage drop all traffic for a window
  (node failure / network partition). Messages sent to it are lost.
* :class:`FailureLog` — records injected events for assertions.

Stage-side guarantees under failure are provided by the epoch check in
:class:`~repro.dataplane.virtual_stage.VirtualStage`: late or replayed
rules never roll a stage's limit backwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.controller import AggregatorController
from repro.dataplane.virtual_stage import VirtualStage
from repro.simnet.engine import Environment

__all__ = ["FailureEvent", "FailureLog", "crash_aggregator", "crash_stage"]


@dataclass(frozen=True)
class FailureEvent:
    """One injected fault or recovery."""

    time: float
    target: str
    action: str  # "crash" | "recover"


@dataclass
class FailureLog:
    """Chronological record of injected failures."""

    events: List[FailureEvent] = field(default_factory=list)

    def record(self, time: float, target: str, action: str) -> None:
        self.events.append(FailureEvent(time, target, action))

    def crashes(self) -> List[FailureEvent]:
        return [e for e in self.events if e.action == "crash"]

    def recoveries(self) -> List[FailureEvent]:
        return [e for e in self.events if e.action == "recover"]


def crash_aggregator(
    env: Environment,
    aggregator: AggregatorController,
    at: float,
    downtime: float,
    log: Optional[FailureLog] = None,
) -> FailureLog:
    """Schedule a crash of ``aggregator`` at ``at`` for ``downtime`` seconds.

    While down, the aggregator's serve loop is stopped; requests pile up in
    its inbox. On recovery the loop restarts and drains them — replies for
    finished epochs are discarded as stale by the global controller.
    """
    if at < env.now:
        raise ValueError(f"crash time {at} in the simulated past")
    if downtime <= 0:
        raise ValueError(f"downtime must be positive: {downtime}")
    log = log if log is not None else FailureLog()

    def down() -> None:
        aggregator.stop()
        log.record(env.now, aggregator.agg_id, "crash")

    def up() -> None:
        aggregator.start()
        log.record(env.now, aggregator.agg_id, "recover")

    env.call_at(at, down)
    env.call_at(at + downtime, up)
    return log


def crash_stage(
    env: Environment,
    stage: VirtualStage,
    at: float,
    downtime: float,
    log: Optional[FailureLog] = None,
) -> FailureLog:
    """Make ``stage`` unreachable during ``[at, at + downtime)``.

    Incoming messages are counted as dropped; the controller sees missing
    replies (and needs a collect timeout to make progress).
    """
    if at < env.now:
        raise ValueError(f"crash time {at} in the simulated past")
    if downtime <= 0:
        raise ValueError(f"downtime must be positive: {downtime}")
    log = log if log is not None else FailureLog()
    if stage.endpoint is None:
        raise RuntimeError(f"stage {stage.stage_id} is not bound to an endpoint")
    original_handler = stage.endpoint.handler
    dropped = {"count": 0}

    def black_hole(message, connection) -> None:
        dropped["count"] += 1

    def down() -> None:
        stage.endpoint.set_handler(black_hole)
        log.record(env.now, stage.stage_id, "crash")

    def up() -> None:
        stage.endpoint.set_handler(original_handler)
        log.record(env.now, stage.stage_id, "recover")

    env.call_at(at, down)
    env.call_at(at + downtime, up)
    return log
