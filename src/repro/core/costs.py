"""Controller/stage cost model: CPU, wire, and memory constants.

The simulator runs the *actual* control-plane protocol; this module
supplies the per-operation costs that turn protocol steps into simulated
time, bytes, and resident memory. The defaults
(:data:`FRONTERA_COST_MODEL`) are calibrated against every number the
paper reports for Frontera (latencies of Figs. 4–6, resource usage of
Tables II–IV); :mod:`repro.harness.calibration` contains the analytic
predictors and the least-squares fitting code that produced them, so the
model can be recalibrated to a different machine.

Cost taxonomy
-------------
*Critical-path CPU* — work serialized on the controller's event loop that
directly lengthens the control cycle (message serialization/parsing, rule
building, the PSFA sweep).

*Background CPU* — work the controller's node performs off the critical
path (kernel/NIC interrupts, RPC worker threads, memory management). It
does not extend cycle latency but dominates the CPU-% columns of
Tables II–IV: a controller that owns N stage connections burns roughly
76 µs of background core-time per stage per cycle.

*Wire sizes* — bytes per message kind; the MB/s columns are emergent
(bytes per cycle / cycle latency).

*Memory* — per-stage controller state (policy, last metrics, rule history,
connection buffers). Flat global state is the heaviest (~450 KB/stage,
Table II); hierarchical global keeps ~347 KB/stage with ~5 MB per
aggregator; aggregators keep a light ~60 KB/stage record (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict

__all__ = ["CostModel", "FRONTERA_COST_MODEL"]

_KB = 1024
_MB = 1024 * 1024


@dataclass(frozen=True)
class CostModel:
    """Every constant the simulated control plane charges against.

    All times in seconds, sizes in bytes. See module docstring for the
    taxonomy and calibration provenance.
    """

    # -- wire sizes (bytes) --------------------------------------------------
    request_bytes: int = 40
    metrics_reply_bytes: int = 60
    rule_bytes: int = 117
    ack_bytes: int = 32
    agg_request_bytes: int = 48
    agg_reply_header_bytes: int = 64
    agg_reply_entry_bytes: int = 15
    rule_batch_header_bytes: int = 64
    rule_batch_entry_bytes: int = 45
    agg_ack_bytes: int = 40

    # -- critical-path CPU at a controller that talks directly to stages ----
    tx_request_s: float = 2.5e-6
    rx_reply_s: float = 3.2e-6
    rule_build_s: float = 2.5e-6
    tx_rule_s: float = 4.3e-6
    rx_ack_s: float = 1.0e-6

    # -- compute phase --------------------------------------------------------
    compute_fixed_s: float = 150e-6
    psfa_per_stage_s: float = 2.5e-6
    #: Per-stage compute cost when metrics arrive pre-merged by an
    #: aggregator — cheaper than the flat path (paper Obs. #7).
    psfa_per_stage_hier_s: float = 2.0e-6

    # -- hierarchical-specific critical-path CPU ------------------------------
    agg_merge_s: float = 3.0e-6
    agg_summarize_fixed_s: float = 50e-6
    rx_agg_reply_fixed_s: float = 20e-6
    rx_agg_entry_s: float = 1.3e-6
    rule_build_hier_s: float = 2.6e-6
    batch_unpack_s: float = 3.5e-6
    tx_batch_s: float = 30e-6
    rx_agg_ack_s: float = 10e-6

    # -- background CPU per cycle ---------------------------------------------
    bg_per_stage_direct_s: float = 76e-6
    bg_per_stage_global_hier_s: float = 8.6e-6
    bg_fixed_s: float = 0.0

    # -- stage side -------------------------------------------------------------
    stage_service_s: float = 60e-6
    stage_cpu_per_msg_s: float = 3.0e-6

    # -- memory footprints (bytes) ------------------------------------------------
    global_fixed_mem: int = 50 * _MB
    flat_per_stage_mem: int = 485 * _KB
    hier_per_stage_mem: int = 347 * _KB
    per_agg_mem_at_global: int = 5 * _MB
    agg_fixed_mem: int = 10 * _MB
    agg_per_stage_mem: int = 60 * _KB

    # -- execution granularity ---------------------------------------------------
    #: Messages serialized per CPU burst; models event-loop batching and
    #: bounds simulator event counts without changing totals.
    send_chunk: int = 64

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ValueError(f"cost model field {f.name} negative: {value}")
        if self.send_chunk < 1:
            raise ValueError(f"send_chunk must be >= 1: {self.send_chunk}")

    # -- convenience -----------------------------------------------------------
    def scaled(self, cpu_factor: float = 1.0, net_factor: float = 1.0) -> "CostModel":
        """A copy with all CPU costs (and/or wire sizes) scaled.

        Used by the ablation benches to explore slower controllers or
        fatter payloads without redefining every constant.
        """
        if cpu_factor <= 0 or net_factor <= 0:
            raise ValueError("scale factors must be positive")
        updates: Dict[str, float] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_s"):
                updates[f.name] = value * cpu_factor
            elif f.name.endswith("_bytes"):
                updates[f.name] = int(round(value * net_factor))
        return replace(self, **updates)

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # -- derived aggregates (used by the analytic calibration predictors) ----
    @property
    def flat_per_stage_critical_s(self) -> float:
        """Critical-path seconds a flat global controller spends per stage."""
        return (
            self.tx_request_s
            + self.rx_reply_s
            + self.psfa_per_stage_s
            + self.rule_build_s
            + self.tx_rule_s
            + self.rx_ack_s
        )

    @property
    def agg_per_stage_critical_s(self) -> float:
        """Critical-path seconds an aggregator spends per owned stage."""
        return (
            self.tx_request_s
            + self.rx_reply_s
            + self.agg_merge_s
            + self.batch_unpack_s
            + self.tx_rule_s
            + self.rx_ack_s
        )

    @property
    def hier_global_per_stage_critical_s(self) -> float:
        """Critical-path seconds the hierarchical global spends per stage."""
        return (
            self.rx_agg_entry_s + self.psfa_per_stage_hier_s + self.rule_build_hier_s
        )


#: Default model, calibrated to the paper's Frontera measurements.
FRONTERA_COST_MODEL = CostModel()
