"""Controller-brain shootout: race allocation algorithms on shared traces.

Every contender sees the *identical* seeded workload — the demand traces
are precomputed once per seed and replayed against a fresh instance of
each algorithm — so the scorecard isolates the brain, not the noise.

Two scenarios, four headline metrics:

* **Burst** (single axis): a steady fleet where one job steps to 5x its
  base demand mid-run. Measured per contender:

  - ``convergence_cycles`` — cycles after the burst until the bursting
    job's grant settles within 5% of its post-burst steady state (and
    stays there). Water-fillers converge in ≤1 cycle; the PID loop takes
    several, which is the price of its smoothness.
  - ``jain_index`` — Jain's fairness index ``(Σx)² / (n·Σx²)`` over
    weight-normalised grants at the final contended cycle. 1.0 is
    perfectly weighted-fair.
  - ``overshoot_frac`` — worst-case ``(Σalloc − capacity)/capacity``
    across the run, clipped at 0. Pure water-fillers never overshoot;
    a badly tuned feedback loop can.
  - ``utilization`` — useful grant (``min(alloc, demand)``) over the
    contended optimum at the final cycle; exposes static partitioning
    wasting capacity on idle tenants.

* **Storm** (two axes): one tenant floods the metadata axis at 5x the
  whole MDS budget while the others make modest requests.

  - ``storm_share`` — the storming tenant's final share of the metadata
    capacity. Lower is better containment; the PADLL-style throttler's
    per-tenant cap bounds it by construction.
  - ``victim_share`` — the worst-off innocent tenant's
    ``grant/demand`` on the metadata axis. 1.0 means the storm did not
    touch the bystanders.
  - ``meta_utilization`` — useful metadata grant over the contended
    optimum. Demand-blind brains "contain" the storm by stranding MDS
    budget on satisfied victims; this column prices that in.

  Single-axis brains race the metadata axis through a second fresh
  instance (the same twin-instance rule the controllers use); brains
  exposing ``allocate_axes`` get the coupled call.

Everything here is deterministic for a given seed: same seed, same
traces, same winner table. Wall-clock timings are measured but never
feed a winner decision.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.algorithms import (
    MaxMinFair,
    NaiveProportional,
    PADLLThrottler,
    PIDController,
    PSFA,
    StaticPartition,
    UniformShare,
)

__all__ = ["default_contenders", "run_shootout", "jain_index"]

_EPS = 1e-12


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly fair."""
    x = np.asarray(values, dtype=float)
    x = x[x > _EPS]
    if x.size == 0:
        return 1.0
    return min(float(x.sum() ** 2 / (x.size * float((x * x).sum()))), 1.0)


def default_contenders() -> Dict[str, Callable]:
    """Factory per contender — fresh instances per scenario, so stateful
    brains (PID) never leak loop state across races."""
    return {
        "psfa": PSFA,
        "pid": PIDController,
        "padll": lambda: PADLLThrottler(metadata_cap_fraction=0.25),
        "max-min-fair": MaxMinFair,
        "naive-proportional": NaiveProportional,
        "static-partition": StaticPartition,
        "uniform-share": UniformShare,
    }


def _burst_trace(
    rng: np.random.Generator, n_jobs: int, cycles: int, burst_at: int
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Precompute the shared burst workload: (demands[cycle, job],
    weights, capacity). Job 0 steps to 5x its base mid-run."""
    weights = np.array([4.0, 2.0, 2.0] + [1.0] * (n_jobs - 3))[:n_jobs]
    base = rng.uniform(600.0, 1400.0, size=n_jobs)
    # The last two jobs trickle: demand far below their weight share, so
    # demand-blind brains strand their budget (the paper's "false
    # allocation") and the utilization column shows it.
    base[-2:] = rng.uniform(40.0, 90.0, size=2)
    noise = rng.normal(1.0, 0.02, size=(cycles, n_jobs))
    demands = base[None, :] * np.clip(noise, 0.9, 1.1)
    demands[burst_at:, 0] = base[0] * 5.0 * np.clip(
        noise[burst_at:, 0], 0.9, 1.1
    )
    capacity = 0.7 * float(base.sum())
    return demands, weights, capacity


def _race_burst(
    make: Callable, demands: np.ndarray, weights: np.ndarray, capacity: float,
    burst_at: int,
) -> Dict[str, float]:
    algo = make()
    cycles = demands.shape[0]
    grants = np.zeros_like(demands)
    overshoot = 0.0
    demand_limited = np.zeros(demands.shape[1], dtype=bool)
    for c in range(cycles):
        result = algo.allocate(demands[c], weights, capacity)
        grants[c] = result.allocations
        demand_limited = result.demand_limited
        total = float(grants[c].sum())
        overshoot = max(overshoot, (total - capacity) / capacity)
    if overshoot < 1e-9:  # float dust must not decide a winner
        overshoot = 0.0
    # Convergence: last cycle the burster's grant sat OUTSIDE the 5%
    # band around its post-burst steady state, counted from the burst.
    final = float(grants[-1, 0])
    band = 0.05 * max(final, _EPS)
    settled = np.abs(grants[burst_at:, 0] - final) <= band
    unsettled = np.nonzero(~settled)[0]
    convergence = int(unsettled[-1] + 1) if unsettled.size else 0
    last = grants[-1]
    useful = float(np.minimum(last, demands[-1]).sum())
    optimum = min(float(demands[-1].sum()), capacity)
    # Fairness is judged among the *contended* tenants — a demand-limited
    # tenant got everything it asked for, and counting its small grant
    # against a work-conserving brain would reward demand-blindness.
    contended = ~demand_limited
    fair_over = last[contended] if np.any(contended) else last
    fair_weights = weights[contended] if np.any(contended) else weights
    return {
        "convergence_cycles": convergence,
        "jain_index": jain_index(fair_over / fair_weights),
        "overshoot_frac": max(overshoot, 0.0),
        "utilization": useful / optimum,
    }


def _race_storm(
    make: Callable, rng: np.random.Generator, cycles: int
) -> Dict[str, float]:
    n_jobs = 6
    weights = np.ones(n_jobs)
    data_capacity = 6000.0
    metadata_capacity = 1000.0
    data = rng.uniform(500.0, 1500.0, size=(cycles, n_jobs))
    # Victims make modest metadata requests — well under the MDS budget
    # in aggregate, so the interesting question is who pockets the
    # large leftover the storm is begging for.
    meta = rng.uniform(40.0, 120.0, size=(cycles, n_jobs))
    meta[:, 0] = 5.0 * metadata_capacity  # the storm
    algo = make()
    axes = getattr(algo, "allocate_axes", None)
    meta_algo = None if axes is not None else make()
    meta_grant = np.zeros(n_jobs)
    for c in range(cycles):
        if axes is not None:
            _, meta_result = axes(
                data[c], meta[c], weights, data_capacity, metadata_capacity
            )
        else:
            meta_result = meta_algo.allocate(
                meta[c], weights, metadata_capacity
            )
        meta_grant = meta_result.allocations
    victims = np.arange(1, n_jobs)
    victim_share = float(
        np.min(meta_grant[victims] / np.maximum(meta[-1, victims], _EPS))
    )
    useful = float(np.minimum(meta_grant, meta[-1]).sum())
    optimum = min(float(meta[-1].sum()), metadata_capacity)
    return {
        "storm_share": float(meta_grant[0]) / metadata_capacity,
        "victim_share": min(victim_share, 1.0),
        "meta_utilization": useful / optimum,
    }


def _winners(rows: Dict[str, Dict[str, float]]) -> Dict[str, str]:
    """Per-metric winner; ties break on contender order (deterministic)."""
    names = list(rows)

    def best(metric: str, sign: float) -> str:
        # Rounded so float dust cannot decide a winner; exact ties break
        # on contender order, which is fixed.
        return min(names, key=lambda n: sign * round(rows[n][metric], 9))

    return {
        "convergence": best("convergence_cycles", 1.0),
        "fairness": best("jain_index", -1.0),
        "overshoot": best("overshoot_frac", 1.0),
        "utilization": best("utilization", -1.0),
        "containment": best("storm_share", 1.0),
        "victim_protection": best("victim_share", -1.0),
    }


def run_shootout(
    seed: int = 20240406,
    cycles: int = 60,
    n_jobs: int = 8,
    contenders: Optional[Dict[str, Callable]] = None,
) -> Dict:
    """Race every contender on identical seeded traces; return the table.

    The returned dict maps each contender to its merged burst + storm
    metrics (plus ``wall_s``), and carries a ``winners`` table naming
    the best brain per metric. Deterministic modulo ``wall_s``.
    """
    if contenders is None:
        contenders = default_contenders()
    burst_at = max(cycles // 3, 1)
    rng = np.random.default_rng(seed)
    demands, weights, capacity = _burst_trace(rng, n_jobs, cycles, burst_at)
    storm_seed = int(rng.integers(0, 2**31 - 1))
    rows: Dict[str, Dict[str, float]] = {}
    for name, make in contenders.items():
        t0 = time.perf_counter()
        row = _race_burst(make, demands, weights, capacity, burst_at)
        row.update(
            _race_storm(make, np.random.default_rng(storm_seed), cycles)
        )
        row["wall_s"] = time.perf_counter() - t0
        rows[name] = row
    return {
        "seed": seed,
        "cycles": cycles,
        "n_jobs": n_jobs,
        "capacity": capacity,
        "contenders": rows,
        "winners": _winners(rows),
    }
