"""Adaptive control periods: volatility-driven cycle pacing (paper §V).

The paper leaves the control period to the administrator: bursty
workloads want tight cycles, calm ones want few. This module closes that
loop. :class:`AdaptivePeriodController` paces a
:class:`~repro.core.controller.GlobalController` by the *measured demand
volatility*:

* after each cycle it compares the fresh demand vector with the previous
  one (mean relative change per stage);
* volatility at/above ``target_volatility`` drives the period toward
  ``min_period_s`` (react fast while things are moving);
* calm demand lets the period decay toward ``max_period_s`` (save
  controller resources when nothing changes).

The controller's work per cycle is unchanged — only the spacing adapts,
so this composes with any design and with changed-only enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.core.controller import GlobalController
from repro.simnet.engine import Environment, Process

__all__ = ["AdaptivePeriodController", "PeriodSample"]

_EPS = 1e-9


@dataclass(frozen=True)
class PeriodSample:
    """One pacing decision."""

    time: float
    volatility: float
    period_s: float


class AdaptivePeriodController:
    """Paces control cycles by observed demand volatility.

    Parameters
    ----------
    min_period_s / max_period_s:
        The pacing range. The paper's stress mode is ``min == max == 0``
        (back-to-back); production deployments use e.g. 0.1 s – 10 s.
    target_volatility:
        Mean relative per-stage demand change that should map to the
        fastest pacing. 0.2 means "20 % average movement between cycles
        deserves the minimum period".
    smoothing:
        EWMA factor on the volatility estimate (1 = use raw estimate).
    """

    def __init__(
        self,
        controller: GlobalController,
        min_period_s: float = 0.1,
        max_period_s: float = 10.0,
        target_volatility: float = 0.2,
        smoothing: float = 0.5,
    ) -> None:
        if min_period_s <= 0 or max_period_s < min_period_s:
            raise ValueError(
                f"invalid period range [{min_period_s}, {max_period_s}]"
            )
        if target_volatility <= 0:
            raise ValueError(f"target volatility must be positive: {target_volatility}")
        if not 0 < smoothing <= 1:
            raise ValueError(f"smoothing must be in (0, 1]: {smoothing}")
        self.controller = controller
        self.env: Environment = controller.env
        self.min_period_s = float(min_period_s)
        self.max_period_s = float(max_period_s)
        self.target_volatility = float(target_volatility)
        self.smoothing = float(smoothing)
        self.samples: List[PeriodSample] = []
        self._previous_demand: Optional[Dict[str, float]] = None
        self._volatility_ewma: Optional[float] = None

    # -- public API --------------------------------------------------------
    def run_for(self, duration_s: float) -> Process:
        """Run adaptively paced cycles for ``duration_s``."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        return self.env.process(
            self._run(duration_s), name="adaptive-controller"
        )

    @property
    def current_period_s(self) -> float:
        """The most recent pacing decision (max period before any data)."""
        return self.samples[-1].period_s if self.samples else self.max_period_s

    def mean_period_s(self) -> float:
        if not self.samples:
            return self.max_period_s
        return float(np.mean([s.period_s for s in self.samples]))

    # -- internals -----------------------------------------------------------
    def _measure_volatility(self) -> float:
        current = {
            stage_id: report.total_iops
            for stage_id, report in self.controller.latest_metrics.items()
        }
        previous = self._previous_demand
        self._previous_demand = current
        if previous is None or not current:
            return self.target_volatility  # no evidence yet: stay neutral
        changes = [
            abs(current[s] - previous[s]) / max(previous[s], 1.0)
            for s in current
            if s in previous
        ]
        raw = float(np.mean(changes)) if changes else 0.0
        if self._volatility_ewma is None:
            self._volatility_ewma = raw
        else:
            self._volatility_ewma = (
                self.smoothing * raw + (1 - self.smoothing) * self._volatility_ewma
            )
        return self._volatility_ewma

    def _pick_period(self, volatility: float) -> float:
        # Inverse-proportional mapping, clamped to the configured range:
        # at target volatility (or above) -> min period; at zero -> max.
        if volatility <= _EPS:
            return self.max_period_s
        period = self.min_period_s * (self.target_volatility / volatility)
        return float(np.clip(period, self.min_period_s, self.max_period_s))

    def _run(self, duration_s: float) -> Generator:
        end = self.env.now + duration_s
        while self.env.now < end:
            started = self.env.now
            yield from self.controller._cycle()
            volatility = self._measure_volatility()
            period = self._pick_period(volatility)
            self.samples.append(PeriodSample(self.env.now, volatility, period))
            delay = min(started + period, end) - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
