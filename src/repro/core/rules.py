"""Enforcement rules pushed from controllers to data-plane stages.

A rule sets the IOPS rate limit a stage's token bucket must apply until the
next cycle replaces it. Rules carry a monotonically increasing ``epoch``
(the cycle number) so stale rules arriving late — possible during
controller failover — are discarded by stages rather than re-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["EnforcementRule", "RuleBatch", "diff_rules"]

#: Rate value meaning "unlimited" (no throttling).
UNLIMITED = float("inf")


@dataclass(frozen=True)
class EnforcementRule:
    """A per-stage rate assignment for one control epoch."""

    stage_id: str
    epoch: int
    data_iops_limit: float
    metadata_iops_limit: float = UNLIMITED

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"negative epoch: {self.epoch}")
        if self.data_iops_limit < 0:
            raise ValueError(f"negative data limit: {self.data_iops_limit}")
        if self.metadata_iops_limit < 0:
            raise ValueError(f"negative metadata limit: {self.metadata_iops_limit}")

    @property
    def total_limit(self) -> float:
        return self.data_iops_limit + self.metadata_iops_limit

    def supersedes(self, other: Optional["EnforcementRule"]) -> bool:
        """True if this rule should replace ``other`` at a stage."""
        return other is None or self.epoch > other.epoch


@dataclass(frozen=True)
class RuleBatch:
    """Rules for one aggregator's partition, sent as a single message.

    Batching is why the hierarchical global controller transmits ~45 B per
    stage where the flat controller pays a full per-stage message (~117 B
    plus a connection round trip) — see Table II vs Table III.
    """

    aggregator_id: str
    epoch: int
    rules: Tuple[EnforcementRule, ...]

    def __post_init__(self) -> None:
        for rule in self.rules:
            if rule.epoch != self.epoch:
                raise ValueError(
                    f"rule epoch {rule.epoch} != batch epoch {self.epoch}"
                )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[EnforcementRule]:
        return iter(self.rules)

    def split(self, n_parts: int) -> List["RuleBatch"]:
        """Partition into up to ``n_parts`` contiguous sub-batches."""
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1: {n_parts}")
        chunks: List[RuleBatch] = []
        size = max(1, (len(self.rules) + n_parts - 1) // n_parts)
        for i in range(0, len(self.rules), size):
            chunks.append(
                RuleBatch(
                    aggregator_id=self.aggregator_id,
                    epoch=self.epoch,
                    rules=self.rules[i : i + size],
                )
            )
        return chunks


def diff_rules(
    previous: Dict[str, EnforcementRule],
    current: Sequence[EnforcementRule],
    tolerance: float = 0.0,
) -> List[EnforcementRule]:
    """Rules in ``current`` that differ from ``previous`` beyond ``tolerance``.

    An optional optimisation (not used in the paper's stress workload,
    which always pushes every rule): only ship rules whose limits moved by
    more than ``tolerance`` relative change, cutting enforce-phase traffic
    for steady workloads. Exercised by the ablation benches.
    """
    if tolerance < 0:
        raise ValueError(f"negative tolerance: {tolerance}")
    changed: List[EnforcementRule] = []
    for rule in current:
        old = previous.get(rule.stage_id)
        if old is None:
            changed.append(rule)
            continue
        for new_v, old_v in (
            (rule.data_iops_limit, old.data_iops_limit),
            (rule.metadata_iops_limit, old.metadata_iops_limit),
        ):
            if new_v == old_v:
                continue
            base = max(abs(old_v), 1e-12)
            if base == float("inf"):
                if new_v != old_v:
                    changed.append(rule)
                    break
                continue
            if abs(new_v - old_v) / base > tolerance:
                changed.append(rule)
                break
    return changed
