"""Hot-standby failover for the global controller (paper §VI).

The paper's Discussion flags control-plane dependability as unexplored:
a dead global controller does not take storage down (stages keep
enforcing their last rules) but QoS adaptation stops until recovery.
This module implements the standard remedy — a **hot standby**:

* the primary global controller emits a heartbeat (carrying its latest
  epoch) to the standby every ``heartbeat_interval_s``;
* the standby, which holds its *own pre-established connections* to the
  same children, monitors heartbeats; after ``missed_heartbeats`` silent
  intervals it declares the primary dead and takes over, resuming control
  cycles from an epoch safely above the primary's last one (so stages'
  staleness checks accept its rules and discard any late primary rules);
* take-over time — the QoS-adaptation gap — is therefore bounded by
  ``heartbeat_interval_s * missed_heartbeats`` plus one control cycle.

The standby's extra cost while passive is just the heartbeat traffic and
its connection slots, quantifying the §VI dependability trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.core.controller import GlobalController
from repro.simnet.engine import Environment, Interrupt, Process

__all__ = [
    "FailoverEvent",
    "HotStandby",
    "attach_flat_standby",
    "attach_hier_standby",
    "resume_epoch",
]

#: Heartbeat wire size (tiny control message).
HEARTBEAT_BYTES = 24
#: Epoch slack added on take-over to dominate any in-flight primary rules.
EPOCH_SLACK = 1


def resume_epoch(last_known_epoch: int) -> int:
    """Epoch floor a successor controller resumes at.

    One rule for both recovery paths — hot-standby takeover (live
    primary's last heartbeat epoch) and boot-from-store restart (the
    durable store's highest leased/recorded epoch): resume at
    ``last_known + EPOCH_SLACK`` so the first *issued* epoch (the
    controller increments before computing) strictly dominates anything
    the predecessor could have put on the wire.
    """
    if last_known_epoch < 0:
        raise ValueError(f"last_known_epoch must be >= 0: {last_known_epoch}")
    return last_known_epoch + EPOCH_SLACK


@dataclass(frozen=True)
class FailoverEvent:
    """Record of a take-over decision."""

    time: float
    last_primary_epoch: int
    resumed_epoch: int


class HotStandby:
    """Couples a primary and a standby :class:`GlobalController`.

    Both controllers must be fully built (children registered) before
    :meth:`start`. The standby stays passive — no collect/enforce traffic
    — until the primary's heartbeats stop.
    """

    def __init__(
        self,
        env: Environment,
        primary: GlobalController,
        standby: GlobalController,
        heartbeat_interval_s: float = 0.05,
        missed_heartbeats: int = 3,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat interval must be positive: {heartbeat_interval_s}"
            )
        if missed_heartbeats < 1:
            raise ValueError(
                f"missed_heartbeats must be >= 1: {missed_heartbeats}"
            )
        if primary is standby:
            raise ValueError("primary and standby must be distinct controllers")
        self.env = env
        self.primary = primary
        self.standby = standby
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.missed_heartbeats = int(missed_heartbeats)
        self.last_heartbeat_at: Optional[float] = None
        self.last_primary_epoch = 0
        self._state_snapshot: Optional[tuple] = None
        self.failover: Optional[FailoverEvent] = None
        self.heartbeats_sent = 0
        self._hb_proc: Optional[Process] = None
        self._watch_proc: Optional[Process] = None
        self._primary_proc: Optional[Process] = None
        self._standby_cycles = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self, n_cycles: int) -> Process:
        """Run the primary for ``n_cycles`` with failover protection.

        Returns the watchdog process, which finishes when either the
        primary completes all cycles or the standby has completed the
        remaining cycles after a take-over.
        """
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        self.last_heartbeat_at = self.env.now
        self._primary_proc = self.primary.run_cycles(n_cycles)
        # Observe the primary's termination so a crash (failed process
        # event) is handled by the watchdog instead of aborting the run.
        self._primary_proc.callbacks.append(lambda _ev: None)
        self._hb_proc = self.env.process(self._heartbeat(), name="hb")
        self._watch_proc = self.env.process(
            self._watchdog(n_cycles), name="standby-watchdog"
        )
        return self._watch_proc

    def kill_primary(self) -> None:
        """Crash the primary mid-run (failure injection)."""
        if self._primary_proc is not None and self._primary_proc.is_alive:
            self._primary_proc.interrupt("killed")
        if self._hb_proc is not None and self._hb_proc.is_alive:
            self._hb_proc.interrupt("killed")

    @property
    def active_controller(self) -> GlobalController:
        """Whoever is currently (or was last) driving control cycles."""
        return self.standby if self.failover is not None else self.primary

    def total_cycles(self) -> int:
        """Cycles completed across primary + standby."""
        return len(self.primary.cycles) + len(self.standby.cycles)

    # -- internals --------------------------------------------------------------
    def _heartbeat(self) -> Generator:
        """Primary-side heartbeat emission (piggybacks the live epoch)."""
        try:
            while self._primary_proc is not None and self._primary_proc.is_alive:
                yield self.env.timeout(self.heartbeat_interval_s)
                if self._primary_proc is None or not self._primary_proc.is_alive:
                    return
                # Charged as plain state, not via the network: standby and
                # primary keep a dedicated control channel whose cost is
                # negligible next to cycle traffic.
                self.last_heartbeat_at = self.env.now
                self.last_primary_epoch = self.primary.epoch
                # The heartbeat carries a state snapshot (latest demand and
                # rules), so a takeover preserves the primary's reservations
                # for partitions that are currently dark — without it the
                # standby would re-allocate a dead partition's share to the
                # survivors while its zombie stages still enforce old rules.
                self._state_snapshot = (
                    dict(self.primary.latest_metrics),
                    dict(self.primary.latest_rules),
                    self.primary.window.snapshot(),
                )
                self.heartbeats_sent += 1
                self.primary.host.charge(1e-6)
        except Interrupt:
            return

    def _watchdog(self, n_cycles: int) -> Generator:
        """Standby-side monitor: detect silence, take over."""
        silence_budget = self.heartbeat_interval_s * self.missed_heartbeats
        while True:
            yield self.env.timeout(self.heartbeat_interval_s)
            proc = self._primary_proc
            finished_cleanly = proc is not None and proc.triggered and proc.ok
            if finished_cleanly:
                return
            crashed = proc is not None and proc.triggered and not proc.ok
            silent_for = self.env.now - (self.last_heartbeat_at or 0.0)
            if not crashed and silent_for < silence_budget:
                continue

            remaining = n_cycles - len(self.primary.cycles)
            if remaining <= 0:
                return
            # Resume above the highest epoch the primary is known to have
            # used, so stages accept standby rules and discard any late
            # primary traffic via their staleness checks.
            last_known = max(self.last_primary_epoch, self.primary.epoch)
            resume_epoch = last_known + EPOCH_SLACK
            if self._state_snapshot is not None:
                metrics, rules, demands = self._state_snapshot
                for stage_id, report in metrics.items():
                    self.standby.latest_metrics.setdefault(stage_id, report)
                for stage_id, rule in rules.items():
                    self.standby.latest_rules.setdefault(stage_id, rule)
                self.standby.window.adopt(demands)
            self.failover = FailoverEvent(
                time=self.env.now,
                last_primary_epoch=last_known,
                resumed_epoch=resume_epoch + 1,
            )
            self.standby.epoch = resume_epoch
            yield self.standby.run_cycles(remaining)
            return


def attach_flat_standby(plane) -> GlobalController:
    """Add a hot-standby global controller to a built flat plane.

    The standby runs on its own compute node with its own pre-established
    connection to every stage (stages happily serve multiple controller
    connections; replies go back over whichever connection a request
    arrived on). Returns the standby controller, ready to be wrapped in a
    :class:`HotStandby` together with ``plane.global_controller``.
    """
    from repro.core.controller import ChildChannel

    config = plane.config
    cluster = plane.cluster
    host = plane._controller_host("standby-ctrl", system_slots=0)
    endpoint = cluster.network.attach(host, "standby-controller")
    standby = GlobalController(
        plane.env,
        host,
        endpoint,
        policy=config.policy,
        algorithm=config.algorithm,
        costs=config.costs,
        collect_timeout_s=config.collect_timeout_s,
        name="standby",
    )
    for stage in plane.stages:
        conn = cluster.network.connect(endpoint, stage.endpoint)
        standby.add_stage(
            stage.stage_id,
            stage.job_id,
            ChildChannel(stage.stage_id, "stage", conn, endpoint),
        )
    return standby


def attach_hier_standby(plane) -> GlobalController:
    """Add a hot-standby *global* controller to a built hierarchical plane.

    The standby pre-establishes its own connection to every **top-level**
    aggregator (aggregators serve requests over whichever upstream
    connection they arrive on), so after a take-over it drives the same
    tree the primary did — including any aggregator that is currently
    crashed, whose partition simply rides at last-known demand through
    the standby's collect timeout. Returns the standby, ready to be
    wrapped in a :class:`HotStandby` with ``plane.global_controller``.
    """
    from repro.core.controller import ChildChannel

    config = plane.config
    cluster = plane.cluster
    primary = plane.global_controller
    host = plane._controller_host("standby-ctrl")
    endpoint = cluster.network.attach(host, "standby-controller")
    standby = GlobalController(
        plane.env,
        host,
        endpoint,
        policy=config.policy,
        algorithm=config.algorithm,
        costs=config.costs,
        collect_timeout_s=config.collect_timeout_s,
        name="standby",
    )
    stage_jobs = {s.stage_id: s.job_id for s in plane.stages}
    top_level = {
        c.child_id: c for c in primary.children if c.kind == "aggregator"
    }
    for agg in plane.aggregators:
        channel = top_level.get(agg.agg_id)
        if channel is None:
            continue  # sub-aggregator of a 3-level tree; not a direct child
        conn = cluster.network.connect(endpoint, agg.endpoint)
        standby.add_aggregator(
            ChildChannel(
                agg.agg_id,
                "aggregator",
                conn,
                endpoint,
                stage_ids=channel.stage_ids,
            ),
            stage_jobs,
        )
    return standby
