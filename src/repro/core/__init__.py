"""The SDS control plane under study.

This package implements the paper's contribution: Cheferd-style storage
control planes in two architectures —

* :class:`~repro.core.control_plane.FlatControlPlane` — a single global
  controller directly managing every data-plane stage (paper Fig. 2);
* :class:`~repro.core.control_plane.HierarchicalControlPlane` — a global
  controller above a layer of aggregator controllers, each owning a
  disjoint partition of stages (paper Fig. 3);

plus the *future-work* designs §VI sketches:

* :class:`~repro.core.control_plane.CoordinatedFlatControlPlane` — peer
  controllers that partition the stages and exchange summaries to keep
  global visibility;
* decision offloading — aggregators running PSFA locally over a capacity
  budget granted by the global controller.

The control algorithm is **PSFA** (proportional sharing without false
allocation, :mod:`repro.core.algorithms.psfa`), executed every control
cycle over metrics collected from all stages, producing enforcement rules
pushed back to the stages.
"""

from repro.core.adaptive import AdaptivePeriodController
from repro.core.control_plane import (
    ControlPlaneConfig,
    CoordinatedFlatControlPlane,
    FlatControlPlane,
    HierarchicalControlPlane,
)
from repro.core.failover import HotStandby, attach_flat_standby
from repro.core.cycle import ControlCycle, CycleStats, PhaseBreakdown
from repro.core.metrics import AggregatedMetrics, StageMetrics
from repro.core.policies import (
    DemandBoundPolicy,
    PolicyError,
    PriorityClass,
    QoSPolicy,
)
from repro.core.rules import EnforcementRule, RuleBatch

__all__ = [
    "AdaptivePeriodController",
    "AggregatedMetrics",
    "ControlCycle",
    "ControlPlaneConfig",
    "CoordinatedFlatControlPlane",
    "CycleStats",
    "DemandBoundPolicy",
    "EnforcementRule",
    "FlatControlPlane",
    "HierarchicalControlPlane",
    "HotStandby",
    "PhaseBreakdown",
    "PolicyError",
    "PriorityClass",
    "QoSPolicy",
    "RuleBatch",
    "StageMetrics",
    "attach_flat_standby",
]
