"""Columnar per-partition controller state.

The scalar control plane keeps per-stage state as dicts of Python floats
(`MetricsWindow._ewma`, `latest_metrics`, `latest_demand_of`), so every
compute phase pays a per-stage Python loop just to *gather* demand into
the vectorized allocation brains. At 10k+ stages that gather — not the
brain — dominates the compute phase (ROADMAP item 5's "remaining 10x").

:class:`StageColumns` replaces those dicts with one ``float64`` ndarray
per metric column plus a stage-id ↔ row-index registry:

====================  =====================================================
column                meaning
====================  =====================================================
``data``              latest raw data-IOPS demand reported by the row
``meta``              latest raw metadata-IOPS demand
``ewma``              smoothed *total* demand (``MetricsWindow`` semantics)
``usage``             last granted/used IOPS (written by enforce)
``weight``            cached QoS weight of the row's job
``cap``               per-row metadata cap (``inf`` = uncapped)
====================  =====================================================

Row-index stability rules (load-bearing — allocation determinism depends
on them):

* Rows are append-only: ``register`` always appends at the tail, so the
  active-row order equals registration order — exactly the order of
  ``StageRegistry.stage_ids`` and of a live controller's session dict.
* ``evict`` tombstones the row (clears it from the id registry, flips
  ``active`` off) but never moves other rows; values stay readable for
  the rest of the cycle, matching the scalar path where an evicted
  session object keeps its last attributes.
* A re-registered id gets a **new** row at the tail (its old tombstone
  stays dead), matching a fresh ``MetricsWindow`` entry after ``forget``.
* ``maybe_compact`` reclaims tombstones while preserving the relative
  order of live rows. It must only run at a safe point (start of a
  control cycle, before any row snapshot is taken) because it renumbers
  rows; ``generation`` changes so cached row maps invalidate.

The EWMA fold uses the identical IEEE expression as
:meth:`MetricsWindow.update` (``alpha*d + (1-alpha)*prev``, elementwise),
so columnar and scalar controllers produce bit-identical demand vectors
— which is what keeps golden traces unchanged under either path.

The class is duck-compatible with :class:`MetricsWindow` (``update`` /
``demand`` / ``demands`` / ``forget`` / ``snapshot`` / ``adopt`` /
``__len__``), so failover snapshot transfer and the offload enforce path
work unchanged when a controller swaps its window for columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StageColumns"]

_MIN_CAPACITY = 64

#: Serialized column names, in wire order (see :meth:`StageColumns.to_arrays`).
_ARRAY_COLUMNS = ("data", "meta", "ewma", "usage", "weight", "cap")


class StageColumns:
    """Columnar stage state with a stable stage-id ↔ row registry."""

    __slots__ = (
        "alpha",
        "_decay",
        "generation",
        "_n",
        "data",
        "meta",
        "ewma",
        "usage",
        "weight",
        "cap",
        "_active",
        "_seen",
        "_ids",
        "_jobs",
        "_row_of",
        "_n_active",
        "_extra",
        "_rows_cache",
        "_ids_cache",
        "_gather_cache",
        "_map_cache",
        "_job_view_cache",
        "_weights_cache",
    )

    def __init__(self, alpha: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._decay = 1.0 - self.alpha
        #: Bumped whenever row numbering or membership changes; external
        #: caches (job maps, session row handles) key on it.
        self.generation = 0
        self._n = 0  # rows in use, tombstones included
        cap = _MIN_CAPACITY
        self.data = np.zeros(cap)
        self.meta = np.zeros(cap)
        self.ewma = np.zeros(cap)
        self.usage = np.zeros(cap)
        self.weight = np.ones(cap)
        self.cap = np.full(cap, np.inf)
        self._active = np.zeros(cap, dtype=bool)
        self._seen = np.zeros(cap, dtype=bool)
        self._ids: List[Optional[str]] = [None] * cap
        self._jobs: List[Optional[str]] = [None] * cap
        self._row_of: Dict[str, int] = {}
        self._n_active = 0
        # MetricsWindow-compat overflow for ids never registered as rows
        # (hot-standby adoption of stages this partition doesn't own).
        self._extra: Dict[str, float] = {}
        self._rows_cache: Optional[np.ndarray] = None
        self._ids_cache: Optional[Tuple[str, ...]] = None
        self._gather_cache: Dict[str, np.ndarray] = {}
        # ids-tuple -> row-index array, for vectorized scatter/gather of
        # repeated update batches (one entry per distinct batch shape).
        self._map_cache: Dict[Tuple[str, int], Tuple[Tuple[str, ...], np.ndarray]] = {}
        self._job_view_cache: Optional[Tuple[int, Tuple[List[str], np.ndarray]]] = None
        self._weights_cache: Optional[Tuple[Tuple[int, int, int], np.ndarray]] = None

    # -- registry ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_active + len(self._extra)

    @property
    def n_active(self) -> int:
        return self._n_active

    @property
    def n_tombstones(self) -> int:
        return self._n - self._n_active

    def __contains__(self, stage_id: str) -> bool:
        return stage_id in self._row_of

    def _grow(self, need: int) -> None:
        cap = len(self._ids)
        new_cap = max(cap * 2, need, _MIN_CAPACITY)
        for name in _ARRAY_COLUMNS + ("_active", "_seen"):
            old = getattr(self, name)
            fresh = np.empty(new_cap, dtype=old.dtype)
            fresh[:cap] = old
            if name == "cap":
                fresh[cap:] = np.inf
            elif name == "weight":
                fresh[cap:] = 1.0
            else:
                fresh[cap:] = 0
            setattr(self, name, fresh)
        self._ids.extend([None] * (new_cap - cap))
        self._jobs.extend([None] * (new_cap - cap))

    def _touch_membership(self) -> None:
        self.generation += 1
        self._rows_cache = None
        self._ids_cache = None
        self._gather_cache.clear()
        self._map_cache.clear()
        self._job_view_cache = None
        self._weights_cache = None

    def register(
        self,
        stage_id: str,
        job_id: Optional[str] = None,
        weight: float = 1.0,
        cap: float = np.inf,
    ) -> int:
        """Append a row for ``stage_id``; returns its row index."""
        if stage_id in self._row_of:
            raise ValueError(f"stage already registered: {stage_id}")
        row = self._n
        if row >= len(self._ids):
            self._grow(row + 1)
        self._n = row + 1
        self.data[row] = 0.0
        self.meta[row] = 0.0
        self.ewma[row] = 0.0
        self.usage[row] = 0.0
        self.weight[row] = weight
        self.cap[row] = cap
        self._active[row] = True
        self._seen[row] = False
        self._ids[row] = stage_id
        self._jobs[row] = job_id
        self._row_of[stage_id] = row
        self._n_active += 1
        # A re-registered id starts fresh, like MetricsWindow after forget.
        self._extra.pop(stage_id, None)
        self._touch_membership()
        return row

    def ensure(self, stage_id: str, job_id: Optional[str] = None) -> int:
        """Row index for ``stage_id``, registering it if unknown."""
        row = self._row_of.get(stage_id)
        if row is None:
            return self.register(stage_id, job_id)
        return row

    def row_of(self, stage_id: str) -> Optional[int]:
        return self._row_of.get(stage_id)

    def job_of(self, stage_id: str) -> Optional[str]:
        row = self._row_of.get(stage_id)
        return None if row is None else self._jobs[row]

    def evict(self, stage_id: str) -> bool:
        """Tombstone a row; values remain readable until compaction."""
        row = self._row_of.pop(stage_id, None)
        if row is None:
            return False
        self._active[row] = False
        self._n_active -= 1
        self._touch_membership()
        return True

    def maybe_compact(self, min_tombstones: int = 32) -> bool:
        """Reclaim tombstoned rows, preserving live-row relative order.

        Only call at a safe point (cycle start): row indices change, so
        any externally cached row handles must be refreshed (the bumped
        ``generation`` signals that).
        """
        dead = self._n - self._n_active
        if dead < min_tombstones or dead < self._n_active:
            return False
        rows = self.active_rows()
        n = rows.size
        for name in _ARRAY_COLUMNS + ("_active", "_seen"):
            col = getattr(self, name)
            col[:n] = col[rows]
        live_ids = [self._ids[r] for r in rows]
        live_jobs = [self._jobs[r] for r in rows]
        for i in range(n):
            self._ids[i] = live_ids[i]
            self._jobs[i] = live_jobs[i]
        for i in range(n, self._n):
            self._ids[i] = None
            self._jobs[i] = None
        self._row_of = {sid: i for i, sid in enumerate(live_ids)}
        self._n = n
        self._touch_membership()
        return True

    # -- row snapshots ----------------------------------------------------------
    def active_rows(self) -> np.ndarray:
        """Row indices of live rows, in registration order (cached)."""
        if self._rows_cache is None:
            self._rows_cache = np.flatnonzero(self._active[: self._n])
        return self._rows_cache

    def active_ids(self) -> Tuple[str, ...]:
        """Live stage ids in registration order (cached)."""
        if self._ids_cache is None:
            ids = self._ids
            self._ids_cache = tuple(ids[r] for r in self.active_rows())
        return self._ids_cache

    def active_jobs(self) -> List[str]:
        jobs = self._jobs
        return [jobs[r] for r in self.active_rows()]

    def _gather(self, name: str) -> np.ndarray:
        arr = self._gather_cache.get(name)
        if arr is None:
            arr = getattr(self, name)[self.active_rows()]
            self._gather_cache[name] = arr
        return arr

    def data_active(self) -> np.ndarray:
        """Raw data demand over live rows (cached; do not mutate)."""
        return self._gather("data")

    def meta_active(self) -> np.ndarray:
        """Raw metadata demand over live rows (cached; do not mutate)."""
        return self._gather("meta")

    def ewma_active(self) -> np.ndarray:
        """Smoothed total demand over live rows (cached; do not mutate)."""
        return self._gather("ewma")

    # -- observations -----------------------------------------------------------
    def _invalidate_values(self) -> None:
        self._gather_cache.clear()

    def observe(self, stage_id: str, data_iops: float, metadata_iops: float) -> float:
        """Fold one raw two-axis report in; returns the smoothed total."""
        total = data_iops + metadata_iops
        if total < 0:
            raise ValueError(f"negative demand: {total}")
        row = self._row_of.get(stage_id)
        if row is None:
            return self.update(stage_id, total)
        self.data[row] = data_iops
        self.meta[row] = metadata_iops
        if self._seen[row]:
            value = self.alpha * total + self._decay * self.ewma[row]
        else:
            value = total
            self._seen[row] = True
        self.ewma[row] = value
        self._invalidate_values()
        return value

    def rows_for(self, stage_ids: Sequence[str]) -> np.ndarray:
        """Row-index vector for a batch of ids, registering unknown ones.

        The resolved map is cached keyed on the id sequence, so repeated
        batches with the same shape (an aggregator re-sending its
        partition every cycle) resolve without per-id dict lookups.
        """
        n = len(stage_ids)
        if n == 0:
            return np.empty(0, dtype=np.intp)
        key = (stage_ids[0], n)
        hit = self._map_cache.get(key)
        if hit is not None:
            cached_ids, rows = hit
            if cached_ids == tuple(stage_ids):
                return rows
        get = self._row_of.get
        resolved = [get(s) for s in stage_ids]
        if any(r is None for r in resolved):
            resolved = [
                self.ensure(s) if r is None else r
                for s, r in zip(stage_ids, resolved)
            ]
        rows = np.array(resolved, dtype=np.intp)
        self._map_cache[key] = (tuple(stage_ids), rows)
        return rows

    def observe_rows(
        self, rows: np.ndarray, data_iops: np.ndarray, metadata_iops: np.ndarray
    ) -> None:
        """Vectorized :meth:`observe` over resolved rows (unique ids)."""
        data_iops = np.asarray(data_iops, dtype=float)
        metadata_iops = np.asarray(metadata_iops, dtype=float)
        total = data_iops + metadata_iops
        if total.size and float(total.min()) < 0:
            raise ValueError("negative demand in batch")
        self.data[rows] = data_iops
        self.meta[rows] = metadata_iops
        seen = self._seen[rows]
        # Same IEEE expression, elementwise, as the scalar update.
        folded = self.alpha * total + self._decay * self.ewma[rows]
        self.ewma[rows] = np.where(seen, folded, total)
        self._seen[rows] = True
        self._invalidate_values()

    def observe_many(
        self,
        stage_ids: Sequence[str],
        data_iops: Sequence[float],
        metadata_iops: Sequence[float],
    ) -> None:
        """Batch observe by id (ids must be unique within the batch)."""
        if not len(stage_ids):
            return
        self.observe_rows(
            self.rows_for(stage_ids),
            np.asarray(data_iops, dtype=float),
            np.asarray(metadata_iops, dtype=float),
        )

    def set_usage_rows(self, rows: np.ndarray, granted: np.ndarray) -> None:
        self.usage[rows] = granted

    def axes(self, stage_id: str) -> Tuple[float, float]:
        """Last raw (data, metadata) demand; ``(0.0, 0.0)`` if unknown."""
        row = self._row_of.get(stage_id)
        if row is None:
            return (0.0, 0.0)
        return (float(self.data[row]), float(self.meta[row]))

    # -- MetricsWindow compatibility -------------------------------------------
    def update(self, stage_id: str, demand: float) -> float:
        """Total-only observation (MetricsWindow surface)."""
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        row = self._row_of.get(stage_id)
        if row is None:
            prev = self._extra.get(stage_id)
            value = (
                demand if prev is None
                else self.alpha * demand + self._decay * prev
            )
            self._extra[stage_id] = value
            return value
        if self._seen[row]:
            value = self.alpha * demand + self._decay * self.ewma[row]
        else:
            value = demand
            self._seen[row] = True
        self.ewma[row] = value
        self._invalidate_values()
        return value

    def demand(self, stage_id: str) -> float:
        row = self._row_of.get(stage_id)
        if row is None:
            return self._extra.get(stage_id, 0.0)
        return float(self.ewma[row])

    def demands(self, stage_ids: Sequence[str]) -> np.ndarray:
        """Smoothed-demand vector in ``stage_ids`` order.

        Fast path: when the query order equals the live-row order (the
        common controller case — both follow registration order), the
        cached columnar gather is returned without touching the registry.
        """
        ids = stage_ids if isinstance(stage_ids, tuple) else tuple(stage_ids)
        if ids == self.active_ids():
            return self.ewma_active()
        demand = self.demand
        return np.fromiter(
            (demand(s) for s in ids), dtype=float, count=len(ids)
        )

    def forget(self, stage_id: str) -> None:
        self.evict(stage_id)
        self._extra.pop(stage_id, None)

    def snapshot(self) -> Dict[str, float]:
        """Observed smoothed demands (hot-standby state transfer)."""
        out = dict(self._extra)
        ewma = self.ewma
        seen = self._seen
        ids = self._ids
        for row in self.active_rows():
            if seen[row]:
                out[ids[row]] = float(ewma[row])
        return out

    def adopt(self, demands: Mapping[str, float]) -> None:
        """Install demands for stages with no local observation."""
        changed = False
        for stage_id, value in demands.items():
            row = self._row_of.get(stage_id)
            if row is None:
                self._extra.setdefault(stage_id, value)
            elif not self._seen[row]:
                self.ewma[row] = value
                self._seen[row] = True
                changed = True
        if changed:
            self._invalidate_values()

    # -- derived views ----------------------------------------------------------
    def job_view(self) -> Tuple[List[str], np.ndarray]:
        """``(job_ids, row→job index)`` over live rows, cached per generation.

        Job order is first-registration order among live rows — the same
        order :class:`StageRegistry.job_ids` yields, which keeps the
        job-level demand vector (and therefore every tie-broken
        allocation) identical to the scalar controller's.
        """
        if (
            self._job_view_cache is not None
            and self._job_view_cache[0] == self.generation
        ):
            return self._job_view_cache[1]
        job_pos: Dict[str, int] = {}
        index = np.empty(self._n_active, dtype=np.intp)
        jobs = self._jobs
        for i, row in enumerate(self.active_rows()):
            job = jobs[row]
            pos = job_pos.get(job)
            if pos is None:
                pos = len(job_pos)
                job_pos[job] = pos
            index[i] = pos
        value = (list(job_pos), index)
        self._job_view_cache = (self.generation, value)
        return value

    def stage_weights(self, policy) -> np.ndarray:
        """Per-live-row QoS weights, cached per (membership, policy) version."""
        key = (self.generation, id(policy), getattr(policy, "version", -1))
        if self._weights_cache is not None and self._weights_cache[0] == key:
            return self._weights_cache[1]
        weights = policy.weights(self.active_jobs())
        rows = self.active_rows()
        self.weight[rows] = weights
        self._weights_cache = (key, weights)
        return weights

    # -- flat-array serialization ----------------------------------------------
    def to_arrays(self) -> Dict[str, object]:
        """Flat-array snapshot of live rows (cross-process transfer).

        Everything is a tuple of ids or a compact ndarray — no nested
        dicts of Python floats to pickle element-by-element.
        """
        rows = self.active_rows()
        out: Dict[str, object] = {
            "alpha": self.alpha,
            "ids": self.active_ids(),
            "jobs": tuple(self.active_jobs()),
            "seen": self._seen[rows].copy(),
        }
        for name in _ARRAY_COLUMNS:
            out[name] = getattr(self, name)[rows].copy()
        return out

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, object]) -> "StageColumns":
        """Rebuild from :meth:`to_arrays` output (order preserved)."""
        cols = cls(alpha=float(arrays.get("alpha", 1.0)))
        ids: Sequence[str] = arrays["ids"]  # type: ignore[assignment]
        jobs: Sequence[str] = arrays["jobs"]  # type: ignore[assignment]
        n = len(ids)
        if n:
            cols._grow(n)
            for i, (sid, job) in enumerate(zip(ids, jobs)):
                if sid in cols._row_of:
                    raise ValueError(f"duplicate stage id: {sid}")
                cols._ids[i] = sid
                cols._jobs[i] = job
                cols._row_of[sid] = i
            cols._n = n
            cols._n_active = n
            cols._active[:n] = True
            cols._seen[:n] = np.asarray(arrays["seen"], dtype=bool)
            for name in _ARRAY_COLUMNS:
                getattr(cols, name)[:n] = np.asarray(arrays[name], dtype=float)
            cols._touch_membership()
        return cols
