"""The controller compute phase, columnar and scalar.

Every controller in this repo runs the same compute phase: gather
per-stage demand into vectors, reduce to per-job demand, run an
allocation brain over jobs, split the grants back to stages. Before this
module the *gather* was scalar — a Python loop over dicts per stage —
which dominates compute latency at 10k+ stages even though the brains
themselves are vectorized.

Two implementations, pinned equivalent (byte-identical — they call the
identical vectorized brains on identical arrays) by
``tests/properties/test_columnar_equivalence.py``:

* :class:`ScalarComputeState` + :func:`scalar_allocations` — the
  retained reference implementation. One ``MetricsWindow`` dict entry
  and one ``latest`` tuple per stage, list-comprehension gathers, the
  per-stage job-index rebuild every call. This is exactly the shape of
  the pre-columnar hot path and is what the ``compute`` bench suite
  measures the speedup against.
* :class:`ColumnarCompute` over :class:`StageColumns` — demand lives in
  flat ``float64`` columns, the gather is a cached fancy-index, the
  job index and QoS weight vectors are cached per (membership
  generation, policy version) and only rebuilt when membership or
  policy actually changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import StageColumns
from repro.core.metrics import MetricsWindow

__all__ = [
    "ColumnarCompute",
    "ScalarComputeState",
    "scalar_allocations",
    "split_to_stages",
]


def split_to_stages(
    stage_demand: np.ndarray,
    job_demand: np.ndarray,
    job_alloc: np.ndarray,
    job_index: np.ndarray,
    n_jobs: int,
) -> np.ndarray:
    """Split each job's grant across its stages, demand-proportionally;
    stages of an idle job share its (zero) grant equally. Identical to
    ``GlobalController._split_to_stages``."""
    denom = np.where(job_demand > 0, job_demand, 1.0)
    share = np.where(
        job_demand[job_index] > 0,
        stage_demand / denom[job_index],
        1.0
        / np.maximum(np.bincount(job_index, minlength=n_jobs), 1)[job_index],
    )
    return job_alloc[job_index] * share


def _allocate_jobs(
    stage_demand: np.ndarray,
    job_index: np.ndarray,
    job_ids: Sequence[str],
    policy,
    capacity: float,
    algorithm,
    weights: Optional[np.ndarray] = None,
    guarantees: Optional[np.ndarray] = None,
    use_guarantees: bool = True,
) -> np.ndarray:
    n_jobs = len(job_ids)
    job_demand = np.zeros(n_jobs)
    np.add.at(job_demand, job_index, stage_demand)
    if weights is None:
        weights = policy.weights(job_ids)
    if use_guarantees and guarantees is None:
        guarantees = policy.guarantees(job_ids)
    result = algorithm.allocate(
        job_demand, weights, capacity, guarantees if use_guarantees else None
    )
    return split_to_stages(
        stage_demand, job_demand, result.allocations, job_index, n_jobs
    )


class ScalarComputeState:
    """Reference per-stage state: dict EWMA + latest raw axes per stage."""

    __slots__ = ("window", "latest")

    def __init__(self, alpha: float = 1.0) -> None:
        self.window = MetricsWindow(alpha)
        self.latest: Dict[str, Tuple[float, float]] = {}

    def observe(
        self, stage_id: str, data_iops: float, metadata_iops: float
    ) -> None:
        self.latest[stage_id] = (data_iops, metadata_iops)
        self.window.update(stage_id, data_iops + metadata_iops)

    def forget(self, stage_id: str) -> None:
        self.latest.pop(stage_id, None)
        self.window.forget(stage_id)


def scalar_allocations(
    state: ScalarComputeState,
    stage_ids: Sequence[str],
    job_ids: Sequence[str],
    policy,
    algorithm,
    metadata_algorithm=None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """The scalar compute phase, verbatim controller semantics.

    ``stage_ids``/``job_ids`` are parallel (one job id per stage).
    Returns ``(limits, metadata_limits)`` with ``metadata_limits`` None
    under an undifferentiated policy — the exact contract of
    ``GlobalController._compute_allocations``.
    """
    if not stage_ids:
        return np.zeros(0), None
    # Per-call job-index rebuild: this per-stage Python loop is part of
    # the scalar cost being referenced (live controllers rebuild their
    # job lists every cycle).
    job_pos: Dict[str, int] = {}
    for j in job_ids:
        if j not in job_pos:
            job_pos[j] = len(job_pos)
    job_order = list(job_pos)
    job_index = np.array([job_pos[j] for j in job_ids], dtype=np.intp)

    if not policy.differentiated:
        stage_demand = state.window.demands(stage_ids)
        total = _allocate_jobs(
            stage_demand, job_index, job_order, policy,
            policy.allocatable_iops, algorithm,
        )
        return total, None

    latest = state.latest
    data_demand = np.array(
        [latest[s][0] if s in latest else 0.0 for s in stage_ids]
    )
    metadata_demand = np.array(
        [latest[s][1] if s in latest else 0.0 for s in stage_ids]
    )
    axes = getattr(algorithm, "allocate_axes", None)
    if axes is not None:
        n_jobs = len(job_order)
        job_data = np.zeros(n_jobs)
        np.add.at(job_data, job_index, data_demand)
        job_meta = np.zeros(n_jobs)
        np.add.at(job_meta, job_index, metadata_demand)
        weights = policy.weights(job_order)
        data_res, meta_res = axes(
            job_data,
            job_meta,
            weights,
            policy.allocatable_iops,
            policy.allocatable_metadata_iops,
            guarantees=policy.guarantees(job_order),
        )
        data = split_to_stages(
            data_demand, job_data, data_res.allocations, job_index, n_jobs
        )
        metadata = split_to_stages(
            metadata_demand, job_meta, meta_res.allocations, job_index, n_jobs
        )
        return data, metadata
    data = _allocate_jobs(
        data_demand, job_index, job_order, policy,
        policy.allocatable_iops, algorithm,
    )
    metadata = _allocate_jobs(
        metadata_demand, job_index, job_order, policy,
        policy.allocatable_metadata_iops,
        metadata_algorithm if metadata_algorithm is not None else algorithm,
        use_guarantees=False,
    )
    return data, metadata


class ColumnarCompute:
    """Compute phase over :class:`StageColumns`.

    Byte-identical to :func:`scalar_allocations` on the same
    observations: both reduce with ``np.add.at`` in row order, hand the
    same job-ordered vectors to the same brains, and split with the same
    expression. The columnar side just skips the per-stage Python.
    """

    __slots__ = ("columns", "_policy_cache")

    def __init__(self, columns: StageColumns) -> None:
        self.columns = columns
        # (generation, id(policy), policy.version) -> (weights, guarantees)
        self._policy_cache: Optional[Tuple[tuple, np.ndarray, np.ndarray]] = None

    def _job_vectors(self, policy, job_ids: List[str]):
        key = (
            self.columns.generation,
            id(policy),
            getattr(policy, "version", -1),
        )
        cached = self._policy_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        weights = policy.weights(job_ids)
        guarantees = policy.guarantees(job_ids)
        self._policy_cache = (key, weights, guarantees)
        return weights, guarantees

    def allocations(
        self, policy, algorithm, metadata_algorithm=None
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        cols = self.columns
        if cols.n_active == 0:
            return np.zeros(0), None
        job_ids, job_index = cols.job_view()
        weights, guarantees = self._job_vectors(policy, job_ids)

        if not policy.differentiated:
            total = _allocate_jobs(
                cols.ewma_active(), job_index, job_ids, policy,
                policy.allocatable_iops, algorithm,
                weights=weights, guarantees=guarantees,
            )
            return total, None

        data_demand = cols.data_active()
        metadata_demand = cols.meta_active()
        axes = getattr(algorithm, "allocate_axes", None)
        if axes is not None:
            n_jobs = len(job_ids)
            job_data = np.zeros(n_jobs)
            np.add.at(job_data, job_index, data_demand)
            job_meta = np.zeros(n_jobs)
            np.add.at(job_meta, job_index, metadata_demand)
            data_res, meta_res = axes(
                job_data,
                job_meta,
                weights,
                policy.allocatable_iops,
                policy.allocatable_metadata_iops,
                metadata_caps=self._job_caps(job_index, n_jobs),
                guarantees=guarantees,
            )
            data = split_to_stages(
                data_demand, job_data, data_res.allocations, job_index, n_jobs
            )
            metadata = split_to_stages(
                metadata_demand, job_meta, meta_res.allocations,
                job_index, n_jobs,
            )
            return data, metadata
        data = _allocate_jobs(
            data_demand, job_index, job_ids, policy,
            policy.allocatable_iops, algorithm,
            weights=weights, guarantees=guarantees,
        )
        metadata = _allocate_jobs(
            metadata_demand, job_index, job_ids, policy,
            policy.allocatable_metadata_iops,
            metadata_algorithm if metadata_algorithm is not None else algorithm,
            weights=weights, use_guarantees=False,
        )
        return data, metadata

    def _job_caps(
        self, job_index: np.ndarray, n_jobs: int
    ) -> Optional[np.ndarray]:
        """Per-job metadata caps from the ``cap`` column (min over rows).

        Returns ``None`` when every row is uncapped — the default — so
        brains fall back to their built-in cap fraction exactly as the
        scalar controller path does.
        """
        cols = self.columns
        row_caps = cols.cap[cols.active_rows()]
        if not np.any(np.isfinite(row_caps)):
            return None
        job_caps = np.full(n_jobs, np.inf)
        np.minimum.at(job_caps, job_index, row_caps)
        return job_caps
