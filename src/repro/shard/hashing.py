"""Deterministic consistent hashing for stage→shard pinning.

Stage ids are pinned to shard workers by position on a consistent-hash
ring with virtual nodes. Two properties matter here:

* **Determinism across processes.** The digest is :func:`zlib.crc32`
  over UTF-8 bytes, never Python's built-in ``hash`` — per-process
  ``PYTHONHASHSEED`` randomisation would make the parent and its
  spawned workers disagree about which shard owns a stage.
* **Stability under resizing.** With ``vnodes`` virtual points per
  shard, growing the worker pool from N to N+1 moves only ~1/(N+1) of
  the stages, so a re-sharded deployment re-homes a bounded slice of
  its fleet instead of reshuffling everything (the same argument as
  Balsam's launcher-to-site pinning).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, List, Sequence

__all__ = ["ShardRing", "pin_stages"]


def _digest(key: str) -> int:
    """Deterministic 32-bit point for ``key`` (process-independent)."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class ShardRing:
    """Consistent-hash ring mapping stage ids to shard indices.

    ``vnodes`` virtual points per shard smooth the partition sizes;
    collisions on the ring resolve to the lower shard index so the
    mapping has no insertion-order dependence.
    """

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: Dict[int, int] = {}
        for shard in range(n_shards):
            for v in range(vnodes):
                point = _digest(f"shard-{shard}#{v}")
                prev = points.get(point)
                if prev is None or shard < prev:
                    points[point] = shard
        self._points = sorted(points)
        self._owner = [points[p] for p in self._points]

    def shard_of(self, stage_id: str) -> int:
        """The shard index owning ``stage_id``."""
        point = _digest(stage_id)
        i = bisect.bisect_right(self._points, point)
        if i == len(self._points):
            i = 0  # wrap: the first point on the ring owns the tail arc
        return self._owner[i]


def pin_stages(
    stage_ids: Sequence[str], n_shards: int, vnodes: int = 64
) -> List[List[str]]:
    """Partition ``stage_ids`` into ``n_shards`` lists by ring position.

    Every shard gets a list (possibly empty); within a shard, stages
    keep their input order so partition contents are reproducible.
    """
    ring = ShardRing(n_shards, vnodes=vnodes)
    partitions: List[List[str]] = [[] for _ in range(n_shards)]
    for stage_id in stage_ids:
        partitions[ring.shard_of(stage_id)].append(stage_id)
    return partitions
