"""Multi-process sharded control plane (parent-side orchestrator).

:class:`ShardedControlPlane` breaks the live control plane out of the
single-asyncio-loop wall: the global controller stays in the parent
process, while each aggregator subtree — a shard leader plus the stages
the consistent-hash ring pins to it — runs in its own spawned worker
process (:mod:`repro.shard.worker`). The trunk between parent and each
shard leader is the ordinary wire protocol over a per-shard-port TCP
listener, so everything built for the live hierarchy (epoch fencing,
orphan reservation, topology/rehome, degraded-cycle accounting) applies
unchanged; the only new machinery is process lifecycle and a control
pipe per worker for probes and usage rows.

Per-shard-port listeners were chosen over an ``SO_REUSEPORT`` shared
port: the global controller addresses one *specific* leader per trunk,
which a kernel-balanced shared accept queue cannot guarantee, and
distinct ports keep the re-home alternates list meaningful. See
DESIGN.md ("Sharded control plane") for the trade-off discussion.

:func:`run_live_sharded` is the one-call runner the bench, CLI, and
chaos harness share.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.control_plane import default_policy
from repro.core.cycle import ControlCycle, CycleStats
from repro.core.policies import QoSPolicy
from repro.live.controller_server import LiveHierGlobalController
from repro.shard.hashing import pin_stages
from repro.shard.worker import ShardWorkerConfig, run_shard_worker

__all__ = ["ShardRunResult", "ShardedControlPlane", "run_live_sharded"]

_READY_TIMEOUT_S = 30.0


@dataclass
class ShardRunResult:
    """Outcome of a sharded run: cycle timings plus per-shard usage rows."""

    n_stages: int
    n_workers: int
    cycles: List[ControlCycle]
    #: One usage dict per worker (see ``worker._stats_row``): cycles
    #: served, rules applied, NIC bytes, CPU seconds, RSS — the
    #: per-process counterpart of the REMORA tables.
    shard_rows: List[dict] = field(default_factory=list)
    evictions: int = 0
    #: ``os.cpu_count()`` of the host the run executed on — scaling
    #: claims are meaningless without it (a 1-core box cannot show >1x).
    cpu_count: int = 1

    def stats(self, warmup: int = 2) -> CycleStats:
        return CycleStats(
            self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0))
        )

    @property
    def rules_applied_total(self) -> int:
        return sum(r.get("rules_applied", 0) for r in self.shard_rows)

    @property
    def degraded_cycles(self) -> int:
        return sum(1 for c in self.cycles if c.degraded)


class ShardedControlPlane:
    """Global controller in-process, one worker process per shard.

    Lifecycle: :meth:`start` (spawn + wait for registration),
    :meth:`run_cycles`, :meth:`shutdown`. :meth:`kill_shard` /
    :meth:`respawn_shard` are the chaos-harness fault hooks, and
    :meth:`probe` asks every live worker for its stages' applied
    epoch/limit over the control pipes (invariant checks).
    """

    def __init__(
        self,
        n_stages: int,
        n_workers: int,
        policy: Optional[QoSPolicy] = None,
        codecs: Tuple[str, ...] = ("binary2", "binary", "json"),
        coalesce: bool = True,
        collect_timeout_s: Optional[float] = None,
        enforce_timeout_s: Optional[float] = None,
        dead_after_missed: Optional[int] = None,
        vnodes: int = 64,
        initial_epoch: int = 0,
    ) -> None:
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1: {n_stages}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        if initial_epoch < 0:
            raise ValueError(f"initial_epoch must be >= 0: {initial_epoch}")
        self.n_stages = n_stages
        self.n_workers = n_workers
        self.policy = policy or default_policy(n_stages)
        self.codecs = tuple(codecs)
        self.coalesce = coalesce
        self.collect_timeout_s = collect_timeout_s
        self.enforce_timeout_s = enforce_timeout_s
        self.dead_after_missed = dead_after_missed
        #: Epoch resume floor for planes restored from a durable store:
        #: workers re-register against a controller already above the
        #: last durable epoch, so replayed rules stay fenced out.
        self.initial_epoch = initial_epoch
        stage_ids = [f"stage-{i:05d}" for i in range(n_stages)]
        self.partitions = pin_stages(stage_ids, n_workers, vnodes=vnodes)
        self.controller: Optional[LiveHierGlobalController] = None
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._pipes: Dict[int, object] = {}
        self.shard_rows: List[dict] = []

    # -- lifecycle -----------------------------------------------------------
    def _config_for(self, shard: int) -> ShardWorkerConfig:
        owned = tuple(self.partitions[shard])
        return ShardWorkerConfig(
            shard_id=shard,
            aggregator_id=f"shard-{shard:02d}",
            global_host=self.controller.host,
            global_port=self.controller.port,
            stage_ids=owned,
            job_ids=tuple(s.replace("stage", "job") for s in owned),
            codecs=self.codecs,
            coalesce=self.coalesce,
            collect_timeout_s=self.collect_timeout_s,
            enforce_timeout_s=self.enforce_timeout_s,
        )

    async def _spawn(self, shard: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=run_shard_worker,
            args=(self._config_for(shard), child_conn),
            name=f"shard-{shard:02d}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[shard] = proc
        self._pipes[shard] = parent_conn
        reply = await self._recv(shard, timeout_s=_READY_TIMEOUT_S)
        if reply is None or reply[0] != "ready":
            raise RuntimeError(f"shard {shard} failed to start: {reply!r}")

    async def _recv(self, shard: int, timeout_s: float):
        """Await one pipe message from a worker without blocking the loop."""
        conn = self._pipes.get(shard)
        if conn is None:
            return None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if conn.poll():
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    return None
            await asyncio.sleep(0.01)
        return None

    async def start(self) -> None:
        """Start the global controller, spawn every shard, await the tree."""
        self.controller = LiveHierGlobalController(
            self.policy,
            expected_aggregators=self.n_workers,
            collect_timeout_s=self.collect_timeout_s,
            enforce_timeout_s=self.enforce_timeout_s,
            dead_after_missed=self.dead_after_missed,
            initial_epoch=self.initial_epoch,
        )
        await self.controller.start()
        for shard in range(self.n_workers):
            await self._spawn(shard)
        await self.controller.wait_for_aggregators()

    async def run_cycles(self, n_cycles: int) -> List[ControlCycle]:
        """Run ``n_cycles`` control cycles across the shard tree."""
        if self.controller is None:
            raise RuntimeError("start() first")
        return await self.controller.run_cycles(n_cycles)

    async def shutdown(self) -> None:
        """Tear the tree down and harvest every worker's usage row."""
        if self.controller is not None:
            await self.controller.shutdown()
        for shard in list(self._procs):
            await self._reap(shard, timeout_s=5.0)

    async def _reap(self, shard: int, timeout_s: float) -> None:
        """Collect the final stats row, then join (or kill) the process."""
        conn = self._pipes.get(shard)
        if conn is not None:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            reply = await self._recv(shard, timeout_s=timeout_s)
            while reply is not None and reply[0] != "stats":
                reply = await self._recv(shard, timeout_s=timeout_s)
            if reply is not None:
                self.shard_rows.append(reply[1])
            del self._pipes[shard]
            conn.close()
        proc = self._procs.pop(shard, None)
        if proc is not None:
            proc.join(timeout=timeout_s)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=timeout_s)

    # -- chaos hooks ---------------------------------------------------------
    def kill_shard(self, shard: int) -> None:
        """SIGKILL a worker mid-cycle: its subtree vanishes at once.

        The controller sees trunk EOF, evicts the leader, and reserves
        the orphaned stages' shares — exactly the aggregator-failover
        path, now with a real process death behind it.
        """
        proc = self._procs.pop(shard, None)
        conn = self._pipes.pop(shard, None)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        if conn is not None:
            conn.close()

    async def respawn_shard(self, shard: int, timeout_s: float = 10.0) -> None:
        """Bring a killed shard back with the same pinned partition.

        Waits for the controller to finish evicting the dead leader
        first — a respawn racing its predecessor's session would be
        rejected as a duplicate aggregator id.
        """
        agg_id = f"shard-{shard:02d}"
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while agg_id in self.controller.sessions:
            if loop.time() > deadline:
                raise TimeoutError(f"{agg_id} still registered; cannot respawn")
            await asyncio.sleep(0.02)
        await self._spawn(shard)

    async def probe(self, timeout_s: float = 5.0) -> Dict[int, dict]:
        """Per-stage applied epoch/limit from every live worker."""
        out: Dict[int, dict] = {}
        for shard in list(self._pipes):
            conn = self._pipes[shard]
            try:
                conn.send(("probe",))
            except (BrokenPipeError, OSError):
                continue
            reply = await self._recv(shard, timeout_s=timeout_s)
            if reply is not None and reply[0] == "probe_reply":
                out[shard] = reply[1]
        return out


async def _run_sharded(
    n_stages: int,
    n_workers: int,
    n_cycles: int,
    **kwargs,
) -> ShardRunResult:
    plane = ShardedControlPlane(n_stages, n_workers, **kwargs)
    await plane.start()
    try:
        cycles = await plane.run_cycles(n_cycles)
    finally:
        await plane.shutdown()
    return ShardRunResult(
        n_stages=n_stages,
        n_workers=n_workers,
        cycles=list(cycles),
        shard_rows=list(plane.shard_rows),
        evictions=plane.controller.evictions,
        cpu_count=os.cpu_count() or 1,
    )


def run_live_sharded(
    n_stages: int = 40,
    n_workers: int = 2,
    n_cycles: int = 10,
    policy: Optional[QoSPolicy] = None,
    codec: str = "binary",
    coalesce: bool = True,
    collect_timeout_s: Optional[float] = None,
    enforce_timeout_s: Optional[float] = None,
) -> ShardRunResult:
    """Run the sharded control plane over localhost TCP and real processes."""
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    if not 1 <= n_workers <= n_stages:
        raise ValueError("n_workers must be in [1, n_stages]")
    codecs = (
        ("binary2", "binary", "json") if codec == "binary" else ("json",)
    )
    return asyncio.run(
        _run_sharded(
            n_stages,
            n_workers,
            n_cycles,
            policy=policy,
            codecs=codecs,
            coalesce=coalesce,
            collect_timeout_s=collect_timeout_s,
            enforce_timeout_s=enforce_timeout_s,
        )
    )
