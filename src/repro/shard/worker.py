"""Shard worker process: one aggregator subtree on its own core.

:func:`run_shard_worker` is the ``multiprocessing`` spawn target for one
live shard. Inside the worker a private asyncio loop hosts a
:class:`~repro.live.aggregator_server.LiveAggregator` — the *shard
leader*, listening on its own per-shard ephemeral port — plus every
:class:`~repro.live.stage_client.LiveVirtualStage` pinned to the shard
by the consistent-hash ring. The leader registers upstream with the
parent process's global controller over the normal wire protocol
(binary codec negotiated per trunk link), so the global controller
cannot tell a shard worker from an in-process aggregator.

The parent talks to the worker over a ``multiprocessing`` pipe:

========  =============================  ==================================
request   reply                          purpose
========  =============================  ==================================
(implicit)  ``("ready", shard, port)``   sent once the leader is listening
``("probe",)``  ``("probe_reply", {...})``  per-stage applied epoch/limit
``("stop",)``   ``("stats", {...})``     drain usage row, then exit
========  =============================  ==================================

The worker also exits (shipping its ``stats`` row) when the upstream
trunk closes — the controller's ``shutdown`` frame tears the whole tree
down without any pipe traffic, and a killed parent never leaves orphan
workers behind.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ShardWorkerConfig", "run_shard_worker"]

#: Pipe poll period inside the worker loop (seconds). Coarse on purpose:
#: probes are a chaos-harness convenience, not a hot path.
_POLL_S = 0.02


@dataclass(frozen=True)
class ShardWorkerConfig:
    """Everything a spawned shard worker needs, picklable by design.

    ``multiprocessing``'s spawn start method pickles this across the
    process boundary, so every field is a plain value — no sockets, no
    loops, no lambdas.
    """

    shard_id: int
    aggregator_id: str
    global_host: str
    global_port: int
    stage_ids: Tuple[str, ...]
    job_ids: Tuple[str, ...]
    codecs: Tuple[str, ...] = ("binary2", "binary", "json")
    coalesce: bool = True
    collect_timeout_s: Optional[float] = None
    enforce_timeout_s: Optional[float] = None
    demand: Tuple[float, float] = (1000.0, 200.0)

    def __post_init__(self) -> None:
        if len(self.stage_ids) != len(self.job_ids):
            raise ValueError("stage_ids and job_ids lengths differ")


def run_shard_worker(config: ShardWorkerConfig, conn) -> None:
    """Spawn-target: run one shard subtree until shutdown.

    ``conn`` is the worker end of a duplex ``multiprocessing.Pipe``.
    Must stay a top-level importable so the spawn start method can
    resolve it by qualified name in the child.
    """
    asyncio.run(_worker_main(config, conn))


async def _worker_main(config: ShardWorkerConfig, conn) -> None:
    from repro.live.aggregator_server import LiveAggregator
    from repro.live.stage_client import LiveVirtualStage
    from repro.obs.procfs import ComponentUsageMeter, read_rss_bytes

    started = time.perf_counter()
    meter = ComponentUsageMeter(config.aggregator_id)
    leader = LiveAggregator(
        config.aggregator_id,
        config.global_host,
        config.global_port,
        expected_stages=len(config.stage_ids),
        collect_timeout_s=config.collect_timeout_s,
        enforce_timeout_s=config.enforce_timeout_s,
        coalesce=config.coalesce,
        codecs=config.codecs,
        usage_meter=meter,
    )
    await leader.start()
    stages = [
        LiveVirtualStage(
            leader.host,
            leader.port,
            stage_id=stage_id,
            job_id=job_id,
            demand=config.demand,
            codecs=config.codecs,
        )
        for stage_id, job_id in zip(config.stage_ids, config.job_ids)
    ]
    stage_tasks = [asyncio.create_task(s.run()) for s in stages]
    leader_task = asyncio.create_task(leader.run())
    conn.send(("ready", config.shard_id, leader.port))
    try:
        while not leader_task.done():
            if conn.poll():
                request = conn.recv()
                kind = request[0] if request else None
                if kind == "probe":
                    conn.send(("probe_reply", _probe(stages)))
                elif kind == "stop":
                    break
            await asyncio.sleep(_POLL_S)
    finally:
        leader._stop.set()
        for task in stage_tasks:
            task.cancel()
        leader_task.cancel()
        await asyncio.gather(leader_task, *stage_tasks, return_exceptions=True)
        elapsed = max(time.perf_counter() - started, 1e-9)
        try:
            conn.send(("stats", _stats_row(config, leader, stages, meter,
                                           elapsed, read_rss_bytes())))
            conn.close()
        except (BrokenPipeError, OSError):
            pass  # parent died first; nothing left to report to


def _probe(stages) -> dict:
    """Per-stage enforcement state, keyed by stage id."""
    return {
        s.stage_id: {
            "applied_epoch": s.applied_epoch,
            "applied_limit": s.applied_limit,
            "rules_applied": s.rules_applied,
        }
        for s in stages
    }


def _stats_row(config, leader, stages, meter, elapsed_s, rss_bytes) -> dict:
    """The shard's usage row: the per-process REMORA Tables II–IV entry."""
    return {
        "shard_id": config.shard_id,
        "aggregator_id": config.aggregator_id,
        "n_stages": len(stages),
        "cycles_served": leader.cycles_served,
        "evictions": leader.evictions,
        "adoptions": leader.adoptions,
        "rules_applied": sum(s.rules_applied for s in stages),
        "rules_stale": sum(s.rules_ignored_stale for s in stages),
        "up_codec": leader.up_codec,
        "cpu_seconds": meter.cpu_seconds,
        "tx_bytes": meter.tx_bytes,
        "rx_bytes": meter.rx_bytes,
        "elapsed_s": elapsed_s,
        "rss_bytes": rss_bytes,
    }
