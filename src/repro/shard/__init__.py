"""Multi-process sharding of the control plane (live and simulated).

The single-asyncio-loop / single-DES-thread architecture validates the
paper's hierarchy argument only up to the single-core wall. This package
breaks the plane across processes in both worlds:

* :mod:`repro.shard.plane` — the live plane: the global controller stays
  in the parent process while each aggregator subtree (leader + pinned
  stages) runs in its own spawned worker, talking upstream over the
  ordinary wire protocol on a per-shard port.
* :mod:`repro.shard.worker` — the spawn target and its picklable config.
* :mod:`repro.shard.hashing` — deterministic consistent-hash ring that
  pins stages to shards identically in every process.
* :mod:`repro.shard.sim` — partition-parallel DES: one worker process
  per aggregator-subtree group with conservative time-sync at the
  collect/compute/enforce barrier; ``workers=1`` runs today's engine
  byte-identically.
"""

from repro.shard.hashing import ShardRing, pin_stages
from repro.shard.plane import ShardRunResult, ShardedControlPlane, run_live_sharded
from repro.shard.sim import PartitionedSimResult, run_partitioned_hier
from repro.shard.worker import ShardWorkerConfig, run_shard_worker

__all__ = [
    "PartitionedSimResult",
    "ShardRing",
    "ShardRunResult",
    "ShardWorkerConfig",
    "ShardedControlPlane",
    "pin_stages",
    "run_live_sharded",
    "run_partitioned_hier",
    "run_shard_worker",
]
