"""Partition-parallel DES: one worker process per aggregator subtree.

The control cycle already provides a natural conservative-time barrier:
between the global controller's collect fan-out and its rule-batch
fan-out, the aggregator subtrees exchange **no** events with each other.
That makes the hierarchical simulation embarrassingly partitionable —
each subtree (aggregator + its stage partition + their links) can
advance on its own :class:`~repro.simnet.engine.Environment` in its own
process, as long as every subtree re-synchronises with the global
controller's clock at the collect and enforce phase boundaries. No
anti-messages, no rollback: the barrier *is* the sync protocol.

``workers=1`` does not approximate anything: it runs today's
single-process :class:`~repro.core.control_plane.HierarchicalControlPlane`
engine directly, so the golden-trace suite pins it byte-identical to the
seed simulator (see ``tests/shard/test_sim_partitioned.py``).

``workers>1`` composes the cycle from the workers' subtree timings and
the global controller's own serial costs, charged from the same
:class:`~repro.core.costs.CostModel` fields the in-process
:class:`~repro.core.controller.GlobalController` charges:

* collect = fan-out tx + slowest subtree's collect + per-reply rx,
* compute = PSFA over the union of demand vectors (real numpy work,
  charged at the hier per-stage rate),
* enforce = rule build + batch tx + slowest subtree's distribute + acks.

Cross-process state travels as **flat arrays**, never dicts of Python
floats: workers reply with ``(stage_ids tuple, job_ids tuple, data
ndarray, meta ndarray)`` per subtree, the parent folds them into one
:class:`~repro.core.columnar.StageColumns` union store, and enforce
ships each worker a single ``float64`` limit vector aligned to its
canonical stage order instead of pickling a stage→limit dict to every
worker.

Taking the *maximum* subtree time at each barrier is the conservative
synchronisation rule: the composed clock never runs ahead of any
partition, so causality across the barrier cannot be violated.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithms.psfa import PSFA
from repro.core.columnar import StageColumns
from repro.core.control_plane import (
    ControlPlaneConfig,
    HierarchicalControlPlane,
    default_policy,
)
from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.cycle import ControlCycle, CycleStats
from repro.core.policies import QoSPolicy
from repro.core.registry import partition_stages

__all__ = ["PartitionedSimResult", "run_partitioned_hier"]


@dataclass
class PartitionedSimResult:
    """Cycle records plus how the simulation was partitioned."""

    n_stages: int
    n_aggregators: int
    workers: int
    cycles: List[ControlCycle] = field(default_factory=list)

    def stats(self, warmup: int = 1) -> CycleStats:
        return CycleStats(
            self.cycles, warmup=min(warmup, max(len(self.cycles) - 1, 0))
        )


@dataclass(frozen=True)
class _SubtreeSpec:
    """Picklable recipe for one worker's slice of the aggregator tier."""

    worker_index: int
    #: ``(agg_id, stage_ids)`` per aggregator assigned to this worker.
    subtrees: Tuple[Tuple[str, Tuple[str, ...]], ...]
    stages_per_host: int
    costs: CostModel
    demand: Tuple[float, float]


class _SubtreeSim:
    """One worker's private DES: its aggregators, stages, and a driver.

    The driver endpoint plays the global controller's network position,
    so subtree timings include the trunk-link latency and the
    aggregator-side costs exactly as the monolithic engine charges them.
    """

    def __init__(self, spec: _SubtreeSpec) -> None:
        from repro.core.controller import AggregatorController, ChildChannel
        from repro.dataplane.virtual_stage import ConstantSource, VirtualStage
        from repro.simnet.engine import Environment
        from repro.simnet.topology import build_cluster

        self.spec = spec
        self.env = Environment()
        self.cluster = build_cluster(self.env, 0)
        cm = spec.costs
        driver_host = self.cluster.add_host(name=f"driver-{spec.worker_index}")
        self.cluster.network.reserve_system_slots(driver_host, 8)
        self.driver = self.cluster.network.attach(driver_host, "driver")
        self.links: List[Tuple[str, object, object]] = []  # (agg_id, conn, agg)
        self.n_stages = 0
        for agg_id, stage_ids in spec.subtrees:
            agg_host = self.cluster.add_host(name=agg_id)
            self.cluster.network.reserve_system_slots(agg_host, 8)
            agg_endpoint = self.cluster.network.attach(agg_host, agg_id)
            agg = AggregatorController(
                self.env, agg_host, agg_endpoint, agg_id, costs=cm
            )
            stage_hosts: Dict[int, object] = {}
            for i, stage_id in enumerate(stage_ids):
                h = i // spec.stages_per_host
                if h not in stage_hosts:
                    stage_hosts[h] = self.cluster.add_host(
                        name=f"{agg_id}-stagehost-{h:04d}"
                    )
                stage = VirtualStage(
                    self.env,
                    stage_id,
                    stage_id.replace("stage", "job"),
                    source=ConstantSource(*spec.demand),
                    costs=cm,
                )
                endpoint = self.cluster.network.attach(stage_hosts[h], stage_id)
                stage.bind(endpoint)
                conn = self.cluster.network.connect(agg_endpoint, endpoint)
                agg.add_stage(
                    stage_id,
                    stage.job_id,
                    ChildChannel(stage_id, "stage", conn, agg_endpoint),
                )
                self.n_stages += 1
            agg.start()
            trunk = self.cluster.network.connect(self.driver, agg_endpoint)
            self.links.append((agg_id, trunk, agg))

    def _advance_to(self, t: float) -> None:
        """Conservative sync: jump this partition's clock to barrier ``t``."""
        if t > self.env.now:
            def wait():
                yield self.env.timeout(t - self.env.now)
            self.env.run(self.env.process(wait(), name="barrier"))

    def collect(self, epoch: int, barrier_t: float):
        """Fan ``agg_collect_req`` out, gather merged replies; time it."""
        cm = self.spec.costs
        self._advance_to(barrier_t)
        started = self.env.now
        replies: List[tuple] = []

        def drive():
            for _, trunk, _agg in self.links:
                trunk.send(self.driver, "agg_collect_req", epoch,
                           cm.agg_request_bytes)
            got = 0
            while got < len(self.links):
                msg = yield self.driver.recv()
                if msg.kind != "agg_metrics_reply":
                    continue
                _, merged = msg.payload
                # Flat-array reply: tuples of ids plus contiguous
                # float64 columns pickle as single buffers, not
                # element-by-element Python floats.
                replies.append(
                    (
                        tuple(merged.stage_ids),
                        tuple(merged.job_ids),
                        np.ascontiguousarray(merged.data_iops, dtype=float),
                        np.ascontiguousarray(merged.metadata_iops, dtype=float),
                    )
                )
                got += 1

        self.env.run(self.env.process(drive(), name="driver.collect"))
        return self.env.now - started, replies

    def enforce(self, epoch: int, limits: np.ndarray,
                barrier_t: float) -> float:
        """Ship per-aggregator rule batches, await acks; time it.

        ``limits`` is one flat vector aligned to this worker's canonical
        stage order — the concatenation of its subtrees' partitions in
        spec order, which is exactly the order ``agg.stage_ids`` yields.
        """
        from repro.core.rules import EnforcementRule, RuleBatch

        cm = self.spec.costs
        self._advance_to(barrier_t)
        started = self.env.now

        def drive():
            sent = 0
            offset = 0
            for agg_id, trunk, agg in self.links:
                ids = agg.stage_ids
                part = limits[offset:offset + len(ids)]
                offset += len(ids)
                rules = tuple(
                    EnforcementRule(
                        stage_id=s,
                        epoch=epoch,
                        data_iops_limit=float(lim),
                        metadata_iops_limit=float("inf"),
                    )
                    for s, lim in zip(ids, part)
                )
                trunk.send(
                    self.driver,
                    "rule_batch",
                    (epoch, RuleBatch(agg_id, epoch, rules)),
                    cm.rule_batch_header_bytes
                    + len(rules) * cm.rule_batch_entry_bytes,
                )
                sent += 1
            got = 0
            while got < sent:
                msg = yield self.driver.recv()
                if msg.kind == "batch_ack":
                    got += 1

        self.env.run(self.env.process(drive(), name="driver.enforce"))
        return self.env.now - started


def _run_sim_worker(spec: _SubtreeSpec, conn) -> None:
    """Spawn-target: serve collect/enforce barriers for one partition."""
    sim = _SubtreeSim(spec)
    conn.send(("ready", spec.worker_index, sim.n_stages))
    while True:
        cmd = conn.recv()
        if cmd[0] == "collect":
            _, epoch, barrier_t = cmd
            elapsed, replies = sim.collect(epoch, barrier_t)
            conn.send(("collected", elapsed, replies))
        elif cmd[0] == "enforce":
            _, epoch, limits, barrier_t = cmd
            elapsed = sim.enforce(epoch, limits, barrier_t)
            conn.send(("enforced", elapsed))
        elif cmd[0] == "stop":
            conn.close()
            return


def _run_single_process(
    n_stages: int,
    n_aggregators: int,
    n_cycles: int,
    costs: CostModel,
    policy: Optional[QoSPolicy],
    stages_per_host: int,
) -> PartitionedSimResult:
    """workers=1: today's engine, verbatim — the golden-trace anchor."""
    config = ControlPlaneConfig(
        n_stages=n_stages,
        stages_per_host=stages_per_host,
        policy=policy,
        costs=costs,
    )
    plane = HierarchicalControlPlane.build(config, n_aggregators)
    plane.env.run(plane.global_controller.run_cycles(n_cycles))
    return PartitionedSimResult(
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        workers=1,
        cycles=list(plane.global_controller.cycles),
    )


def run_partitioned_hier(
    n_stages: int,
    n_aggregators: int,
    n_cycles: int,
    workers: int = 1,
    costs: CostModel = FRONTERA_COST_MODEL,
    policy: Optional[QoSPolicy] = None,
    stages_per_host: int = 50,
    demand: Tuple[float, float] = (1000.0, 200.0),
) -> PartitionedSimResult:
    """Simulate the hierarchical plane, optionally across processes.

    With ``workers=1`` this *is* the existing engine (byte-identical
    event order). With ``workers>1`` each worker owns a contiguous group
    of aggregator subtrees on its own Environment and the cycle is
    composed at the collect/compute/enforce barrier under conservative
    time-sync; per-cycle phase latencies land in the same
    :class:`~repro.core.cycle.ControlCycle` records either way.
    """
    if n_stages < 1 or n_cycles < 1:
        raise ValueError("n_stages and n_cycles must be >= 1")
    if not 1 <= n_aggregators <= n_stages:
        raise ValueError("n_aggregators must be in [1, n_stages]")
    if not 1 <= workers <= n_aggregators:
        raise ValueError("workers must be in [1, n_aggregators]")
    policy = policy or default_policy(n_stages)
    if workers == 1:
        return _run_single_process(
            n_stages, n_aggregators, n_cycles, costs, policy, stages_per_host
        )

    stage_ids = [f"stage-{i:05d}" for i in range(n_stages)]
    partitions = partition_stages(stage_ids, n_aggregators)
    subtrees = [
        (f"aggregator-{a:02d}", tuple(owned))
        for a, owned in enumerate(partitions)
    ]
    groups = partition_stages([t[0] for t in subtrees], workers)
    by_id = dict(subtrees)

    ctx = multiprocessing.get_context("spawn")
    pipes, procs = [], []
    try:
        for w, agg_ids in enumerate(groups):
            spec = _SubtreeSpec(
                worker_index=w,
                subtrees=tuple((a, by_id[a]) for a in agg_ids),
                stages_per_host=stages_per_host,
                costs=costs,
                demand=demand,
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_run_sim_worker,
                args=(spec, child_conn),
                name=f"simshard-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)
        for conn in pipes:
            ready = conn.recv()
            if ready[0] != "ready":
                raise RuntimeError(f"sim worker failed to start: {ready!r}")

        algorithm = PSFA()
        cm = costs
        mean_part = n_stages / n_aggregators
        #: Union of every partition's believed state, columnar. Replies
        #: scatter into it by id (vectorized, cached row maps); enforce
        #: gathers per-worker limit vectors back out of it.
        columns = StageColumns()
        worker_canon = [
            tuple(s for a in agg_ids for s in by_id[a]) for agg_ids in groups
        ]
        cycles: List[ControlCycle] = []
        now = 0.0
        for epoch in range(1, n_cycles + 1):
            started = now
            # ---- collect: serial fan-out, parallel subtrees, serial rx ----
            tx_s = n_aggregators * cm.tx_request_s
            for conn in pipes:
                conn.send(("collect", epoch, started + tx_s))
            slowest = 0.0
            for conn in pipes:
                kind, elapsed, replies = conn.recv()
                assert kind == "collected"
                slowest = max(slowest, elapsed)
                for sids, jids, data, meta in replies:
                    if not sids:
                        continue
                    if sids[0] not in columns:
                        for sid, jid in zip(sids, jids):
                            columns.ensure(sid, jid)
                    columns.observe_many(sids, data, meta)
            rx_s = n_aggregators * (
                cm.rx_agg_reply_fixed_s + mean_part * cm.rx_agg_entry_s
            )
            collect_s = tx_s + slowest + rx_s
            now = started + collect_s

            # ---- compute: PSFA over the union, charged at hier rates ----
            n_live = columns.n_active
            result = algorithm.allocate(
                columns.ewma_active(),
                columns.stage_weights(policy),
                policy.allocatable_iops,
            )
            columns.set_usage_rows(columns.active_rows(), result.allocations)
            compute_s = cm.compute_fixed_s + n_live * cm.psfa_per_stage_hier_s
            now += compute_s

            # ---- enforce: rule build + batch tx, parallel subtrees, acks ----
            build_tx_s = (
                n_stages * cm.rule_build_hier_s
                + n_aggregators * cm.tx_batch_s
            )
            for w, conn in enumerate(pipes):
                limits = columns.usage[columns.rows_for(worker_canon[w])]
                conn.send(("enforce", epoch, limits, now + build_tx_s))
            slowest = 0.0
            for conn in pipes:
                kind, elapsed = conn.recv()
                assert kind == "enforced"
                slowest = max(slowest, elapsed)
            enforce_s = build_tx_s + slowest + n_aggregators * cm.rx_agg_ack_s
            now += enforce_s

            cycles.append(
                ControlCycle(
                    epoch=epoch,
                    started_at=started,
                    collect_s=collect_s,
                    compute_s=compute_s,
                    enforce_s=enforce_s,
                    n_stages=n_stages,
                )
            )
    finally:
        for conn in pipes:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()

    return PartitionedSimResult(
        n_stages=n_stages,
        n_aggregators=n_aggregators,
        workers=workers,
        cycles=cycles,
    )
