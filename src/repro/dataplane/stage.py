"""The full data-plane stage: rate-limits a job's I/O to the PFS.

Where :class:`~repro.dataplane.virtual_stage.VirtualStage` only *mimics*
a stage's control-plane footprint, this class implements the real data
path (paper Fig. 1): job I/O operations pass through per-class token
buckets whose rates are set by the controller's enforcement rules. The
QoS examples use it to show PSFA actually shaping traffic; the stress
benches use the virtual variant, exactly like the paper.

Demand accounting: the stage counts *offered* operations (arrivals,
including ones that had to wait) between metric requests and reports the
offered rate. Reporting offered rather than admitted demand is what lets
PSFA raise a throttled job's allocation when capacity frees up.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.rules import EnforcementRule
from repro.dataplane.token_bucket import TokenBucket
from repro.dataplane.virtual_stage import MetricSource, VirtualStage
from repro.simnet.engine import Environment

__all__ = ["DataPlaneStage"]

#: Operation classes a stage distinguishes (paper §III-C collects both).
DATA, METADATA = "data", "metadata"


class _MeasuredSource:
    """Reports the stage's own measured offered rates."""

    def __init__(self, stage: "DataPlaneStage") -> None:
        self.stage = stage

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        return self.stage._drain_window(now)


class DataPlaneStage(VirtualStage):
    """A stage that actually mediates I/O through token buckets.

    Use :meth:`admit` from job processes::

        delay = yield from stage.admit("data")
        # ... operation has been admitted; submit it to the PFS ...
    """

    def __init__(
        self,
        env: Environment,
        stage_id: str,
        job_id: str,
        costs: CostModel = FRONTERA_COST_MODEL,
        initial_data_limit: float = float("inf"),
        initial_metadata_limit: float = float("inf"),
        burst_seconds: float = 0.1,
        source: Optional[MetricSource] = None,
    ) -> None:
        # ``source`` is accepted for ControlPlaneConfig.stage_cls
        # compatibility but ignored: a full stage always reports its own
        # measured offered rates, never a synthetic generator.
        super().__init__(env, stage_id, job_id, source=None, costs=costs)
        self.source: MetricSource = _MeasuredSource(self)
        if burst_seconds <= 0:
            raise ValueError(f"burst_seconds must be positive: {burst_seconds}")
        self.burst_seconds = float(burst_seconds)
        clock = lambda: env.now
        self.buckets = {
            DATA: TokenBucket(initial_data_limit, clock, self._burst(initial_data_limit)),
            METADATA: TokenBucket(
                initial_metadata_limit, clock, self._burst(initial_metadata_limit)
            ),
        }
        self._offered = {DATA: 0, METADATA: 0}
        self._admitted = {DATA: 0, METADATA: 0}
        self._window_started = env.now
        self.total_wait_s = 0.0

    def _burst(self, rate: float) -> float:
        if rate == float("inf"):
            return 1e12
        return max(rate * self.burst_seconds, 1.0)

    # -- enforcement -------------------------------------------------------------
    def _apply(self, rule: EnforcementRule) -> None:
        self.buckets[DATA].set_rate(
            rule.data_iops_limit, self._burst(rule.data_iops_limit)
        )
        self.buckets[METADATA].set_rate(
            rule.metadata_iops_limit, self._burst(rule.metadata_iops_limit)
        )

    # -- data path ------------------------------------------------------------------
    def admit(self, op_class: str = DATA) -> Generator:
        """Admit one operation of ``op_class``; yields until allowed.

        Returns the seconds the operation waited (0.0 when the bucket had
        tokens). Job processes drive this with ``yield from``.
        """
        bucket = self.buckets.get(op_class)
        if bucket is None:
            raise ValueError(f"unknown op class: {op_class!r}")
        self._offered[op_class] += 1
        waited = 0.0
        while not bucket.try_acquire(1.0):
            delay = bucket.delay_for(1.0)
            if delay == float("inf"):
                # Zero-rate rule: re-check each control period; a new rule
                # may restore service.
                delay = 1.0
            # Clamp below so float round-off can never produce a wait too
            # small to advance the simulation clock.
            delay = max(delay, 1e-6)
            yield self.env.timeout(delay)
            waited += delay
        self._admitted[op_class] += 1
        self.total_wait_s += waited
        return waited

    # -- metric window -----------------------------------------------------------------
    def _drain_window(self, now: float) -> Tuple[float, float]:
        """Offered rates since the last metric request, then reset."""
        elapsed = now - self._window_started
        if elapsed <= 0:
            return (0.0, 0.0)
        data_rate = self._offered[DATA] / elapsed
        metadata_rate = self._offered[METADATA] / elapsed
        self._offered = {DATA: 0, METADATA: 0}
        self._admitted = {DATA: 0, METADATA: 0}
        self._window_started = now
        return (data_rate, metadata_rate)

    @property
    def enforced_data_rate(self) -> float:
        return self.buckets[DATA].rate

    @property
    def enforced_metadata_rate(self) -> float:
        return self.buckets[METADATA].rate
