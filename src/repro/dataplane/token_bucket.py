"""Token-bucket rate limiter — the stage-side enforcement primitive.

Stages translate each :class:`~repro.core.rules.EnforcementRule` into a
token-bucket refill rate: an operation consumes one token; when the bucket
is empty the operation waits for the next refill. The bucket accumulates
up to ``burst`` tokens, so short bursts pass at line rate while the
sustained rate converges to the enforced limit — the classic TBF
behaviour (the paper cites Lustre's TBF NRS [4] as the intrusive
equivalent).

The implementation is *lazy*: tokens are computed from elapsed time on
demand, so idle buckets cost nothing — important with 10,000 stages. It
is also allocation-lean: ``__slots__`` instances, no per-call ``float()``
temporaries, and the infinity sentinel hoisted to a module constant, so a
steady-state acquire loop allocates nothing beyond CPython's float
free-list churn (asserted by the tracemalloc regression test).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TokenBucket"]

_INF = float("inf")


class TokenBucket:
    """A lazily refilled token bucket.

    Parameters
    ----------
    rate:
        Sustained tokens/second. ``float('inf')`` disables limiting.
    burst:
        Bucket capacity. Defaults to one second's worth of tokens
        (never below 1 so single operations can always eventually pass).
    clock:
        Callable returning the current time (simulated or real).
    """

    __slots__ = (
        "_clock",
        "rate",
        "burst",
        "_tokens",
        "_updated_at",
        "granted",
        "delayed",
    )

    def __init__(
        self,
        rate: float,
        clock,
        burst: Optional[float] = None,
    ) -> None:
        if rate < 0:
            raise ValueError(f"negative rate: {rate}")
        self._clock = clock
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive: {self.burst}")
        self._tokens = self.burst
        self._updated_at = float(clock())
        #: Totals for metrics reporting.
        self.granted = 0
        self.delayed = 0

    # -- internals ----------------------------------------------------------
    def _refill(self, now: float) -> None:
        if now < self._updated_at:
            raise ValueError("clock went backwards")
        if self.rate == _INF:
            self._tokens = self.burst
        else:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated_at) * self.rate
            )
        self._updated_at = now

    # -- public API -----------------------------------------------------------
    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled lazily)."""
        self._refill(self._clock())
        return self._tokens

    def set_rate(self, rate: float, burst: Optional[float] = None) -> None:
        """Apply a new enforcement rule; accumulated tokens are kept but
        clamped to the new burst size."""
        if rate < 0:
            raise ValueError(f"negative rate: {rate}")
        self._refill(float(self._clock()))
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive: {self.burst}")
        self._tokens = min(self._tokens, self.burst)

    #: Tolerance against float round-off: a bucket refilled for exactly the
    #: computed :meth:`delay_for` may land epsilon short of ``n``.
    _SLACK = 1e-9

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if n <= 0:
            raise ValueError(f"token count must be positive: {n}")
        self._refill(self._clock())
        if self._tokens >= n - self._SLACK:
            self._tokens = max(self._tokens - n, 0.0)
            self.granted += 1
            return True
        self.delayed += 1
        return False

    def delay_for(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now).

        A pure query: consumes no tokens and touches no counters (the
        ``delayed`` metric is counted where an acquisition actually
        fails, in :meth:`try_acquire`). Uses the same ``_SLACK``
        tolerance as :meth:`try_acquire`, so ``delay_for(n) == 0``
        exactly when ``try_acquire(n)`` would succeed. Callers waiting
        out the delay should then :meth:`try_acquire`. With a zero rate
        the wait is infinite.
        """
        if n <= 0:
            raise ValueError(f"token count must be positive: {n}")
        self._refill(self._clock())
        if self._tokens >= n - self._SLACK:
            return 0.0
        if self.rate == 0:
            return _INF
        return (n - self._tokens) / self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBucket(rate={self.rate}, burst={self.burst})"
