"""Virtual data-plane stages — the paper's stress-test endpoints.

A virtual stage "mimics the behavior of a regular stage without the need
to run real applications" (paper §III-C): it answers every metric request
with current data/metadata IOPS readings and acknowledges every
enforcement rule. Fifty of them run per physical compute node in the
study; here each is a reactive endpoint handler, so 10,000 stages cost
only their message traffic.

The IOPS values come from a :class:`MetricSource`, which the workload
generators in :mod:`repro.jobs.workloads` implement; the stress workload
simply reports a constant-plus-noise demand, because under stress testing
"regardless of the value of each collected metric" the control plane does
the same work.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Tuple

from repro.core.costs import CostModel, FRONTERA_COST_MODEL
from repro.core.metrics import StageMetrics
from repro.core.rules import EnforcementRule
from repro.simnet.engine import Environment
from repro.simnet.node import SimHost
from repro.simnet.transport import Connection, Endpoint, Message

__all__ = ["MetricSource", "VirtualStage"]


class MetricSource(Protocol):
    """Provides the IOPS readings a stage reports each cycle."""

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        """Return (data_iops, metadata_iops) at simulated time ``now``."""
        ...


class ConstantSource:
    """Fixed demand — the degenerate stress-test source."""

    def __init__(self, data_iops: float = 1000.0, metadata_iops: float = 200.0):
        if data_iops < 0 or metadata_iops < 0:
            raise ValueError("negative IOPS")
        self.data_iops = data_iops
        self.metadata_iops = metadata_iops

    def sample(self, stage_id: str, now: float) -> Tuple[float, float]:
        return (self.data_iops, self.metadata_iops)


class VirtualStage:
    """A lightweight stage: replies to metric requests, acks rules.

    Attach to an endpoint with :meth:`bind`; the stage then serves all
    controllers connected to that endpoint. Stale rules (an epoch not
    newer than the applied one) are ignored but still acknowledged, so a
    recovering controller cannot roll a stage's limit backwards.
    """

    def __init__(
        self,
        env: Environment,
        stage_id: str,
        job_id: str,
        source: Optional[MetricSource] = None,
        costs: CostModel = FRONTERA_COST_MODEL,
    ) -> None:
        self.env = env
        self.stage_id = stage_id
        self.job_id = job_id
        self.source = source or ConstantSource()
        self.costs = costs
        self.endpoint: Optional[Endpoint] = None
        self.applied_rule: Optional[EnforcementRule] = None
        self.requests_served = 0
        self.rules_applied = 0
        self.rules_ignored_stale = 0

    def bind(self, endpoint: Endpoint) -> None:
        """Serve requests arriving at ``endpoint``."""
        self.endpoint = endpoint
        endpoint.set_handler(self._on_message)

    # -- message handling -------------------------------------------------------
    def _on_message(self, message: Message, connection: Connection) -> None:
        cm = self.costs
        host = self.endpoint.host
        host.charge(cm.stage_cpu_per_msg_s)
        if message.kind == "collect_req":
            epoch = message.payload
            data_iops, metadata_iops = self.source.sample(self.stage_id, self.env.now)
            report = StageMetrics(
                stage_id=self.stage_id,
                job_id=self.job_id,
                data_iops=data_iops,
                metadata_iops=metadata_iops,
                timestamp=self.env.now,
            )
            self.requests_served += 1
            connection.send(
                self.endpoint,
                "metrics_reply",
                (epoch, report),
                cm.metrics_reply_bytes,
                extra_delay=cm.stage_service_s,
            )
        elif message.kind == "rule":
            epoch, rule = message.payload
            if rule.supersedes(self.applied_rule):
                self.applied_rule = rule
                self.rules_applied += 1
                self._apply(rule)
            else:
                self.rules_ignored_stale += 1
            connection.send(
                self.endpoint,
                "rule_ack",
                epoch,
                cm.ack_bytes,
                extra_delay=cm.stage_service_s,
            )
        # Unknown kinds are silently dropped (virtual stages are passive).

    def _apply(self, rule: EnforcementRule) -> None:
        """Hook for subclasses (the full stage wires its token buckets)."""

    @property
    def current_limit(self) -> float:
        """The enforced total IOPS limit (inf before any rule arrives)."""
        if self.applied_rule is None:
            return float("inf")
        return self.applied_rule.data_iops_limit
