"""Data-plane components: stages, rate limiters, and the I/O shim.

The data plane sits between each application and the PFS client
(paper Fig. 1). Two stage implementations are provided:

* :class:`~repro.dataplane.stage.DataPlaneStage` — the full stage: it
  mediates a job's simulated I/O through token-bucket rate limiters and
  enforces the controller's rules, used by the QoS examples;
* :class:`~repro.dataplane.virtual_stage.VirtualStage` — the paper's
  lightweight stress-test stage: it only answers metric requests and
  acknowledges rules, letting 10,000 stages run on a small simulation
  footprint exactly as the study ran 50 per physical node.
"""

from repro.dataplane.stage import DataPlaneStage
from repro.dataplane.token_bucket import TokenBucket
from repro.dataplane.virtual_stage import MetricSource, VirtualStage
from repro.dataplane.interceptor import IOInterceptor, IOOp

__all__ = [
    "DataPlaneStage",
    "IOInterceptor",
    "IOOp",
    "MetricSource",
    "TokenBucket",
    "VirtualStage",
]
