"""POSIX-like I/O interception shim.

SDS data planes intercept application I/O transparently (LD_PRELOAD in
PAIO/Cheferd; paper Fig. 1 shows the stage between the job and the PFS
client). This module is the simulation equivalent: job processes issue
``open``/``read``/``write``/``stat``/``close`` calls against an
:class:`IOInterceptor`, which

1. classifies each call as a *data* or *metadata* operation,
2. admits it through the job's :class:`~repro.dataplane.stage.DataPlaneStage`
   (where the controller's rate limits bite), and
3. submits it to the PFS model, experiencing its service time and
   contention.

Every call is a generator to be driven with ``yield from`` inside a
simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.dataplane.stage import DATA, METADATA, DataPlaneStage
from repro.simnet.engine import Environment

__all__ = ["IOInterceptor", "IOOp", "OP_CLASSES"]

#: POSIX-ish call → operation class, as Cheferd's differentiation does.
OP_CLASSES = {
    "open": METADATA,
    "close": METADATA,
    "stat": METADATA,
    "mkdir": METADATA,
    "unlink": METADATA,
    "readdir": METADATA,
    "read": DATA,
    "write": DATA,
}


@dataclass(frozen=True)
class IOOp:
    """A completed, timed I/O operation."""

    call: str
    op_class: str
    size_bytes: int
    issued_at: float
    completed_at: float
    throttle_wait_s: float
    pfs_wait_s: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.issued_at


class IOInterceptor:
    """Routes a job's I/O calls through its stage and into the PFS."""

    def __init__(
        self,
        env: Environment,
        stage: DataPlaneStage,
        pfs_client=None,
    ) -> None:
        from repro.monitoring.histogram import LatencyHistogram

        self.env = env
        self.stage = stage
        self.pfs_client = pfs_client
        self.completed: int = 0
        self.total_throttle_wait_s = 0.0
        self.total_pfs_wait_s = 0.0
        #: End-to-end (throttle + PFS) latency distribution per op.
        self.latency = LatencyHistogram()

    def call(self, name: str, size_bytes: int = 0) -> Generator:
        """Issue one intercepted call; returns the :class:`IOOp` record."""
        op_class = OP_CLASSES.get(name)
        if op_class is None:
            raise ValueError(f"unknown I/O call: {name!r}")
        if size_bytes < 0:
            raise ValueError(f"negative size: {size_bytes}")
        issued = self.env.now
        throttle_wait = yield from self.stage.admit(op_class)
        pfs_started = self.env.now
        if self.pfs_client is not None:
            yield from self.pfs_client.submit(op_class, size_bytes)
        pfs_wait = self.env.now - pfs_started
        op = IOOp(
            call=name,
            op_class=op_class,
            size_bytes=size_bytes,
            issued_at=issued,
            completed_at=self.env.now,
            throttle_wait_s=throttle_wait,
            pfs_wait_s=pfs_wait,
        )
        self.completed += 1
        self.total_throttle_wait_s += throttle_wait
        self.total_pfs_wait_s += pfs_wait
        self.latency.record(op.latency_s)
        return op

    # Convenience wrappers -----------------------------------------------------
    def open(self) -> Generator:
        return self.call("open")

    def close(self) -> Generator:
        return self.call("close")

    def stat(self) -> Generator:
        return self.call("stat")

    def read(self, size_bytes: int) -> Generator:
        return self.call("read", size_bytes)

    def write(self, size_bytes: int) -> Generator:
        return self.call("write", size_bytes)
